#!/usr/bin/env python
"""Merge per-subsystem pytest-benchmark JSONs into one ``bench_summary.json``.

The CI kernels job runs each ``benchmarks/bench_*.py`` file as its own
matrix entry, each writing a ``--benchmark-json`` report.  This script folds
those per-bench reports (downloaded into one directory) into a single
artifact: a top-level manifest plus every benchmark's name, rounds and
timing stats keyed by subsystem.  Reports that are missing, empty or
unparsable are *recorded*, not fatal -- a crashed matrix entry must not
erase the other subsystems' timings (fail-fast is off for the same reason).

Usage::

    python scripts/merge_bench_timings.py <dir-of-jsons>
        [--output bench_summary.json] [--summary $GITHUB_STEP_SUMMARY]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The timing stats worth keeping per benchmark (pytest-benchmark emits
#: many more; these are the ones trend dashboards actually read).
STATS = ("min", "max", "mean", "stddev", "median", "rounds")


def load_report(path: Path) -> tuple[dict | None, str | None]:
    """One parsed pytest-benchmark report, or (None, reason) if unusable."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        return None, f"unreadable: {error}"
    if not text.strip():
        # pytest-benchmark writes a zero-byte file when the suite defines
        # no timed benchmarks (our assertion-only suites do exactly that).
        return None, "empty report (assertion-only suite)"
    try:
        report = json.loads(text)
    except json.JSONDecodeError as error:
        return None, f"invalid JSON: {error}"
    if not isinstance(report, dict):
        return None, "not a JSON object"
    return report, None


def summarise(report: dict) -> dict:
    """The compact per-subsystem record kept in the merged summary."""
    benchmarks = []
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        benchmarks.append(
            {
                "name": bench.get("fullname", bench.get("name", "?")),
                "stats": {key: stats.get(key) for key in STATS},
            }
        )
    machine = report.get("machine_info", {})
    return {
        "datetime": report.get("datetime"),
        "python": machine.get("python_version"),
        "benchmarks": benchmarks,
    }


def merge(directory: Path) -> dict:
    """Fold every ``*.json`` in *directory* into the summary structure."""
    subsystems: dict[str, dict] = {}
    errors: dict[str, str] = {}
    for path in sorted(directory.glob("*.json")):
        report, reason = load_report(path)
        if report is None:
            errors[path.stem] = reason
        else:
            subsystems[path.stem] = summarise(report)
    return {
        "subsystems": subsystems,
        "errors": errors,
        "n_subsystems": len(subsystems),
        "n_benchmarks": sum(len(entry["benchmarks"]) for entry in subsystems.values()),
    }


def markdown_summary(summary: dict) -> str:
    """A small GitHub-step-summary table of per-subsystem benchmark counts."""
    lines = ["## Benchmark timings", ""]
    lines.append("| subsystem | benchmarks | mean of means (s) |")
    lines.append("|---|---|---|")
    for name, entry in sorted(summary["subsystems"].items()):
        means = [
            b["stats"]["mean"]
            for b in entry["benchmarks"]
            if b["stats"].get("mean") is not None
        ]
        mean = f"{sum(means) / len(means):.3g}" if means else "-"
        lines.append(f"| {name} | {len(entry['benchmarks'])} | {mean} |")
    for name, reason in sorted(summary["errors"].items()):
        lines.append(f"| {name} | (no report: {reason}) | - |")
    if not summary["subsystems"] and not summary["errors"]:
        lines.append("| (no timing reports found) | - | - |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("directory", type=Path, help="directory of timing JSONs")
    parser.add_argument("--output", type=Path, default=Path("bench_summary.json"))
    parser.add_argument(
        "--summary",
        type=Path,
        default=None,
        help="append a markdown table to this file ($GITHUB_STEP_SUMMARY)",
    )
    options = parser.parse_args(argv)
    if not options.directory.is_dir():
        print(f"not a directory: {options.directory}", file=sys.stderr)
        return 2
    summary = merge(options.directory)
    options.output.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"merged {summary['n_subsystems']} subsystem report(s), "
        f"{summary['n_benchmarks']} benchmark(s), "
        f"{len(summary['errors'])} error(s) -> {options.output}"
    )
    if options.summary is not None:
        with open(options.summary, "a", encoding="utf-8") as handle:
            handle.write(markdown_summary(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main())
