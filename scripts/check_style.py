#!/usr/bin/env python
"""Offline approximation of the CI lint gate (ruff check + ruff format).

The `lint` CI job runs ruff, but ruff is not installed in fully-offline
development environments (this repo supports them by design -- see
setup.py).  This script re-implements the high-signal subset of the rules
enabled in ruff.toml with only the standard library, so style drift is
caught before a PR ever reaches CI:

* syntax errors (E9),
* unused imports (F401, honouring ``__all__``, ``__future__`` and
  ``import x as x`` re-exports),
* unused local variables (F841, conservative: only simple ``name = ...``
  assignments whose name is never read in the function),
* import-block ordering (I001: future/stdlib/third-party/first-party
  grouping, one blank line between groups, statements interleaved by module
  name, members ordered constants < classes < others),
* formatter drift (ruff format): lines over the 88-column limit, and
  bracket groups that match none of the formatter's three layouts --
  everything on one line; one indented inner line (no magic trailing
  comma); or fully exploded, one element per line, with a magic trailing
  comma -- plus single-quoted strings, trailing whitespace, tabs, and
  missing end-of-file newlines.

``--fix`` applies the mechanical repairs (joining/exploding bracket groups,
quote normalisation, whitespace) and refuses any rewrite that changes the
file's AST.  Exit status 1 when findings remain.  This is an approximation:
ruff in CI remains the referee, and anything it flags that this script
missed should be added here.
"""

from __future__ import annotations

import ast
import re
import sys
import tokenize
from pathlib import Path

LINE_LIMIT = 88
FIRST_PARTY = {"repro", "tests"}
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "scripts", "setup.py")
STDLIB = set(getattr(sys, "stdlib_module_names", ())) | {"__future__"}

OPENS = {"(", "[", "{"}
CLOSES = {")": "(", "]": "[", "}": "{"}


def split_top_level(text: str):
    """Split joined bracket contents at depth-0 commas (None if unsplittable).

    Tracks quotes and nesting; cannot see lambdas or conditional expressions,
    so the caller AST-verifies every rewrite built from this.
    """
    elements = []
    current = []
    depth = 0
    quote = None
    index = 0
    while index < len(text):
        char = text[index]
        if quote is not None:
            current.append(char)
            if char == "\\":
                if index + 1 < len(text):
                    current.append(text[index + 1])
                    index += 1
            elif char == quote:
                quote = None
        elif char in "\"'":
            quote = char
            current.append(char)
        elif char in OPENS:
            depth += 1
            current.append(char)
        elif char in CLOSES:
            depth -= 1
            current.append(char)
        elif char == "," and depth == 0:
            elements.append("".join(current).strip())
            current = []
        else:
            current.append(char)
        index += 1
    if quote is not None or depth != 0:
        return None
    tail = "".join(current).strip()
    if tail:
        elements.append(tail)
    return [element for element in elements if element]


def member_sort_key(name: str):
    """isort member order per ruff.toml: constants, classes, the rest
    (``order-by-type = true``), case-sensitive within each rank."""
    if name.isupper() or (name.upper() == name and "_" in name):
        rank = 0
    elif name[:1].isupper():
        rank = 1
    else:
        rank = 2
    return (rank, name)


class Group:
    """One bracket pair spanning source lines, with its element layout."""

    def __init__(self, open_token, close_token, inner):
        self.open = open_token
        self.close = close_token
        self.inner = inner

    @property
    def multiline(self) -> bool:
        return self.open.start[0] != self.close.start[0]

    @property
    def has_comment(self) -> bool:
        return any(t.type == tokenize.COMMENT for t in self.inner)

    @property
    def has_multiline_string(self) -> bool:
        return any(
            t.type == tokenize.STRING and t.start[0] != t.end[0]
            for t in self.inner
        )

    @property
    def trailing_comma(self) -> bool:
        return bool(self.inner) and (
            self.inner[-1].type == tokenize.OP and self.inner[-1].string == ","
        )

    @property
    def has_implicit_concat(self) -> bool:
        """Adjacent string literals: the formatter never re-joins them."""
        return any(
            a.type == tokenize.STRING and b.type == tokenize.STRING
            for a, b in zip(self.inner, self.inner[1:])
        )

    @property
    def skip(self) -> bool:
        return (
            self.has_comment
            or self.has_multiline_string
            or self.has_implicit_concat
        )

    @property
    def is_comprehension(self) -> bool:
        """A depth-0 ``for``: comprehensions are one element, split at
        keywords -- the element-per-line layout rules do not apply."""
        depth = 0
        for token in self.inner:
            if token.type == tokenize.OP:
                if token.string in OPENS:
                    depth += 1
                elif token.string in CLOSES:
                    depth -= 1
            elif (token.type == tokenize.NAME and token.string == "for" and depth == 0):
                return True
        return False

    def element_commas(self):
        """Depth-0 comma tokens (element separators) inside the group."""
        depth = 0
        commas = []
        for token in self.inner:
            if token.type != tokenize.OP:
                continue
            if token.string in OPENS:
                depth += 1
            elif token.string in CLOSES:
                depth -= 1
            elif token.string == "," and depth == 0:
                commas.append(token)
        return commas


class Checker:
    def __init__(self, path: Path, fix: bool = False):
        self.path = path
        self.fix = fix
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.findings: list[tuple[int, str, str]] = []

    def flag(self, line: int, code: str, message: str) -> None:
        self.findings.append((line, code, message))

    def run(self) -> list[tuple[int, str, str]]:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as error:
            self.flag(error.lineno or 0, "E999", f"syntax error: {error.msg}")
            return self.findings
        if self.fix:
            self.apply_fixes()
            tree = ast.parse(self.source)
        self.check_unused_imports(tree)
        self.check_unused_locals(tree)
        self.check_import_order(tree)
        self.check_text()
        self.check_tokens()
        return self.findings

    # -- pyflakes-ish ----------------------------------------------------------

    def check_unused_imports(self, tree: ast.Module) -> None:
        used = set()
        exported = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                base = node
                while isinstance(base, ast.Attribute):
                    base = base.value
                if isinstance(base, ast.Name):
                    used.add(base.id)
        for node in tree.body:
            if (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "__all__"
                    for t in node.targets
                )
                and isinstance(node.value, (ast.List, ast.Tuple))
            ):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant):
                        exported.add(element.value)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.partition(".")[0]
                    if alias.asname and alias.asname == alias.name:
                        continue  # explicit re-export
                    if bound not in used and bound not in exported:
                        self.flag(node.lineno, "F401", f"unused import {alias.name!r}")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    if alias.asname and alias.asname == alias.name:
                        continue  # explicit re-export
                    if bound not in used and bound not in exported:
                        self.flag(node.lineno, "F401", f"unused import {alias.name!r}")

    def check_unused_locals(self, tree: ast.Module) -> None:
        for func in ast.walk(tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            loads = set()
            assigns: dict[str, int] = {}
            declared = set()
            for node in ast.walk(func):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, (ast.Load, ast.Del)):
                        loads.add(node.id)
                elif isinstance(node, (ast.Global, ast.Nonlocal)):
                    declared.update(node.names)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.target, ast.Name
                ):
                    loads.add(node.target.id)
            for node in ast.walk(func):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        assigns.setdefault(target.id, node.lineno)
            for name, lineno in sorted(assigns.items(), key=lambda kv: kv[1]):
                if name.startswith("_") or name in loads or name in declared:
                    continue
                self.flag(lineno, "F841", f"local variable {name!r} is never used")

    # -- isort-ish -------------------------------------------------------------

    @staticmethod
    def import_group(module: str, level: int) -> int:
        if level > 0:
            return 4
        root = module.partition(".")[0]
        if root == "__future__":
            return 0
        if root in STDLIB:
            return 1
        if root in FIRST_PARTY:
            return 3
        return 2

    def check_import_order(self, tree: ast.Module) -> None:
        # Within a group, straight imports precede from-imports (isort's
        # default `from_first = false`), each block sorted by module name.
        entries = []
        for node in tree.body:
            if isinstance(node, ast.Import):
                module = node.names[0].name
                entries.append(
                    (self.import_group(module, 0), (0, module.lower()), node)
                )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                group = self.import_group(module, node.level)
                entries.append((group, (1, module.lower()), node))
                names = [alias.name for alias in node.names]
                if "*" not in names and names != sorted(names, key=member_sort_key):
                    self.flag(
                        node.lineno,
                        "I001",
                        f"from-import names not sorted: {', '.join(names)}",
                    )
            elif entries and not isinstance(node, ast.Expr):
                break  # import block ends at the first real statement
        previous = None
        for group, key, node in entries:
            if previous is not None:
                prev_group, prev_key, prev_node = previous
                if group < prev_group:
                    self.flag(
                        node.lineno,
                        "I001",
                        "import group out of order "
                        "(future < stdlib < third-party < first-party)",
                    )
                elif group == prev_group and key < prev_key:
                    self.flag(node.lineno, "I001", "imports not sorted within group")
                gap = node.lineno - (prev_node.end_lineno or prev_node.lineno) - 1
                if group != prev_group and gap < 1:
                    self.flag(
                        node.lineno,
                        "I001",
                        "missing blank line between import groups",
                    )
            previous = (group, key, node)

    # -- formatter drift -------------------------------------------------------

    def long_line_exempt(self, row: int) -> bool:
        """Whether the formatter could even shorten this long line.

        The formatter never splits string literals or comments, so a line
        whose 88th column falls inside one is left alone (and E501 is not in
        the enabled lint rules).  Only over-long *code* counts as drift.
        """
        try:
            tokens = self.tokenize_lines()
        except tokenize.TokenizeError:
            return False
        for token in tokens:
            if token.type not in (tokenize.STRING, tokenize.COMMENT):
                continue
            (start_row, start_col), (end_row, end_col) = token.start, token.end
            if start_row <= row <= end_row:
                col_from = start_col if row == start_row else 0
                col_to = end_col if row == end_row else len(self.lines[row - 1])
                if col_from <= LINE_LIMIT <= col_to:
                    return True
        return False

    def check_text(self) -> None:
        for index, line in enumerate(self.lines, start=1):
            if len(line) > LINE_LIMIT and not self.long_line_exempt(index):
                self.flag(index, "FMT", f"line too long ({len(line)} > {LINE_LIMIT})")
            if line.rstrip() != line:
                self.flag(index, "FMT", "trailing whitespace")
            if "\t" in line:
                self.flag(index, "FMT", "tab character")
        if self.source and not self.source.endswith("\n"):
            self.flag(len(self.lines), "FMT", "missing newline at end of file")
        self.check_def_blank_lines()

    def check_def_blank_lines(self) -> None:
        """A def/class directly after a same-indent statement needs blank lines.

        The formatter puts one blank line between methods and two between
        top-level definitions; the common drift (an edit dropping the gap
        entirely) shows up as a ``def``/``class``/decorator line whose
        immediately preceding line is a same-indent statement.
        """
        docstring_rows = set()
        logical_start: dict[int, int] = {}
        try:
            start_row = None
            for token in self.tokenize_lines():
                if token.type == tokenize.STRING and token.start[0] != token.end[0]:
                    docstring_rows.update(range(token.start[0], token.end[0] + 1))
                if token.type in (tokenize.NEWLINE, tokenize.NL, tokenize.ENDMARKER):
                    if start_row is not None:
                        for row in range(start_row, token.start[0] + 1):
                            logical_start.setdefault(row, start_row)
                    if token.type == tokenize.NEWLINE:
                        start_row = None
                elif start_row is None and token.type not in (
                    tokenize.INDENT,
                    tokenize.DEDENT,
                    tokenize.COMMENT,
                ):
                    start_row = token.start[0]
        except tokenize.TokenizeError:
            return
        header = re.compile(r"^(\s*)(def |async def |class |@)")
        for index in range(1, len(self.lines)):
            row = index + 1
            if row in docstring_rows:
                continue
            match = header.match(self.lines[index])
            if match is None:
                continue
            previous = self.lines[index - 1]
            if not previous.strip():
                continue
            prev_start = logical_start.get(index, index)
            statement = self.lines[prev_start - 1].lstrip()
            # Decorators, comments, block openers and docstrings are fine
            # directly above a definition; anything else needs a gap.
            if statement.startswith(("@", "#", '"', "'")) or statement.endswith(":"):
                continue
            prev_indent = re.match(r"\s*", self.lines[prev_start - 1]).group(0)
            if prev_indent != match.group(1):
                continue
            self.flag(
                row,
                "FMT",
                "def/class directly follows a statement; the formatter "
                "inserts blank line(s) here",
            )

    def tokenize_lines(self):
        readline = iter([line + "\n" for line in self.lines]).__next__
        return list(tokenize.generate_tokens(readline))

    def bracket_groups(self):
        tokens = [
            t
            for t in self.tokenize_lines()
            if t.type
            not in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENDMARKER,
            )
        ]
        stack = []
        groups = []
        for position, token in enumerate(tokens):
            if token.type == tokenize.OP and token.string in OPENS:
                stack.append(position)
            elif token.type == tokenize.OP and token.string in CLOSES:
                if stack:
                    start = stack.pop()
                    groups.append(
                        Group(tokens[start], token, tokens[start + 1 : position])
                    )
        return groups

    def check_tokens(self) -> None:
        try:
            groups = self.bracket_groups()
            tokens = self.tokenize_lines()
        except tokenize.TokenizeError:
            return
        for token in tokens:
            if token.type == tokenize.STRING:
                self.check_string_token(token)
        for group in groups:
            if group.multiline:
                self.check_group_layout(group)

    def check_string_token(self, token) -> None:
        text = token.string
        prefix = re.match(r"[A-Za-z]*", text).group(0)
        body = text[len(prefix) :]
        if body.startswith("'''") or not body.startswith("'"):
            return
        if '"' in body:
            return  # single quotes avoid escaping; the formatter keeps them
        self.flag(
            token.start[0],
            "FMT",
            "single-quoted string (formatter uses double quotes)",
        )

    def joined_form(self, group: Group):
        """(total length, prefix, joined inner, suffix) if joined on one line."""
        open_row, open_col = group.open.start
        close_row, close_col = group.close.start
        prefix = self.lines[open_row - 1][: open_col + 1]
        suffix = self.lines[close_row - 1][close_col:]
        segments = []
        first = self.lines[open_row - 1][open_col + 1 :].strip()
        if first:
            segments.append(first)
        for row in range(open_row + 1, close_row):
            text = self.lines[row - 1].strip()
            if text:
                segments.append(text)
        last = self.lines[close_row - 1][:close_col].strip()
        if last:
            segments.append(last)
        joined = " ".join(segments)
        if group.trailing_comma:
            joined = joined.rstrip(",").rstrip()
        joined = re.sub(r"([([{]) ", r"\1", joined)
        joined = re.sub(r" ([)\]}])", r"\1", joined)
        return len(prefix) + len(joined) + len(suffix), prefix, joined, suffix

    def group_problem(self, group: Group) -> tuple[int, str] | None:
        """The formatter-drift finding for one multi-line group, if any.

        The formatter has exactly three stable layouts for a bracket group:
        (1) everything on one line (taken whenever it fits and there is no
        magic trailing comma); (2) a single indented inner line with the
        brackets on their own boundaries (no magic trailing comma); (3)
        fully exploded, one element per line, with a magic trailing comma.
        Single-element groups (no depth-0 comma) may span lines freely --
        that is how nested splits look.
        """
        open_row, open_col = group.open.start
        close_row, close_col = group.close.start
        open_line = self.lines[open_row - 1]
        close_line = self.lines[close_row - 1]
        open_ends_line = open_col == len(open_line.rstrip()) - 1
        close_starts_line = close_line[:close_col].strip() == ""
        inner_rows = close_row - open_row - 1
        commas = group.element_commas()
        if not group.trailing_comma:
            length, _, _, _ = self.joined_form(group)
            # Layout 1: everything fits on one line.
            if length <= LINE_LIMIT:
                return (
                    open_row,
                    f"multi-line group fits on one line ({length} cols); "
                    "the formatter would join it",
                )
            # Comprehensions are one element split at for/if keywords; any
            # over-limit layout beyond that is fine by the formatter.
            if group.is_comprehension:
                return None
            if not (open_ends_line and close_starts_line):
                return (
                    open_row,
                    "multi-line group: open/close brackets must sit on their "
                    "own line boundaries",
                )
            # Single element spanning lines: a nested split, always fine.
            if not commas:
                return None
            # Layout 2: a single indented inner line (that itself fits).
            if inner_rows == 1:
                if len(self.lines[open_row]) <= LINE_LIMIT:
                    return None
                return (
                    open_row,
                    "over-long single inner line; the formatter would explode "
                    "the group one element per line",
                )
            return (
                open_row,
                "multi-element group spanning lines without a magic trailing "
                "comma; the formatter would explode it one element per line "
                "(adding the trailing comma)",
            )
        # Layout 3: magic trailing comma -> fully exploded.
        if not (open_ends_line and close_starts_line):
            return (
                open_row,
                "magic trailing comma: open/close brackets must sit on their "
                "own line boundaries",
            )
        for comma in commas[:-1]:
            row = comma.start[0]
            after = self.lines[row - 1][comma.start[1] + 1 :].strip()
            if after:
                return (
                    row,
                    "magic trailing comma: the formatter explodes this group "
                    "one element per line",
                )
        return None

    def check_group_layout(self, group: Group) -> None:
        if group.skip:
            return
        problem = self.group_problem(group)
        if problem is not None:
            self.flag(problem[0], "FMT", problem[1])

    # -- fixes -----------------------------------------------------------------

    def apply_fixes(self) -> None:
        for repair in (
            self.fix_whitespace,
            self.fix_quotes,
            self.fix_groups,
            self.fix_long_lines,
            self.fix_groups,
            self.fix_whitespace,
        ):
            before = self.source
            repair()
            if self.source != before and not self.ast_equal(before, self.source):
                self.source = before  # refuse any semantics-changing rewrite
                self.lines = self.source.splitlines()
        self.path.write_text(self.source, encoding="utf-8")

    @staticmethod
    def ast_equal(before: str, after: str) -> bool:
        try:
            return ast.dump(ast.parse(before)) == ast.dump(ast.parse(after))
        except SyntaxError:
            return False

    def set_lines(self, lines: list[str]) -> None:
        self.lines = lines
        self.source = "\n".join(lines) + ("\n" if lines else "")

    def fix_whitespace(self) -> None:
        self.set_lines([line.rstrip() for line in self.lines])

    def fix_long_lines(self) -> None:
        """Split over-long code lines at a bracket group (right-hand split).

        Any valid-layout split of a line whose joined form exceeds the limit
        is stable under the formatter (it only re-joins what fits), so
        splitting at the last bracket pair on the line -- the first pair for
        ``def``/``class`` signatures, matching the formatter's preference for
        breaking at the parameter list -- cannot introduce new drift.  Every
        rewrite is AST-verified by the caller's repair loop per pass and by
        this method per line.
        """
        for _ in range(200):
            if not self.fix_one_long_line():
                return

    def fix_one_long_line(self) -> bool:
        for row, line in enumerate(self.lines, start=1):
            if len(line) <= LINE_LIMIT or self.long_line_exempt(row):
                continue
            pairs = self.line_bracket_pairs(row)
            stripped = line.lstrip()
            if stripped.startswith(("def ", "class ", "async def ")):
                pairs = pairs[:1] + pairs[:0:-1]
            else:
                pairs = pairs[::-1]
            for open_col, close_col in pairs:
                if self.split_line_at(row, open_col, close_col):
                    return True
        return False

    def line_bracket_pairs(self, row: int):
        """Outermost (open_col, close_col) bracket pairs fully on this line."""
        try:
            tokens = self.tokenize_lines()
        except tokenize.TokenizeError:
            return []
        stack = []
        pairs = []
        for token in tokens:
            if token.type != tokenize.OP:
                continue
            if token.string in OPENS:
                stack.append(token)
            elif token.string in CLOSES and stack:
                open_token = stack.pop()
                if not stack and open_token.start[0] == row and token.start[0] == row:
                    pairs.append((open_token.start[1], token.start[1]))
        return sorted(pairs)

    def split_line_at(self, row: int, open_col: int, close_col: int) -> bool:
        line = self.lines[row - 1]
        prefix = line[: open_col + 1]
        inner = line[open_col + 1 : close_col].strip()
        suffix = line[close_col:]
        if not inner:
            return False
        indent = re.match(r"\s*", line).group(0)
        inner_indent = indent + "    "
        if len(inner_indent) + len(inner) <= LINE_LIMIT:
            rebuilt = [prefix, inner_indent + inner.rstrip(","), indent + suffix]
        else:
            elements = split_top_level(inner)
            if not elements or len(elements) < 2:
                return False
            rebuilt = [prefix]
            rebuilt.extend(f"{inner_indent}{element}," for element in elements)
            rebuilt.append(indent + suffix)
        if any(len(part) > LINE_LIMIT for part in rebuilt):
            return False
        before = self.source
        lines = list(self.lines)
        lines[row - 1 : row] = rebuilt
        self.set_lines(lines)
        if not self.ast_equal(before, self.source):
            self.source = before
            self.lines = self.source.splitlines()
            return False
        return True

    def fix_quotes(self) -> None:
        try:
            tokens = self.tokenize_lines()
        except tokenize.TokenizeError:
            return
        lines = list(self.lines)
        for token in reversed(tokens):
            if token.type != tokenize.STRING or token.start[0] != token.end[0]:
                continue
            text = token.string
            prefix = re.match(r"[A-Za-z]*", text).group(0)
            body = text[len(prefix) :]
            if not body.startswith("'") or body.startswith("'''"):
                continue
            if '"' in body or "\\" in body:
                continue  # would need escaping analysis; leave for manual fix
            replacement = prefix + '"' + body[1:-1] + '"'
            row, col = token.start
            line = lines[row - 1]
            lines[row - 1] = line[:col] + replacement + line[col + len(text) :]
        self.set_lines(lines)

    def fix_groups(self) -> None:
        """Repeatedly repair the first fixable bracket-layout finding.

        Every single-group rewrite is AST-verified; a rewrite that changes
        semantics (e.g. a top-level comma that was really a lambda parameter
        separator) is reverted and the group blocked for manual repair.
        """
        blocked: set = set()
        for _ in range(1000):  # bounded; each pass fixes one group
            try:
                groups = self.bracket_groups()
            except tokenize.TokenizeError:
                return
            groups.sort(key=lambda g: g.open.start)
            before = self.source
            fixed_key = self.fix_one_group(groups, blocked)
            if fixed_key is None:
                return
            if not self.ast_equal(before, self.source):
                self.source = before
                self.lines = self.source.splitlines()
                blocked.add(fixed_key)

    def fix_one_group(self, groups, blocked):
        for group in groups:
            if not group.multiline or group.skip:
                continue
            if self.group_problem(group) is None:
                continue
            length, prefix, joined, suffix = self.joined_form(group)
            key = (prefix.strip(), joined)
            if key in blocked:
                continue
            rebuilt = self.rebuild_group(group, length, prefix, joined, suffix)
            if rebuilt is None:
                rebuilt = self.unhug_group(group)
            if rebuilt is None:
                continue
            open_row = group.open.start[0]
            close_row = group.close.start[0]
            lines = list(self.lines)
            lines[open_row - 1 : close_row] = rebuilt
            self.set_lines(lines)
            return key
        return None

    def unhug_group(self, group: Group):
        """Un-hug ``foo([...])`` / ``foo(bar(...))``-style sole arguments.

        The stable formatter does not hug a sole bracketed argument against
        the call parentheses: the inner group moves to its own indentation
        level.  Applies when the opening line ends with an inner open
        bracket and the closing line is just the two closers.
        """
        open_row, open_col = group.open.start
        close_row, close_col = group.close.start
        open_line = self.lines[open_row - 1]
        close_line = self.lines[close_row - 1]
        rest = open_line[open_col + 1 :].rstrip()
        if not rest or rest[-1] not in OPENS:
            return None
        before = close_line[:close_col].rstrip()
        if not before or before[-1] not in CLOSES:
            return None
        if CLOSES[before[-1]] != rest[-1]:
            return None
        if before[: len(before) - 1].strip():
            return None  # more than the inner closer before the outer one
        indent = re.match(r"\s*", open_line).group(0)
        shift = "    "
        rebuilt = [open_line[: open_col + 1]]
        rebuilt.append(indent + shift + rest)
        for row in range(open_row + 1, close_row):
            mid = self.lines[row - 1]
            rebuilt.append(shift + mid if mid.strip() else mid)
        rebuilt.append(indent + shift + before[-1])
        rebuilt.append(indent + close_line[close_col:])
        if any(len(part) > LINE_LIMIT for part in rebuilt):
            return None
        return rebuilt

    def rebuild_group(self, group, length, prefix, joined, suffix):
        """The formatter-shaped replacement lines for one group, or None."""
        open_row = group.open.start[0]
        indent = re.match(r"\s*", self.lines[open_row - 1]).group(0)
        inner_indent = indent + "    "
        if not group.trailing_comma and length <= LINE_LIMIT:
            return [prefix + joined + suffix]  # layout 1: join
        if len(prefix) > LINE_LIMIT:
            return None  # the opening line itself overflows: manual fix
        elements = split_top_level(joined)
        if elements is None:
            return None
        if not group.trailing_comma:
            if len(inner_indent) + len(joined) <= LINE_LIMIT:
                # Layout 2: one indented inner line.
                return [prefix, inner_indent + joined, indent + suffix]
            if len(elements) < 2:
                return None  # single long element: needs a manual nested split
        exploded = [prefix]
        exploded.extend(f"{inner_indent}{element}," for element in elements)
        exploded.append(indent + suffix)
        if any(len(line) > LINE_LIMIT for line in exploded):
            return None  # an element overflows on its own: manual fix
        return exploded


def iter_files(arguments: list[str]):
    root_dir = Path(__file__).resolve().parent.parent
    roots = arguments or [str(root_dir / r) for r in DEFAULT_ROOTS]
    for root in roots:
        path = Path(root)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def main(arguments: list[str]) -> int:
    fix = "--fix" in arguments
    paths = [a for a in arguments if a != "--fix"]
    total = 0
    unparsable: list[tuple[Path, str]] = []
    for path in iter_files(paths):
        # ast.parse raises ValueError (not SyntaxError) on null bytes, and
        # read_text can fail outright on undecodable or unreadable files;
        # those must land in the failure report, not a bare traceback.
        try:
            findings = Checker(path, fix=fix).run()
        except (ValueError, UnicodeDecodeError, OSError) as error:
            unparsable.append((path, f"{type(error).__name__}: {error}"))
            continue
        for line, code, message in sorted(findings):
            print(f"{path}:{line}: {code} {message}")
        total += len(findings)
    if unparsable:
        print(f"\n{len(unparsable)} file(s) could not be parsed:")
        for path, reason in unparsable:
            print(f"  {path}: {reason}")
    if total or unparsable:
        print(f"\n{total + len(unparsable)} finding(s)")
        return 1
    print("style check clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
