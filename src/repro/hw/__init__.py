"""Architecture-level hardware cost models (Accelergy/Timeloop-style).

The paper evaluates accelerators with Accelergy/Timeloop component models in
32 nm (and a 65 nm variant for the TIMELY comparison).  This subpackage
reproduces that methodology:

* :mod:`repro.hw.components`   -- per-action energy and area of every hardware
  component (ADC, DAC, ReRAM crossbar, SRAM/eDRAM buffers, router, digital
  logic) with resolution/technology scaling.
* :mod:`repro.hw.architecture` -- architecture specifications (RAELLA, ISAAC,
  FORMS, TIMELY) and workload operand statistics.
* :mod:`repro.hw.actions`      -- per-layer action counts (ADC converts, DAC
  pulses, device pulse-units, buffer/NoC traffic, cycles) derived analytically
  from full-scale layer shapes.
* :mod:`repro.hw.mapping`      -- layer-to-crossbar mapping, partial-Toeplitz
  in-crossbar replication and greedy cross-tile weight replication.
* :mod:`repro.hw.energy`       -- energy accounting and per-component breakdowns.
* :mod:`repro.hw.throughput`   -- pipeline latency / throughput model.
* :mod:`repro.hw.titanium`     -- the Titanium Law decomposition of ADC energy.
"""

from repro.hw.architecture import (
    ISAAC_ARCH,
    RAELLA_ARCH,
    RAELLA_NO_SPEC_ARCH,
    ArchitectureSpec,
    OperandStatistics,
)
from repro.hw.components import ComponentLibrary
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.mapping import DnnMapping, Mapper
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.hw.titanium import TitaniumLawTerms, titanium_law

__all__ = [
    "ArchitectureSpec",
    "OperandStatistics",
    "RAELLA_ARCH",
    "RAELLA_NO_SPEC_ARCH",
    "ISAAC_ARCH",
    "ComponentLibrary",
    "EnergyBreakdown",
    "EnergyModel",
    "DnnMapping",
    "Mapper",
    "ThroughputModel",
    "ThroughputReport",
    "TitaniumLawTerms",
    "titanium_law",
]
