"""Layer-to-crossbar mapping and weight replication (Timeloop-lite).

The paper maps each DNN layer onto as many crossbars as its weights need,
optionally replicates weights *inside* a crossbar with a partial Toeplitz
expansion (computing several convolution steps per presentation), and then
greedily replicates the slowest layer across spare tiles until the chip is
full (Section 5.5).  This module reproduces that mapping at the granularity
the throughput model needs: per-layer crossbar counts, in-crossbar and
cross-tile replication factors, and chip utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.actions import LayerActionCounts, count_model_actions
from repro.hw.architecture import ArchitectureSpec
from repro.nn.zoo import ModelShapes

__all__ = ["LayerMapping", "DnnMapping", "Mapper"]


@dataclass
class LayerMapping:
    """Placement of one layer on the chip."""

    actions: LayerActionCounts
    in_crossbar_replicas: int
    cross_tile_replicas: int = 1

    @property
    def layer_name(self) -> str:
        """Name of the mapped layer."""
        return self.actions.layer.name

    @property
    def crossbars(self) -> int:
        """Crossbars occupied by this layer including replication."""
        return self.actions.crossbars_min * self.cross_tile_replicas

    @property
    def total_replicas(self) -> int:
        """Total weight copies able to work on different output positions."""
        return self.in_crossbar_replicas * self.cross_tile_replicas

    @property
    def presentations_per_replica(self) -> float:
        """Input presentations each replica must process per sample."""
        return self.actions.presentations / self.total_replicas

    @property
    def latency_cycles(self) -> float:
        """Crossbar cycles this layer needs per input sample."""
        return self.presentations_per_replica * self.actions.cycles_per_presentation


@dataclass
class DnnMapping:
    """The full mapping of one DNN onto one architecture."""

    arch: ArchitectureSpec
    model_name: str
    layers: list[LayerMapping] = field(default_factory=list)

    @property
    def total_crossbars_used(self) -> int:
        """Crossbars occupied across all layers."""
        return sum(m.crossbars for m in self.layers)

    @property
    def crossbar_utilization(self) -> float:
        """Fraction of the chip's crossbars occupied."""
        return self.total_crossbars_used / self.arch.total_crossbars

    @property
    def bottleneck(self) -> LayerMapping:
        """The layer with the highest per-sample latency."""
        return max(self.layers, key=lambda m: m.latency_cycles)

    def fits(self) -> bool:
        """Whether the mapping fits the chip's crossbar budget."""
        return self.total_crossbars_used <= self.arch.total_crossbars


class Mapper:
    """Maps full-scale DNN shape tables onto an architecture."""

    def __init__(self, arch: ArchitectureSpec):
        self.arch = arch

    def _in_crossbar_replicas(self, actions: LayerActionCounts) -> int:
        """Partial-Toeplitz replication factor inside one crossbar.

        When a convolution's filter occupies only a fraction of the crossbar
        rows, additional shifted copies of the filter can share the crossbar
        and compute neighbouring convolution steps from the same input
        presentation (Section 5.5).  Fully-connected layers and architectures
        without Toeplitz support get no in-crossbar replication.
        """
        if not self.arch.supports_toeplitz:
            return 1
        layer = actions.layer
        if layer.kind == "linear" or actions.n_row_chunks > 1:
            return 1
        k_eff = layer.reduction_dim / self.arch.mac_reduction_factor
        row_copies = max(int(self.arch.crossbar_rows // max(k_eff, 1.0)), 1)
        col_copies = max(
            int(
                self.arch.crossbar_cols
                // max(layer.n_filters * actions.n_weight_slices, 1)
            ),
            1,
        )
        # A Toeplitz copy needs both row space (for the shifted patch) and
        # column space (for the extra output's columns).
        replicas = min(row_copies, col_copies, layer.output_size)
        return max(replicas, 1)

    def map(self, shapes: ModelShapes, replicate: bool = True) -> DnnMapping:
        """Map a model onto the chip, optionally replicating for throughput."""
        actions = count_model_actions(shapes, self.arch)
        mapping = DnnMapping(arch=self.arch, model_name=shapes.name)
        for layer_actions in actions:
            mapping.layers.append(
                LayerMapping(
                    actions=layer_actions,
                    in_crossbar_replicas=self._in_crossbar_replicas(layer_actions),
                )
            )
        if not mapping.fits():
            # The chip cannot hold even one copy of the weights; the paper's
            # designs always fit, but we keep the mapping and report it.
            return mapping
        if replicate:
            self._replicate_greedily(mapping)
        return mapping

    def _replicate_greedily(self, mapping: DnnMapping) -> None:
        """While crossbars remain, replicate the slowest layer (Section 5.5)."""
        budget = self.arch.total_crossbars - mapping.total_crossbars_used
        # Guard against pathological loops on tiny layers.
        for _ in range(100_000):
            bottleneck = mapping.bottleneck
            cost = bottleneck.actions.crossbars_min
            if cost > budget:
                # Try the next-slowest layers that still fit.
                candidates = sorted(
                    (m for m in mapping.layers if m.actions.crossbars_min <= budget),
                    key=lambda m: m.latency_cycles,
                    reverse=True,
                )
                if not candidates:
                    return
                bottleneck = candidates[0]
                cost = bottleneck.actions.crossbars_min
            # Stop when replication no longer helps (everything is 1 cycle).
            if bottleneck.latency_cycles <= self.arch.cycles_per_presentation:
                return
            bottleneck.cross_tile_replicas += 1
            budget -= cost
            if budget <= 0:
                return
