"""Per-layer action counts for the analytical cost model.

Given a full-scale :class:`~repro.nn.zoo.LayerShape`, an
:class:`~repro.hw.architecture.ArchitectureSpec` and the workload's
:class:`~repro.hw.architecture.OperandStatistics`, this module counts how many
times each hardware component is exercised to run the layer on one input
sample: ADC conversions, DAC pulses, device pulse-units, buffer and NoC bytes,
digital operations and crossbar cycles.  The energy model multiplies these by
per-action energies; the throughput model uses the cycle counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.architecture import ArchitectureSpec
from repro.nn.zoo import LayerShape, ModelShapes

__all__ = ["LayerActionCounts", "count_layer_actions", "count_model_actions"]


@dataclass(frozen=True)
class LayerActionCounts:
    """Action counts for one layer processing one input sample."""

    layer: LayerShape
    n_weight_slices: int
    n_row_chunks: int
    n_column_chunks: int
    crossbars_min: int
    presentations: int
    cycles_per_presentation: float
    macs: float
    adc_converts: float
    dac_pulses: float
    device_pulse_units: float
    column_periphery_ops: float
    shift_adds: float
    psum_buffer_bytes: float
    input_buffer_bytes: float
    edram_bytes: float
    router_bytes: float
    quantize_ops: float
    center_adds: float
    center_applies: float
    reram_devices_programmed: float
    row_utilization: float

    @property
    def converts_per_mac(self) -> float:
        """ADC conversions per multiply-accumulate."""
        return self.adc_converts / self.macs if self.macs else 0.0


def _effective_reduction_dim(layer: LayerShape, arch: ArchitectureSpec) -> float:
    """Reduction dimension after any weight-count reduction (pruning)."""
    return layer.reduction_dim / arch.mac_reduction_factor


def count_layer_actions(
    layer: LayerShape,
    arch: ArchitectureSpec,
    layer_index: int = 0,
    n_layers: int = 1,
) -> LayerActionCounts:
    """Count per-sample hardware actions for one layer on one architecture."""
    stats = arch.operand_stats
    k_eff = _effective_reduction_dim(layer, arch)
    n_filters = layer.n_filters
    positions = layer.output_positions
    n_weight_slices = arch.weight_slices_for_layer(layer_index, n_layers)
    n_row_chunks = max(math.ceil(k_eff / arch.crossbar_rows), 1)
    n_column_chunks = max(
        math.ceil(n_filters * n_weight_slices / arch.crossbar_cols), 1
    )
    crossbars_min = n_row_chunks * n_column_chunks
    signed_factor = 2.0 if layer.signed_input else 1.0

    macs = positions * k_eff * n_filters
    converts_per_column = arch.converts_per_column_per_presentation()
    adc_converts = (
        positions
        * n_filters
        * n_weight_slices
        * n_row_chunks
        * converts_per_column
        * signed_factor
    )
    cycles_per_presentation = arch.cycles_per_presentation * signed_factor

    # ``avg_input_pulses_per_operand`` already accounts for every stream the
    # input is presented in (e.g. speculation + recovery); ``input_streams``
    # only multiplies buffer fetches below.
    dac_pulses = (
        positions
        * k_eff
        * stats.avg_input_pulses_per_operand
        * stats.input_nonzero_fraction
    )
    # Each input pulse drives every programmed column of its crossbar; on
    # average one device per 2T2R pair conducts, at a conductance that is a
    # small fraction of on-state for offset-encoded weights.
    device_pulse_units = (
        dac_pulses * n_filters * n_weight_slices * stats.weight_conductance_fraction
    )
    column_periphery_ops = (
        positions
        * n_filters
        * n_weight_slices
        * n_row_chunks
        * cycles_per_presentation
    )
    shift_adds = adc_converts
    psum_buffer_bytes = adc_converts * 3.0  # 16b psum read-modify-write + flags
    input_buffer_bytes = positions * k_eff * arch.input_streams * signed_factor
    input_tensor_bytes = float(
        layer.in_channels * layer.input_size**2
        if layer.kind != "linear"
        else layer.in_channels * layer.input_size
    )
    output_tensor_bytes = float(n_filters * positions)
    edram_bytes = input_tensor_bytes + output_tensor_bytes
    router_bytes = output_tensor_bytes
    quantize_ops = float(n_filters * positions)
    if arch.uses_center_offset:
        center_adds = positions * k_eff * signed_factor
        center_applies = positions * n_filters * n_row_chunks * signed_factor
    else:
        center_adds = 0.0
        center_applies = 0.0
    reram_devices_programmed = k_eff * n_filters * n_weight_slices
    row_utilization = min(k_eff / (n_row_chunks * arch.crossbar_rows), 1.0)

    return LayerActionCounts(
        layer=layer,
        n_weight_slices=n_weight_slices,
        n_row_chunks=n_row_chunks,
        n_column_chunks=n_column_chunks,
        crossbars_min=crossbars_min,
        presentations=positions,
        cycles_per_presentation=cycles_per_presentation,
        macs=macs,
        adc_converts=adc_converts,
        dac_pulses=dac_pulses,
        device_pulse_units=device_pulse_units,
        column_periphery_ops=column_periphery_ops,
        shift_adds=shift_adds,
        psum_buffer_bytes=psum_buffer_bytes,
        input_buffer_bytes=input_buffer_bytes,
        edram_bytes=edram_bytes,
        router_bytes=router_bytes,
        quantize_ops=quantize_ops,
        center_adds=center_adds,
        center_applies=center_applies,
        reram_devices_programmed=reram_devices_programmed,
        row_utilization=row_utilization,
    )


def count_model_actions(
    shapes: ModelShapes, arch: ArchitectureSpec
) -> list[LayerActionCounts]:
    """Count actions for every layer of a full-scale model."""
    n_layers = shapes.n_layers
    return [
        count_layer_actions(layer, arch, layer_index=i, n_layers=n_layers)
        for i, layer in enumerate(shapes.layers)
    ]
