"""Architecture specifications and workload operand statistics.

An :class:`ArchitectureSpec` captures everything the analytical cost model
needs to know about an accelerator: crossbar geometry, ADC resolution, how
weights and inputs are sliced, how many cycles and conversions one input
presentation takes, and the chip-level organisation (crossbars per IMA, IMAs
per tile, tiles per chip).  Predefined specs model RAELLA (with and without
speculation), ISAAC, FORMS-8 and TIMELY as evaluated in the paper.

:class:`OperandStatistics` carries the data-dependent factors (input bit
density, average programmed conductance, speculation failure rate) that the
energy model scales data-dependent components with.  Defaults correspond to
the bell-curve weight / right-skewed activation statistics of Fig. 8; they can
also be calibrated from a functional run
(:meth:`OperandStatistics.from_layer_statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.hw.components import ComponentLibrary

__all__ = [
    "OperandStatistics",
    "ArchitectureSpec",
    "RAELLA_ARCH",
    "RAELLA_NO_SPEC_ARCH",
    "ISAAC_ARCH",
    "FORMS_ARCH",
    "TIMELY_ARCH",
    "RAELLA_65NM_ARCH",
    "RAELLA_65NM_NO_SPEC_ARCH",
]


@dataclass(frozen=True)
class OperandStatistics:
    """Data-dependent workload factors used by the analytical cost model."""

    #: Expected DAC pulses needed to stream one 8-bit input operand across
    #: *all* the streams it is presented in (speculation + recovery for
    #: RAELLA; a single bit-serial pass for ISAAC).
    avg_input_pulses_per_operand: float = 8.4
    #: Fraction of input operands that are non-zero.
    input_nonzero_fraction: float = 0.65
    #: Average programmed device conductance as a fraction of the on-state
    #: conductance.  Center+Offset offsets are small (sparse high bits), so
    #: RAELLA's devices sit near the low-conductance end.
    weight_conductance_fraction: float = 0.18
    #: Fraction of speculative conversions that saturate and need recovery.
    speculation_failure_rate: float = 0.02

    def __post_init__(self) -> None:
        if self.avg_input_pulses_per_operand < 0:
            raise ValueError("pulse count must be non-negative")
        if not 0 <= self.input_nonzero_fraction <= 1:
            raise ValueError("input_nonzero_fraction must be in [0, 1]")
        if not 0 <= self.weight_conductance_fraction <= 1:
            raise ValueError("weight_conductance_fraction must be in [0, 1]")
        if not 0 <= self.speculation_failure_rate <= 1:
            raise ValueError("speculation_failure_rate must be in [0, 1]")

    @classmethod
    def from_layer_statistics(cls, stats, macs_per_presentation_row: float = 1.0):
        """Calibrate statistics from functional :class:`LayerStatistics`.

        ``stats`` is a :class:`repro.core.executor.LayerStatistics` aggregate.
        Only the speculation failure rate and an activity-derived conductance
        fraction can be inferred; other fields keep their defaults.
        """
        failure = stats.speculation_failure_rate
        kwargs = {
            "speculation_failure_rate": failure
        } if stats.speculation_slots else {}
        return cls(**kwargs)

    #: Unsigned ISAAC-style weights have dense high-order bits, so the average
    #: programmed conductance is much higher than with offset encodings.
    @classmethod
    def for_unsigned_weights(cls) -> "OperandStatistics":
        """Statistics for architectures storing raw unsigned weight codes.

        Bit-serial 1-bit input slices need one pulse per set input bit
        (about 2.4 pulses per right-skewed 8-bit operand).
        """
        return cls(
            avg_input_pulses_per_operand=2.4,
            weight_conductance_fraction=0.45,
        )

    @classmethod
    def for_bit_serial_offsets(cls) -> "OperandStatistics":
        """Statistics for offset-encoded weights with bit-serial inputs."""
        return cls(avg_input_pulses_per_operand=2.4)


@dataclass(frozen=True)
class ArchitectureSpec:
    """Static description of a PIM accelerator for the analytical cost model."""

    name: str
    # Crossbar geometry.
    crossbar_rows: int = 512
    crossbar_cols: int = 512
    cell_devices: int = 2  # 2T2R
    adc_bits: int = 7
    adcs_per_crossbar: int = 4
    # Slicing.
    typical_weight_slices: int = 3
    last_layer_weight_slices: int = 8
    input_bits: int = 8
    # Input presentation schedule.
    converting_cycles_per_presentation: float = 3.0
    cycles_per_presentation: int = 11
    input_streams: int = 2  # inputs streamed for speculation and for recovery
    speculative: bool = True
    # Chip organisation (ISAAC-style hierarchy).
    crossbars_per_ima: int = 4
    imas_per_tile: int = 8
    n_tiles: int = 743
    edram_kb_per_tile: int = 64
    cycle_time_ns: float = 100.0
    area_budget_mm2: float = 600.0
    # Mapping features / workload transformations.
    supports_toeplitz: bool = True
    mac_reduction_factor: float = 1.0  # >1 for pruned (Weight-Count-Limited) designs
    uses_center_offset: bool = True
    unsigned_weights: bool = False
    # Metadata for Table 3.
    requires_retraining: bool = False
    fidelity_loss: str = "low"
    limits_weight_count: bool = False
    components: ComponentLibrary = field(default_factory=ComponentLibrary)
    operand_stats: OperandStatistics = field(default_factory=OperandStatistics)

    def __post_init__(self) -> None:
        if min(
            self.crossbar_rows,
            self.crossbar_cols,
            self.adcs_per_crossbar,
            self.crossbars_per_ima,
            self.imas_per_tile,
            self.n_tiles,
        ) <= 0:
            raise ValueError("architecture dimensions must be positive")
        if self.mac_reduction_factor < 1.0:
            raise ValueError("mac_reduction_factor must be >= 1")

    # -- derived quantities ------------------------------------------------------

    @property
    def crossbars_per_tile(self) -> int:
        """Crossbars in one tile."""
        return self.crossbars_per_ima * self.imas_per_tile

    @property
    def total_crossbars(self) -> int:
        """Crossbars on the whole chip."""
        return self.crossbars_per_tile * self.n_tiles

    def weight_slices_for_layer(self, layer_index: int, n_layers: int) -> int:
        """Weight slices used by a layer (last layer is most conservative)."""
        if n_layers > 1 and layer_index == n_layers - 1:
            return self.last_layer_weight_slices
        return self.typical_weight_slices

    def converts_per_column_per_presentation(self) -> float:
        """Expected ADC conversions of one column for one input presentation."""
        if not self.speculative:
            return float(self.converting_cycles_per_presentation)
        expected_recovery = (
            self.operand_stats.speculation_failure_rate * self.input_bits
        )
        return float(self.converting_cycles_per_presentation) + expected_recovery

    def with_changes(self, **kwargs) -> "ArchitectureSpec":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)


#: RAELLA as evaluated in Section 6: 512x512 2T2R crossbars, 7-bit ADC,
#: Center+Offset, adaptive weight slicing (3 slices typical), speculation.
RAELLA_ARCH = ArchitectureSpec(name="raella")

#: RAELLA with Dynamic Input Slicing speculation disabled: eight bit-serial
#: input cycles, every column converted each cycle.
RAELLA_NO_SPEC_ARCH = RAELLA_ARCH.with_changes(
    name="raella_no_spec",
    speculative=False,
    converting_cycles_per_presentation=8.0,
    cycles_per_presentation=8,
    input_streams=1,
    operand_stats=OperandStatistics.for_bit_serial_offsets(),
)

#: The 8-bit ISAAC baseline of Section 6.1.2: 128x128 1T1R crossbars, 8-bit
#: ADC, four 2-bit weight slices, eight 1-bit input slices, 1024 tiles.
ISAAC_ARCH = ArchitectureSpec(
    name="isaac",
    crossbar_rows=128,
    crossbar_cols=128,
    cell_devices=1,
    adc_bits=8,
    adcs_per_crossbar=1,
    typical_weight_slices=4,
    last_layer_weight_slices=4,
    converting_cycles_per_presentation=8.0,
    cycles_per_presentation=8,
    input_streams=1,
    speculative=False,
    n_tiles=1024,
    crossbars_per_ima=8,
    imas_per_tile=12,
    supports_toeplitz=True,
    uses_center_offset=False,
    unsigned_weights=True,
    requires_retraining=False,
    fidelity_loss="none",
    operand_stats=OperandStatistics.for_unsigned_weights(),
)

#: FORMS-8 (Weight-Count-Limited): ISAAC-like substrate with fine-grained
#: polarised pruning, modelled as a 2x MACs/DNN reduction (Section 2.6), no
#: partial-Toeplitz mapping, retraining required.
FORMS_ARCH = ISAAC_ARCH.with_changes(
    name="forms8",
    mac_reduction_factor=2.0,
    supports_toeplitz=False,
    requires_retraining=True,
    limits_weight_count=True,
)

#: TIMELY (Sum-Fidelity-Limited), 65 nm: very large analog accumulation with
#: time-domain converters, one cheap conversion per column per presentation,
#: two 4-bit weight slices, fidelity loss recovered by retraining.
TIMELY_ARCH = ArchitectureSpec(
    name="timely",
    crossbar_rows=256,
    crossbar_cols=256,
    cell_devices=1,
    adc_bits=8,
    adcs_per_crossbar=1,
    typical_weight_slices=2,
    last_layer_weight_slices=2,
    converting_cycles_per_presentation=1.0,
    cycles_per_presentation=8,
    input_streams=1,
    speculative=False,
    n_tiles=1024,
    supports_toeplitz=True,
    uses_center_offset=False,
    unsigned_weights=True,
    requires_retraining=True,
    fidelity_loss="high",
    components=ComponentLibrary.for_timely_components(),
    operand_stats=OperandStatistics(
        avg_input_pulses_per_operand=7.0, weight_conductance_fraction=0.45
    ),
)

#: RAELLA rebuilt with TIMELY's 65 nm analog components for the Fig. 13
#: comparison (Section 6.1).
RAELLA_65NM_ARCH = RAELLA_ARCH.with_changes(
    name="raella_65nm",
    components=ComponentLibrary.for_timely_components(),
)

#: The 65 nm RAELLA with speculation disabled -- the paper finds this the more
#: efficient configuration when the converter is already cheap (Section 6.4).
RAELLA_65NM_NO_SPEC_ARCH = RAELLA_65NM_ARCH.with_changes(
    name="raella_65nm_no_spec",
    speculative=False,
    converting_cycles_per_presentation=8.0,
    cycles_per_presentation=8,
    input_streams=1,
    operand_stats=OperandStatistics.for_bit_serial_offsets(),
)
