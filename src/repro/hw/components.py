"""Per-action energy and area of hardware components.

Constants follow the sources the paper uses: the Kull et al. 8-bit SAR ADC
(ISAAC's ADC) scaled across resolutions following Saberi et al., pulse-train
DACs and ReRAM crossbars modelled after NeuroSim with TIMELY's device
parameters (0.2 V read, 1 kOhm on-resistance), SRAM buffers after CACTI and
eDRAM/router numbers from ISAAC.  Values are architecture-level estimates --
the goal is to reproduce the paper's accounting methodology and relative
results, not SPICE-level accuracy.

All energies are in picojoules (pJ) per action, all areas in square
millimetres (mm^2), at the 32 nm node unless scaled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ComponentLibrary", "TechnologyNode"]


@dataclass(frozen=True)
class TechnologyNode:
    """Simple technology scaling between nodes.

    Dynamic energy scales roughly with the square of feature size; area scales
    with the square as well.  This is only used for the 65 nm TIMELY
    comparison, where the paper rebuilds RAELLA with TIMELY's components.
    """

    feature_nm: float = 32.0

    def energy_scale(self, reference_nm: float = 32.0) -> float:
        """Multiplicative energy factor relative to the reference node."""
        return (self.feature_nm / reference_nm) ** 2

    def area_scale(self, reference_nm: float = 32.0) -> float:
        """Multiplicative area factor relative to the reference node."""
        return (self.feature_nm / reference_nm) ** 2


@dataclass(frozen=True)
class ComponentLibrary:
    """Energy/area constants for one technology node and circuit family.

    The defaults model the 32 nm components shared by RAELLA, ISAAC and FORMS
    in the paper's apples-to-apples comparison.  ``for_timely_components``
    builds the 65 nm variant with TIMELY's analog front end (time-domain
    converters instead of SAR ADCs).
    """

    name: str = "32nm"
    technology: TechnologyNode = field(default_factory=TechnologyNode)

    # -- ADC -----------------------------------------------------------------
    #: Energy of one 8-bit conversion (Kull SAR ADC, ~3.1 mW at 1.2 GS/s).
    adc_energy_8b_pj: float = 2.0
    #: Resolution scaling base: E(b) = E(8) * base**(b - 8).  SAR converter
    #: energy scales between linearly and exponentially with resolution in the
    #: 6-9 bit regime (Saberi et al.); 1.3/bit is the effective value that
    #: calibrates the ISAAC baseline against its published breakdown.
    adc_resolution_energy_base: float = 1.3
    #: Area of one 8-bit ADC (mm^2); scales with the same base.
    adc_area_8b_mm2: float = 0.0012
    adc_resolution_area_base: float = 2.0

    # -- DAC / row drivers -----------------------------------------------------
    #: Energy per emitted input pulse (flip-flop + AND + row driver).
    dac_energy_per_pulse_pj: float = 0.0008
    dac_area_per_row_mm2: float = 1.0e-7

    # -- ReRAM crossbar --------------------------------------------------------
    #: Energy of one device conducting at full (on-state) conductance for one
    #: 1 ns pulse: V^2 * G_on * t = 0.2^2 * 1e-3 * 1e-9 = 40 fJ.
    reram_energy_per_device_pulse_pj: float = 0.04
    #: Average device conductance as a fraction of on-state conductance,
    #: averaged over programmed slice values (bell-curve offsets are small).
    reram_area_per_cell_mm2: float = 2.5e-8
    #: 2T2R cells add access transistors; ~10% system-area overhead per paper.
    t2r2_cell_area_factor: float = 2.0

    # -- Column periphery ------------------------------------------------------
    #: Sample+hold plus current buffer, per column per cycle.
    column_periphery_energy_pj: float = 0.005
    column_periphery_area_per_col_mm2: float = 2.0e-7

    # -- Digital ---------------------------------------------------------------
    #: Shift+add of one converted column sum into a psum.
    shift_add_energy_pj: float = 0.05
    #: Requantization (scale, bias, clamp) of one 8-bit output.
    quantize_energy_pj: float = 0.05
    #: One digital addition for the running input sum (Center+Offset).
    center_add_energy_pj: float = 0.003
    #: One multiply/subtract applying a center to a psum.
    center_apply_energy_pj: float = 0.03
    digital_area_per_tile_mm2: float = 0.02

    # -- Memories ---------------------------------------------------------------
    #: SRAM (input / psum / weight-center buffers), per byte accessed.
    sram_energy_per_byte_pj: float = 0.10
    sram_area_per_kb_mm2: float = 0.0012
    #: Tile eDRAM buffer, per byte accessed.
    edram_energy_per_byte_pj: float = 0.5
    edram_area_per_kb_mm2: float = 0.0006
    #: On-chip router/network, per byte moved between tiles.
    router_energy_per_byte_pj: float = 1.2
    router_area_mm2: float = 0.15

    # -- ReRAM programming -------------------------------------------------------
    reram_write_energy_pj: float = 100.0

    def adc_energy_pj(self, bits: int) -> float:
        """Energy of one conversion at the given resolution.

        Library constants are already expressed at the library's technology
        node, so only the resolution scaling is applied here.
        """
        if not 1 <= bits <= 16:
            raise ValueError("ADC resolution must be in [1, 16]")
        return self.adc_energy_8b_pj * self.adc_resolution_energy_base ** (bits - 8)

    def adc_area_mm2(self, bits: int) -> float:
        """Area of one ADC at the given resolution."""
        if not 1 <= bits <= 16:
            raise ValueError("ADC resolution must be in [1, 16]")
        return self.adc_area_8b_mm2 * self.adc_resolution_area_base ** (bits - 8)

    def scaled(self, factor: float) -> "ComponentLibrary":
        """Return a copy with all energies multiplied by ``factor``."""
        from dataclasses import replace

        fields_to_scale = [
            "adc_energy_8b_pj",
            "dac_energy_per_pulse_pj",
            "reram_energy_per_device_pulse_pj",
            "column_periphery_energy_pj",
            "shift_add_energy_pj",
            "quantize_energy_pj",
            "center_add_energy_pj",
            "center_apply_energy_pj",
            "sram_energy_per_byte_pj",
            "edram_energy_per_byte_pj",
            "router_energy_per_byte_pj",
            "reram_write_energy_pj",
        ]
        return replace(self, **{f: getattr(self, f) * factor for f in fields_to_scale})

    @classmethod
    def for_timely_components(cls) -> "ComponentLibrary":
        """65 nm library with TIMELY's analog front end.

        TIMELY replaces SAR ADCs with time-domain converters (TDCs), input
        adders and analog local buffers (charging + comparator), making each
        conversion and each psum accumulation cheaper, while digital logic and
        memories pay the 65 nm energy penalty.
        """
        node = TechnologyNode(feature_nm=65.0)
        return cls(
            name="65nm_timely",
            technology=node,
            # TDC-based conversion: cheaper per convert than a SAR ADC even at
            # the older node.
            adc_energy_8b_pj=1.6,
            adc_resolution_energy_base=1.7,
            dac_energy_per_pulse_pj=0.0016,
            reram_energy_per_device_pulse_pj=0.04,
            column_periphery_energy_pj=0.006,
            # Analog local accumulation replaces most per-convert digital work.
            shift_add_energy_pj=0.05,
            quantize_energy_pj=0.1,
            center_add_energy_pj=0.006,
            center_apply_energy_pj=0.06,
            sram_energy_per_byte_pj=0.25,
            edram_energy_per_byte_pj=1.0,
            router_energy_per_byte_pj=2.4,
        )
