"""The Titanium Law of ADC energy (Table 2).

    ADC energy / DNN = Energy/Convert x Converts/MAC x MACs/DNN x 1/Utilization

This module decomposes an architecture+workload pair into the four terms so
the tradeoffs of Table 2 can be reproduced and swept: lowering ADC resolution
reduces Energy/Convert but (with fixed fidelity) raises Converts/MAC; pruning
lowers MACs/DNN at an accuracy cost; mapping improvements raise utilisation
but cannot push it past one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.actions import count_model_actions
from repro.hw.architecture import ArchitectureSpec
from repro.nn.zoo import ModelShapes

__all__ = ["TitaniumLawTerms", "titanium_law"]


@dataclass(frozen=True)
class TitaniumLawTerms:
    """The four Titanium-Law factors plus the resulting ADC energy."""

    arch_name: str
    model_name: str
    energy_per_convert_pj: float
    converts_per_mac: float
    macs_per_dnn: float
    utilization: float

    @property
    def adc_energy_pj(self) -> float:
        """ADC energy per inference implied by the four terms."""
        return (
            self.energy_per_convert_pj
            * self.converts_per_mac
            * self.macs_per_dnn
            / max(self.utilization, 1e-12)
        )

    @property
    def adc_energy_uj(self) -> float:
        """ADC energy per inference in microjoules."""
        return self.adc_energy_pj / 1e6

    def as_dict(self) -> dict[str, float]:
        """The terms as a plain dictionary (for tabular reporting)."""
        return {
            "energy_per_convert_pj": self.energy_per_convert_pj,
            "converts_per_mac": self.converts_per_mac,
            "macs_per_dnn": self.macs_per_dnn,
            "utilization": self.utilization,
            "adc_energy_uj": self.adc_energy_uj,
        }


def titanium_law(shapes: ModelShapes, arch: ArchitectureSpec) -> TitaniumLawTerms:
    """Decompose ADC energy into the Titanium-Law terms for one DNN."""
    actions = count_model_actions(shapes, arch)
    total_macs = sum(a.macs for a in actions)
    total_converts = sum(a.adc_converts for a in actions)
    # Utilization: MAC-weighted fraction of allocated crossbar rows used.
    if total_macs:
        utilization = sum(a.row_utilization * a.macs for a in actions) / total_macs
    else:
        utilization = 1.0
    energy_per_convert = arch.components.adc_energy_pj(arch.adc_bits)
    converts_per_mac_utilized = total_converts / total_macs if total_macs else 0.0
    # Converts/MAC in the law excludes the utilisation penalty, which appears
    # as its own 1/Utilization factor.
    converts_per_mac = converts_per_mac_utilized * utilization
    return TitaniumLawTerms(
        arch_name=arch.name,
        model_name=shapes.name,
        energy_per_convert_pj=energy_per_convert,
        converts_per_mac=converts_per_mac,
        macs_per_dnn=float(total_macs),
        utilization=utilization,
    )
