"""Energy accounting: action counts x per-action energies.

Produces per-component energy breakdowns (Fig. 1, Fig. 14) and whole-DNN
energy (Fig. 12, Fig. 13).  All results are reported in microjoules per input
sample unless noted otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.actions import LayerActionCounts, count_model_actions
from repro.hw.architecture import ArchitectureSpec
from repro.nn.zoo import ModelShapes

__all__ = ["EnergyBreakdown", "EnergyModel"]

#: Component keys reported in breakdowns, in display order.
COMPONENT_KEYS = (
    "adc",
    "crossbar",
    "dac",
    "column_periphery",
    "digital",
    "center_processing",
    "input_buffer",
    "psum_buffer",
    "edram",
    "router",
    "quantization",
)


@dataclass
class EnergyBreakdown:
    """Per-component energy (pJ) for some unit of work (layer or model)."""

    name: str
    components_pj: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for key in COMPONENT_KEYS:
            self.components_pj.setdefault(key, 0.0)

    @property
    def total_pj(self) -> float:
        """Total energy in picojoules."""
        return float(sum(self.components_pj.values()))

    @property
    def total_uj(self) -> float:
        """Total energy in microjoules."""
        return self.total_pj / 1e6

    def fraction(self, key: str) -> float:
        """Fraction of total energy spent in one component."""
        total = self.total_pj
        return self.components_pj[key] / total if total else 0.0

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Accumulate another breakdown into this one (in place)."""
        for key, value in other.components_pj.items():
            self.components_pj[key] = self.components_pj.get(key, 0.0) + value
        return self

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            name=self.name,
            components_pj={k: v * factor for k, v in self.components_pj.items()},
        )

    def summary(self) -> str:
        """Human-readable component breakdown."""
        lines = [f"{self.name}: {self.total_uj:.2f} uJ"]
        for key in COMPONENT_KEYS:
            value = self.components_pj[key]
            if value:
                lines.append(f"  {key:>18}: {value / 1e6:9.3f} uJ ({self.fraction(key):5.1%})")
        return "\n".join(lines)


class EnergyModel:
    """Computes energy breakdowns for layers and whole DNNs."""

    def __init__(self, arch: ArchitectureSpec):
        self.arch = arch
        self.lib = arch.components

    def layer_energy(self, actions: LayerActionCounts) -> EnergyBreakdown:
        """Energy breakdown of one layer processing one input sample."""
        lib = self.lib
        adc = actions.adc_converts * lib.adc_energy_pj(self.arch.adc_bits)
        crossbar = actions.device_pulse_units * lib.reram_energy_per_device_pulse_pj
        dac = actions.dac_pulses * lib.dac_energy_per_pulse_pj
        periphery = actions.column_periphery_ops * lib.column_periphery_energy_pj
        digital = actions.shift_adds * lib.shift_add_energy_pj
        center = (
            actions.center_adds * lib.center_add_energy_pj
            + actions.center_applies * lib.center_apply_energy_pj
        )
        input_buffer = actions.input_buffer_bytes * lib.sram_energy_per_byte_pj
        psum_buffer = actions.psum_buffer_bytes * lib.sram_energy_per_byte_pj
        edram = actions.edram_bytes * lib.edram_energy_per_byte_pj
        router = actions.router_bytes * lib.router_energy_per_byte_pj
        quantization = actions.quantize_ops * lib.quantize_energy_pj
        return EnergyBreakdown(
            name=actions.layer.name,
            components_pj={
                "adc": adc,
                "crossbar": crossbar,
                "dac": dac,
                "column_periphery": periphery,
                "digital": digital,
                "center_processing": center,
                "input_buffer": input_buffer,
                "psum_buffer": psum_buffer,
                "edram": edram,
                "router": router,
                "quantization": quantization,
            },
        )

    def model_energy(self, shapes: ModelShapes, batch_size: int = 1) -> EnergyBreakdown:
        """Energy breakdown of a whole DNN for ``batch_size`` input samples."""
        total = EnergyBreakdown(name=f"{shapes.name}@{self.arch.name}")
        for actions in count_model_actions(shapes, self.arch):
            total.add(self.layer_energy(actions))
        if batch_size != 1:
            total = total.scaled(batch_size)
            total.name = f"{shapes.name}@{self.arch.name}x{batch_size}"
        return total

    def energy_per_mac_pj(self, shapes: ModelShapes) -> float:
        """Average energy per MAC across the DNN (pJ)."""
        breakdown = self.model_energy(shapes)
        macs = sum(a.macs for a in count_model_actions(shapes, self.arch))
        return breakdown.total_pj / macs if macs else 0.0

    def adc_energy_fraction(self, shapes: ModelShapes) -> float:
        """Fraction of total energy spent in ADCs."""
        return self.model_energy(shapes).fraction("adc")

    def programming_energy_pj(self, shapes: ModelShapes) -> float:
        """One-time ReRAM programming energy (amortised over inferences)."""
        total_devices = sum(
            a.reram_devices_programmed
            for a in count_model_actions(shapes, self.arch)
        )
        return total_devices * self.lib.reram_write_energy_pj
