"""Chip area model and tile-count derivation.

The paper evaluates every accelerator under a 600 mm^2 area budget: RAELLA
fits 743 tiles while ISAAC and FORMS fit 1024 (Section 6.1).  RAELLA's tiles
are larger because its crossbars are 16x bigger, its cells are 2T2R, and it
adds center buffers and success-flag storage -- but its 7-bit ADCs are smaller
than ISAAC's 8-bit ones and it needs fewer ADCs per column.

This module estimates per-tile area from the component library and derives how
many tiles fit a given budget, reproducing the relative tile counts and the
paper's observation that 2T2R cells add only ~10% system area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.architecture import ArchitectureSpec

__all__ = ["TileAreaBreakdown", "AreaModel"]


@dataclass(frozen=True)
class TileAreaBreakdown:
    """Per-tile area in mm^2, split by component."""

    arch_name: str
    crossbars_mm2: float
    adcs_mm2: float
    dacs_mm2: float
    column_periphery_mm2: float
    buffers_mm2: float
    edram_mm2: float
    router_share_mm2: float
    digital_mm2: float

    @property
    def total_mm2(self) -> float:
        """Total tile area."""
        return (
            self.crossbars_mm2
            + self.adcs_mm2
            + self.dacs_mm2
            + self.column_periphery_mm2
            + self.buffers_mm2
            + self.edram_mm2
            + self.router_share_mm2
            + self.digital_mm2
        )

    def fraction(self, component: str) -> float:
        """Fraction of tile area taken by one component attribute."""
        value = getattr(self, component)
        return value / self.total_mm2 if self.total_mm2 else 0.0


class AreaModel:
    """Estimates tile area and chip tile counts for an architecture."""

    #: Input + psum + center SRAM per crossbar, in kB (2 kB IMA input buffer
    #: shared by four crossbars, 768 B psum buffer, center storage).
    _SRAM_KB_PER_CROSSBAR = 1.5

    def __init__(self, arch: ArchitectureSpec):
        self.arch = arch
        self.lib = arch.components

    def crossbar_area_mm2(self) -> float:
        """Area of one crossbar array (cells only)."""
        cell_area = self.lib.reram_area_per_cell_mm2
        if self.arch.cell_devices == 2:
            cell_area *= self.lib.t2r2_cell_area_factor
        return self.arch.crossbar_rows * self.arch.crossbar_cols * cell_area

    def tile_area(self) -> TileAreaBreakdown:
        """Per-tile area breakdown."""
        arch, lib = self.arch, self.lib
        crossbars = arch.crossbars_per_tile
        crossbar_area = crossbars * self.crossbar_area_mm2()
        adcs = crossbars * arch.adcs_per_crossbar * lib.adc_area_mm2(arch.adc_bits)
        dacs = crossbars * arch.crossbar_rows * lib.dac_area_per_row_mm2
        periphery = (
            crossbars * arch.crossbar_cols * lib.column_periphery_area_per_col_mm2
        )
        buffers = crossbars * self._SRAM_KB_PER_CROSSBAR * lib.sram_area_per_kb_mm2
        edram = arch.edram_kb_per_tile * lib.edram_area_per_kb_mm2
        router_share = lib.router_area_mm2 / 4.0  # four tiles share a router
        digital = lib.digital_area_per_tile_mm2
        return TileAreaBreakdown(
            arch_name=arch.name,
            crossbars_mm2=crossbar_area,
            adcs_mm2=adcs,
            dacs_mm2=dacs,
            column_periphery_mm2=periphery,
            buffers_mm2=buffers,
            edram_mm2=edram,
            router_share_mm2=router_share,
            digital_mm2=digital,
        )

    def tiles_for_budget(self, budget_mm2: float | None = None) -> int:
        """How many tiles fit the area budget (600 mm^2 by default)."""
        budget = self.arch.area_budget_mm2 if budget_mm2 is None else budget_mm2
        if budget <= 0:
            raise ValueError("area budget must be positive")
        tile = self.tile_area().total_mm2
        return max(int(budget // tile), 1)

    def chip_area_mm2(self, n_tiles: int | None = None) -> float:
        """Total chip area for a tile count (defaults to the spec's tiles)."""
        tiles = self.arch.n_tiles if n_tiles is None else n_tiles
        return tiles * self.tile_area().total_mm2

    def cell_area_overhead_vs_1t1r(self) -> float:
        """Relative chip-area overhead of using 2T2R cells instead of 1T1R."""
        if self.arch.cell_devices == 1:
            return 0.0
        with_2t2r = self.tile_area().total_mm2
        smaller = AreaModel(self.arch.with_changes(cell_devices=1))
        return with_2t2r / smaller.tile_area().total_mm2 - 1.0
