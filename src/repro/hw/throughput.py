"""Throughput and latency model.

DNN layers run as a pipeline across tiles (Section 5.5): every layer works on
a different input sample (or a different output row), so steady-state
throughput is set by the slowest layer after weight replication.  Latency of a
single sample is the sum of per-layer latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.architecture import ArchitectureSpec
from repro.hw.mapping import DnnMapping, Mapper
from repro.nn.zoo import ModelShapes

__all__ = ["LayerTiming", "ThroughputReport", "ThroughputModel"]


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer timing results."""

    layer_name: str
    latency_cycles: float
    latency_us: float
    replicas: int
    crossbars: int


@dataclass
class ThroughputReport:
    """Whole-DNN throughput/latency results."""

    model_name: str
    arch_name: str
    layer_timings: list[LayerTiming] = field(default_factory=list)
    cycle_time_ns: float = 100.0

    def _require_timings(self) -> None:
        if not self.layer_timings:
            raise ValueError(
                f"throughput report for {self.model_name!r}@{self.arch_name!r} "
                "has no layer timings: the model mapped zero crossbar layers, "
                "so bottleneck/latency/throughput are undefined"
            )

    @property
    def bottleneck(self) -> LayerTiming:
        """The slowest (throughput-limiting) layer."""
        self._require_timings()
        return max(self.layer_timings, key=lambda t: t.latency_cycles)

    @property
    def steady_state_latency_us(self) -> float:
        """Pipeline initiation interval: time per sample in steady state."""
        return self.bottleneck.latency_us

    @property
    def throughput_samples_per_s(self) -> float:
        """Steady-state throughput (inferences per second)."""
        interval = self.steady_state_latency_us
        return 1e6 / interval if interval else float("inf")

    @property
    def single_sample_latency_us(self) -> float:
        """End-to-end latency of one sample through the pipeline."""
        self._require_timings()
        return float(sum(t.latency_us for t in self.layer_timings))

    def summary(self) -> str:
        """Human-readable throughput summary."""
        bottleneck = self.bottleneck
        return (
            f"{self.model_name}@{self.arch_name}: "
            f"{self.throughput_samples_per_s:,.0f} samples/s "
            f"(bottleneck {bottleneck.layer_name}, "
            f"{bottleneck.latency_us:.1f} us/sample, "
            f"{bottleneck.replicas} replicas)"
        )


class ThroughputModel:
    """Computes throughput and latency for full-scale DNN shape tables."""

    def __init__(self, arch: ArchitectureSpec):
        self.arch = arch
        self.mapper = Mapper(arch)

    def report_from_mapping(self, mapping: DnnMapping) -> ThroughputReport:
        """Build a throughput report from an existing mapping."""
        cycle_ns = self.arch.cycle_time_ns
        timings = [
            LayerTiming(
                layer_name=m.layer_name,
                latency_cycles=m.latency_cycles,
                latency_us=m.latency_cycles * cycle_ns / 1e3,
                replicas=m.total_replicas,
                crossbars=m.crossbars,
            )
            for m in mapping.layers
        ]
        return ThroughputReport(
            model_name=mapping.model_name,
            arch_name=self.arch.name,
            layer_timings=timings,
            cycle_time_ns=cycle_ns,
        )

    def evaluate(self, shapes: ModelShapes, replicate: bool = True) -> ThroughputReport:
        """Map a model and report its throughput."""
        mapping = self.mapper.map(shapes, replicate=replicate)
        return self.report_from_mapping(mapping)
