"""RAELLA reproduction: efficient, low-resolution, low-loss analog PIM.

This package reproduces the system described in

    Andrulis, Emer, Sze.  "RAELLA: Reforming the Arithmetic for Efficient,
    Low-Resolution, and Low-Loss Analog PIM: No Retraining Required!"
    ISCA 2023.

The package is organised as:

* :mod:`repro.arithmetic` -- bit-slicing and quantization substrate.
* :mod:`repro.analog`     -- behavioural ReRAM crossbar / ADC / DAC / noise models.
* :mod:`repro.nn`         -- NumPy quantized-DNN substrate (layers, models, zoo,
  synthetic data, training).
* :mod:`repro.core`       -- the RAELLA contribution: Center+Offset encoding,
  Adaptive Weight Slicing, Dynamic Input Slicing, the layer executor,
  the DNN compiler and the accelerator model.
* :mod:`repro.runtime`    -- vectorized batched execution engine: fused
  phase GEMMs (with an opt-in float32 fast path), encoded-weight caching,
  executor pooling and the :class:`~repro.runtime.NetworkEngine`
  batched-inference front end.
* :mod:`repro.serve`      -- multi-tenant serving: model registry, dynamic
  micro-batching inference server with SLO-aware (priority/deadline)
  scheduling, layer-pipeline sharded engine.
* :mod:`repro.telemetry`  -- hardware-grounded serving telemetry: per-layer
  energy/latency cost tables bridged from :mod:`repro.hw`, per-request
  traces and per-tenant aggregates with JSON/Prometheus export.
* :mod:`repro.hw`         -- Accelergy/Timeloop-style energy, area and
  throughput models plus the Titanium-Law analysis.
* :mod:`repro.baselines`  -- ISAAC, FORMS, TIMELY and Zero+Offset baselines.
* :mod:`repro.experiments`-- one module per paper table/figure.

Quickstart::

    from repro.nn.zoo import resnet18_like
    from repro.core.compiler import RaellaCompiler
    from repro.core.accelerator import RaellaAccelerator

    model = resnet18_like(seed=0)
    program = RaellaCompiler().compile(model)
    report = RaellaAccelerator().run(program)
    print(report.summary())
"""

from repro._version import __version__

__all__ = ["__version__"]
