"""ReRAM device and cell models.

The paper's crossbars are built from ReRAM devices programmable with up to
4 bits (Section 2.2), organised either as single 1T1R cells (unsigned weights,
as in ISAAC) or as 2T2R pairs (signed weights, one device adds current and the
other subtracts -- Section 4.1.4).  Device parameters follow the TIMELY /
Gao et al. devices the paper uses: 0.2 V read voltage, 1 kOhm / 20 kOhm on/off
resistance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["CellType", "ReRAMDevice", "DEFAULT_RERAM", "TIMELY_RERAM"]


class CellType(Enum):
    """Crossbar cell organisations.

    ``ONE_T_ONE_R`` -- a single device per cell storing an unsigned slice
    (ISAAC-style).  ``TWO_T_TWO_R`` -- a device pair per cell: one device holds
    the positive offset slice and the other the negative offset slice, so the
    cell adds or subtracts from the column sum (RAELLA-style).
    """

    ONE_T_ONE_R = "1T1R"
    TWO_T_TWO_R = "2T2R"

    @property
    def devices_per_cell(self) -> int:
        """Number of ReRAM devices in one cell."""
        return 1 if self is CellType.ONE_T_ONE_R else 2

    @property
    def signed(self) -> bool:
        """Whether the cell can represent signed slice values."""
        return self is CellType.TWO_T_TWO_R


@dataclass(frozen=True)
class ReRAMDevice:
    """Physical parameters of a single ReRAM device.

    Parameters
    ----------
    bits_per_device:
        Number of programmable bits (levels = ``2**bits - 1`` usable
        conductance steps above zero; RAELLA programs narrower slices by using
        only the lowest levels, Section 4.2.3).
    read_voltage_v:
        Read voltage applied across the device during compute.
    r_on_ohm / r_off_ohm:
        Low- and high-resistance-state resistances.
    write_energy_pj:
        Energy to program one device (amortised over many inferences).
    """

    bits_per_device: int = 4
    read_voltage_v: float = 0.2
    r_on_ohm: float = 1_000.0
    r_off_ohm: float = 20_000.0
    write_energy_pj: float = 100.0

    def __post_init__(self) -> None:
        if not 1 <= self.bits_per_device <= 5:
            raise ValueError("ReRAM devices support 1-5 bits per device")
        if self.read_voltage_v <= 0:
            raise ValueError("read voltage must be positive")
        if self.r_on_ohm <= 0 or self.r_off_ohm <= self.r_on_ohm:
            raise ValueError("require 0 < r_on < r_off")
        if self.write_energy_pj < 0:
            raise ValueError("write energy must be non-negative")

    @property
    def levels(self) -> int:
        """Number of programmable conductance levels (including zero)."""
        return 1 << self.bits_per_device

    @property
    def max_slice_value(self) -> int:
        """Largest slice value a device can hold: ``2**bits - 1``."""
        return self.levels - 1

    @property
    def g_on_s(self) -> float:
        """On-state conductance in siemens."""
        return 1.0 / self.r_on_ohm

    @property
    def g_off_s(self) -> float:
        """Off-state conductance in siemens."""
        return 1.0 / self.r_off_ohm

    def conductance_for_level(self, level: int) -> float:
        """Conductance (S) for an integer slice value ``level``.

        Levels interpolate linearly between off- and on-state conductance, the
        standard multi-level-cell assumption used by NeuroSim-style models.
        """
        if not 0 <= level <= self.max_slice_value:
            raise ValueError(f"level {level} outside [0, {self.max_slice_value}]")
        fraction = level / self.max_slice_value
        return self.g_off_s + fraction * (self.g_on_s - self.g_off_s)

    def supports_slice_bits(self, bits: int) -> bool:
        """Whether a slice of ``bits`` bits fits in one device."""
        return 1 <= bits <= self.bits_per_device


#: Default device used by RAELLA and the re-modelled baselines (32 nm node).
DEFAULT_RERAM = ReRAMDevice()

#: Device parameters used for the TIMELY (65 nm) comparison.
TIMELY_RERAM = ReRAMDevice(
    bits_per_device=4,
    read_voltage_v=0.2,
    r_on_ohm=1_000.0,
    r_off_ohm=20_000.0,
    write_energy_pj=150.0,
)
