"""Behavioural models of the analog PIM substrate.

This subpackage models the analog portion of a ReRAM PIM accelerator at the
functional level the paper's evaluation relies on:

* :mod:`repro.analog.devices`  -- ReRAM device and cell (1T1R / 2T2R) parameters.
* :mod:`repro.analog.dac`      -- pulse-train digital-to-analog converters.
* :mod:`repro.analog.adc`      -- analog-to-digital converter models, including
  RAELLA's saturating LSB-capture ADC and the LSB-truncating ADC used by
  Sum-Fidelity-Limited baselines.
* :mod:`repro.analog.noise`    -- the Gaussian column-sum noise model of
  Section 7.2.
* :mod:`repro.analog.crossbar` -- the crossbar array: programming sliced
  weights and computing analog column sums.
"""

from repro.analog.adc import ADCResult, SaturatingADC, TruncatingADC
from repro.analog.crossbar import Crossbar, CrossbarConfig
from repro.analog.dac import PulseTrainDAC
from repro.analog.devices import CellType, ReRAMDevice
from repro.analog.noise import GaussianColumnNoise, NoiseModel, NoiselessModel

__all__ = [
    "ADCResult",
    "SaturatingADC",
    "TruncatingADC",
    "Crossbar",
    "CrossbarConfig",
    "PulseTrainDAC",
    "CellType",
    "ReRAMDevice",
    "GaussianColumnNoise",
    "NoiseModel",
    "NoiselessModel",
]
