"""Pulse-train digital-to-analog converters.

RAELLA drives crossbar rows with 4-bit pulse-train DACs (Section 5.1): an
N-bit input slice is encoded as up to ``2**N - 1`` unit pulses, giving simple
hardware and good linearity.  The DAC model exposes both the functional view
(the integer value applied to the row) and the cost view (number of pulses,
which the crossbar energy model scales with).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PulseTrainDAC"]


@dataclass(frozen=True)
class PulseTrainDAC:
    """A pulse-train DAC driving one crossbar row.

    Parameters
    ----------
    bits:
        Maximum input-slice width the DAC supports (4 for RAELLA).
    pulse_width_ns:
        Width of a single on pulse; with an equal off time, an N-bit slice
        takes ``2 * pulse_width_ns * (2**N - 1)`` nanoseconds to stream.
    energy_per_pulse_fj:
        Driver energy per emitted pulse (flip-flop + AND gate + row driver).
    """

    bits: int = 4
    pulse_width_ns: float = 1.0
    energy_per_pulse_fj: float = 0.8

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 8:
            raise ValueError("DAC bits must be in [1, 8]")
        if self.pulse_width_ns <= 0:
            raise ValueError("pulse width must be positive")
        if self.energy_per_pulse_fj < 0:
            raise ValueError("pulse energy must be non-negative")

    @property
    def max_value(self) -> int:
        """Largest slice value the DAC can emit."""
        return (1 << self.bits) - 1

    def validate_slice(self, values: np.ndarray, slice_bits: int) -> np.ndarray:
        """Check that an input slice fits the DAC (narrower slices use the
        lowest levels only, Section 4.3.1) and return it as int64."""
        if not 1 <= slice_bits <= self.bits:
            raise ValueError(f"slice of {slice_bits}b does not fit a {self.bits}b DAC")
        arr = np.asarray(values, dtype=np.int64)
        if np.any(arr < 0) or np.any(arr >= (1 << slice_bits)):
            raise ValueError(f"values outside the {slice_bits}-bit DAC range")
        return arr

    def pulses(self, values: np.ndarray) -> np.ndarray:
        """Number of pulses emitted for each slice value (equal to the value)."""
        arr = np.asarray(values, dtype=np.int64)
        if np.any(arr < 0) or np.any(arr > self.max_value):
            raise ValueError("values outside the DAC range")
        return arr

    def stream_time_ns(self, slice_bits: int) -> float:
        """Worst-case time to stream one slice of ``slice_bits`` bits."""
        if not 1 <= slice_bits <= self.bits:
            raise ValueError("slice_bits outside DAC range")
        return 2.0 * self.pulse_width_ns * ((1 << slice_bits) - 1)

    def energy_fj(self, values: np.ndarray) -> float:
        """Total driver energy (fJ) to emit the given slice values."""
        return float(self.pulses(values).sum()) * self.energy_per_pulse_fj
