"""Analog non-ideality analysis: IR drop and sneak current (Section 5.6).

Beyond ADC fidelity, analog crossbars suffer from two structural effects:

* **IR drop** -- current flowing down a long column loses voltage across the
  wire resistance, distorting large column sums.  The paper argues RAELLA is
  robust because its ADC saturates at 64, i.e. a column never needs to carry
  more than the current of about five fully-on devices, whereas an ISAAC-like
  design sums the current of up to 128 devices.
* **Sneak current** -- leakage through unselected devices.  In 2T2R crossbars
  the leakage of the positive and negative device of each pair cancels, so the
  net sneak contribution is (to first order) zero.

These helpers quantify both effects for a configuration so the claims can be
tested and compared across architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.devices import DEFAULT_RERAM, CellType, ReRAMDevice

__all__ = ["ColumnCurrentAnalysis", "analyze_column_current", "sneak_current_bound"]


@dataclass(frozen=True)
class ColumnCurrentAnalysis:
    """Worst-case column current and the resulting IR drop estimate."""

    arch_name: str
    max_devices_conducting: float
    worst_case_current_ma: float
    ir_drop_mv: float
    read_voltage_mv: float

    @property
    def relative_ir_drop(self) -> float:
        """IR drop as a fraction of the read voltage."""
        return self.ir_drop_mv / self.read_voltage_mv if self.read_voltage_mv else 0.0


def analyze_column_current(
    arch_name: str,
    rows: int,
    max_column_sum: float,
    max_slice_value: int = 15,
    device: ReRAMDevice = DEFAULT_RERAM,
    wire_resistance_per_row_ohm: float = 0.5,
) -> ColumnCurrentAnalysis:
    """Estimate worst-case column current and IR drop.

    ``max_column_sum`` is the largest analog column sum the design must carry
    without distortion: for RAELLA this is the ADC saturation bound (64); for
    a full-fidelity design it is ``rows * max_slice * max_input_slice``.
    The column sum is expressed in units of (input value x slice value); one
    unit corresponds to one device at 1/``max_slice_value`` of on-state
    conductance driven by one unit pulse.
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    if max_column_sum < 0:
        raise ValueError("max_column_sum must be non-negative")
    # Devices-worth of on-state current the column must tolerate.
    devices_conducting = max_column_sum / max_slice_value
    current_a = devices_conducting * device.read_voltage_v * device.g_on_s
    # Average current traverses roughly half the column's wire resistance.
    wire_resistance = wire_resistance_per_row_ohm * rows / 2.0
    ir_drop_v = current_a * wire_resistance
    return ColumnCurrentAnalysis(
        arch_name=arch_name,
        max_devices_conducting=devices_conducting,
        worst_case_current_ma=current_a * 1e3,
        ir_drop_mv=ir_drop_v * 1e3,
        read_voltage_mv=device.read_voltage_v * 1e3,
    )


def sneak_current_bound(
    cell_type: CellType,
    rows: int,
    device: ReRAMDevice = DEFAULT_RERAM,
    off_device_fraction: float = 1.0,
) -> float:
    """Worst-case sneak (leakage) current per column in milliamps.

    For 1T1R cells every off device leaks through its off-state conductance;
    for 2T2R cells the positive and negative leakages cancel and the bound is
    zero (Section 5.6).
    """
    if rows <= 0:
        raise ValueError("rows must be positive")
    if not 0.0 <= off_device_fraction <= 1.0:
        raise ValueError("off_device_fraction must be in [0, 1]")
    if cell_type is CellType.TWO_T_TWO_R:
        return 0.0
    leak_a = rows * off_device_fraction * device.read_voltage_v * device.g_off_s
    return leak_a * 1e3
