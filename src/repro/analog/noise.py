"""Analog variation and noise models for column sums.

Section 7.2 of the paper models analog variation as a Gaussian added to each
column sum: for a column whose positive and negative sliced-product sums are
``N+`` and ``N-``, the observed sum is drawn from ``Normal(N+ - N-,
(E * sqrt(N+ + N-))**2)`` where ``E`` is the noise level (up to 12% in the
paper's sweep).  Noise is additive across sliced products, so the standard
deviation grows with the total analog activity rather than with the net sum --
which is exactly why Center+Offset's cancellation also reduces noise impact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

__all__ = ["NoiseModel", "NoiselessModel", "GaussianColumnNoise"]


class NoiseModel(Protocol):
    """Protocol for column-sum noise models."""

    def apply(self, positive_sums: np.ndarray, negative_sums: np.ndarray) -> np.ndarray:
        """Return noisy column sums given positive/negative activity."""
        ...


@dataclass
class NoiselessModel:
    """Ideal crossbar: the column sum is exactly ``N+ - N-``."""

    def apply(self, positive_sums: np.ndarray, negative_sums: np.ndarray) -> np.ndarray:
        """Return the ideal column sums."""
        return np.asarray(positive_sums, dtype=np.float64) - np.asarray(
            negative_sums, dtype=np.float64
        )


@dataclass
class GaussianColumnNoise:
    """Gaussian column-sum noise with activity-dependent standard deviation.

    Parameters
    ----------
    level:
        The paper's noise level ``E`` (0.0 -- 0.12 in the Fig. 15 sweep).
    seed:
        Seed for the internal random generator, for reproducible experiments.
    """

    level: float
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("noise level must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def apply(self, positive_sums: np.ndarray, negative_sums: np.ndarray) -> np.ndarray:
        """Draw noisy column sums.

        The mean is the ideal sum ``N+ - N-`` and the standard deviation is
        ``level * sqrt(N+ + N-)``.
        """
        positive = np.asarray(positive_sums, dtype=np.float64)
        negative = np.asarray(negative_sums, dtype=np.float64)
        ideal = positive - negative
        if self.level == 0.0:
            return ideal
        activity = np.maximum(positive + negative, 0.0)
        sigma = self.level * np.sqrt(activity)
        return ideal + self._rng.normal(0.0, 1.0, size=ideal.shape) * sigma

    def reseed(self, seed: int | None) -> None:
        """Reset the internal random generator (useful between experiments)."""
        self._rng = np.random.default_rng(seed)
