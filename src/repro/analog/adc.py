"""Analog-to-digital converter models.

Two conversion policies matter in the paper:

* :class:`SaturatingADC` -- RAELLA's policy (Section 3): the ADC always
  captures the least-significant bits of the column sum with a unit step size,
  so small sums are converted exactly and sums outside the signed range
  saturate at the bounds.  Saturation is what Adaptive/Dynamic slicing keep
  rare, and detecting a saturated output is how speculation failures are found.
* :class:`TruncatingADC` -- the policy of Sum-Fidelity-Limited designs
  (PRIME, TIMELY, CASCADE): the ADC captures the most-significant bits of a
  wide column sum and drops LSBs, losing fidelity on every conversion.

Both return an :class:`ADCResult` with the converted values and bookkeeping
needed by the executors (saturation masks and convert counts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ADCResult", "SaturatingADC", "TruncatingADC"]


@dataclass(frozen=True)
class ADCResult:
    """Outcome of converting an array of column sums.

    Attributes
    ----------
    values:
        Converted (digital) column sums, same shape as the input.
    saturated:
        Boolean mask of entries that hit the ADC bounds (only meaningful for
        the saturating ADC; always ``False`` for the truncating ADC).
    n_converts:
        Number of ADC conversions performed (the array size, unless a mask
        restricted conversion to a subset of columns).
    """

    values: np.ndarray
    saturated: np.ndarray
    n_converts: int

    @property
    def saturation_rate(self) -> float:
        """Fraction of converted entries that saturated."""
        if self.saturated.size == 0:
            return 0.0
        return float(np.mean(self.saturated))


@dataclass(frozen=True)
class SaturatingADC:
    """Signed LSB-capture ADC with saturation (RAELLA's 7-bit ADC).

    A ``bits``-bit signed ADC represents the range ``[-2**(bits-1),
    2**(bits-1) - 1]`` with a step size of one, i.e. it captures the
    ``bits`` least-significant bits of the column sum exactly and clamps
    anything outside the range to the nearest bound.
    """

    bits: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("ADC resolution must be in [1, 16] bits")

    @property
    def min_value(self) -> int:
        """Most negative representable value."""
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        """Most positive representable value."""
        return (1 << (self.bits - 1)) - 1

    def convert(
        self, column_sums: np.ndarray, mask: np.ndarray | None = None
    ) -> ADCResult:
        """Convert analog column sums to digital values.

        Parameters
        ----------
        column_sums:
            Analog column sums (integers, possibly perturbed by noise; noisy
            values are rounded to the nearest integer step first).
        mask:
            Optional boolean mask of entries to convert.  Unconverted entries
            are returned as zero and do not count toward ``n_converts`` --
            this models recovery cycles where ADCs are power-gated for columns
            whose speculation succeeded (Section 4.3).
        """
        sums = np.round(np.asarray(column_sums, dtype=np.float64)).astype(np.int64)
        clipped = np.clip(sums, self.min_value, self.max_value)
        saturated = (clipped == self.min_value) | (clipped == self.max_value)
        if mask is None:
            return ADCResult(
                values=clipped, saturated=saturated, n_converts=int(sums.size)
            )
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != sums.shape:
            raise ValueError("mask shape must match column_sums shape")
        values = np.where(mask, clipped, 0)
        saturated = saturated & mask
        return ADCResult(values=values, saturated=saturated, n_converts=int(mask.sum()))

    def detects_saturation(self, converted: np.ndarray) -> np.ndarray:
        """Mask of converted outputs that equal an ADC bound.

        This is how RAELLA detects speculation failures: any output equal to
        the min or max code is treated as possibly-saturated (Section 4.3).
        """
        arr = np.asarray(converted, dtype=np.int64)
        return (arr <= self.min_value) | (arr >= self.max_value)


@dataclass(frozen=True)
class TruncatingADC:
    """Unsigned MSB-capture ADC that drops least-significant bits.

    Models Sum-Fidelity-Limited conversion: a column sum that needs
    ``sum_bits`` bits is quantized by a ``bits``-bit ADC that keeps the top
    ``bits`` bits, i.e. divides by ``2**(sum_bits - bits)``.  When
    ``sum_bits <= bits`` conversion is exact.
    """

    bits: int = 8
    signed: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("ADC resolution must be in [1, 16] bits")

    def convert(self, column_sums: np.ndarray, sum_bits: int) -> ADCResult:
        """Convert column sums that span ``sum_bits`` bits of range.

        The returned values are re-scaled back to the original magnitude
        (truncated LSBs become zeros) so downstream shift+add logic is
        unchanged; the information in the dropped bits is simply lost.
        """
        if sum_bits <= 0:
            raise ValueError("sum_bits must be positive")
        sums = np.round(np.asarray(column_sums, dtype=np.float64)).astype(np.int64)
        dropped = max(sum_bits - self.bits, 0)
        step = 1 << dropped
        quantized = (sums // step) * step
        lo = -(1 << (sum_bits - 1)) if self.signed else 0
        hi = (1 << (sum_bits - 1)) - 1 if self.signed else (1 << sum_bits) - 1
        clipped = np.clip(quantized, lo, hi)
        saturated = np.zeros_like(clipped, dtype=bool)
        return ADCResult(values=clipped, saturated=saturated, n_converts=int(sums.size))

    def lsbs_dropped(self, sum_bits: int) -> int:
        """Number of least-significant bits lost for a given sum width."""
        return max(sum_bits - self.bits, 0)
