"""ReRAM crossbar array model.

A crossbar stores one slice matrix (rows x columns of slice values) and
computes analog column sums: every row's DAC applies an input-slice value,
every cell multiplies it with its stored slice, and per-column currents
accumulate.  For 2T2R cells each cell holds a positive and a negative slice
value and the two contributions subtract in analog (Section 4.1.4).

The model is functional: slice values are integers and column sums are exact
integer dot products, optionally perturbed by a :class:`~repro.analog.noise`
model, before an ADC converts them.  Data-dependent cost metrics (input pulse
counts and analog activity) are reported so the hardware cost model in
:mod:`repro.hw` can translate them into energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analog.devices import DEFAULT_RERAM, CellType, ReRAMDevice
from repro.analog.noise import NoiseModel, NoiselessModel

__all__ = ["CrossbarConfig", "CrossbarComputeResult", "Crossbar"]


@dataclass(frozen=True)
class CrossbarConfig:
    """Static configuration of a crossbar array.

    Parameters
    ----------
    rows / cols:
        Array dimensions.  RAELLA uses 512 x 512; ISAAC uses 128 x 128.
    cell_type:
        1T1R (unsigned) or 2T2R (signed) cells.
    device:
        The ReRAM device used in each cell.
    """

    rows: int = 512
    cols: int = 512
    cell_type: CellType = CellType.TWO_T_TWO_R
    device: ReRAMDevice = DEFAULT_RERAM

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("crossbar dimensions must be positive")

    @property
    def n_cells(self) -> int:
        """Number of cells in the array."""
        return self.rows * self.cols

    @property
    def n_devices(self) -> int:
        """Number of ReRAM devices in the array."""
        return self.n_cells * self.cell_type.devices_per_cell

    @property
    def signed(self) -> bool:
        """Whether cells can subtract from column sums."""
        return self.cell_type.signed


@dataclass
class CrossbarComputeResult:
    """Result of one analog crossbar evaluation (one input-slice cycle).

    Attributes
    ----------
    column_sums:
        Analog column sums after noise, shape ``inputs.shape[:-1] + (cols,)``.
    positive_activity / negative_activity:
        Sums of positive / negative sliced products per column (pre-noise);
        their sum is the analog activity that the noise model and the
        data-dependent crossbar energy model scale with.
    input_pulses:
        Total DAC pulses applied (sum of input slice values over active rows).
    """

    column_sums: np.ndarray
    positive_activity: np.ndarray
    negative_activity: np.ndarray
    input_pulses: int

    @property
    def total_activity(self) -> float:
        """Total analog activity (positive + negative sliced-product sums)."""
        return float(self.positive_activity.sum() + self.negative_activity.sum())


@dataclass
class Crossbar:
    """A programmable crossbar array.

    The crossbar is programmed once with positive (and, for 2T2R, negative)
    slice matrices and then evaluated many times with input-slice vectors.
    """

    config: CrossbarConfig = field(default_factory=CrossbarConfig)
    noise: NoiseModel = field(default_factory=NoiselessModel)
    _positive: np.ndarray | None = field(default=None, init=False, repr=False)
    _negative: np.ndarray | None = field(default=None, init=False, repr=False)

    @property
    def is_programmed(self) -> bool:
        """Whether weight slices have been programmed."""
        return self._positive is not None

    @property
    def positive_slices(self) -> np.ndarray:
        """Programmed positive slice matrix (rows x cols)."""
        self._require_programmed()
        return self._positive

    @property
    def negative_slices(self) -> np.ndarray:
        """Programmed negative slice matrix (rows x cols)."""
        self._require_programmed()
        return self._negative

    def _require_programmed(self) -> None:
        if not self.is_programmed:
            raise RuntimeError("crossbar has not been programmed")

    def program(self, positive: np.ndarray, negative: np.ndarray | None = None) -> None:
        """Program slice matrices into the array.

        ``positive`` and ``negative`` may be smaller than the array (the used
        sub-array); the rest of the array is treated as unprogrammed zeros.
        For 1T1R crossbars ``negative`` must be omitted or all zero.
        """
        positive = np.asarray(positive, dtype=np.int64)
        if positive.ndim != 2:
            raise ValueError("slice matrices must be 2-D (rows x cols)")
        rows, cols = positive.shape
        if rows > self.config.rows or cols > self.config.cols:
            raise ValueError(
                f"slice matrix {positive.shape} exceeds crossbar "
                f"{self.config.rows}x{self.config.cols}"
            )
        if negative is None:
            negative = np.zeros_like(positive)
        negative = np.asarray(negative, dtype=np.int64)
        if negative.shape != positive.shape:
            raise ValueError("positive and negative matrices must match in shape")
        max_value = self.config.device.max_slice_value
        for name, matrix in (("positive", positive), ("negative", negative)):
            if np.any(matrix < 0) or np.any(matrix > max_value):
                raise ValueError(
                    f"{name} slice values outside device range [0, {max_value}]"
                )
        if not self.config.signed and np.any(negative != 0):
            raise ValueError("1T1R crossbars cannot store negative slices")
        self._positive = positive
        self._negative = negative

    @property
    def used_rows(self) -> int:
        """Number of programmed rows."""
        self._require_programmed()
        return self._positive.shape[0]

    @property
    def used_cols(self) -> int:
        """Number of programmed columns."""
        self._require_programmed()
        return self._positive.shape[1]

    @property
    def programming_energy_pj(self) -> float:
        """One-time energy to write the programmed devices."""
        self._require_programmed()
        written = int(
            np.count_nonzero(self._positive) + np.count_nonzero(self._negative)
        )
        return written * self.config.device.write_energy_pj

    def compute(self, input_slice: np.ndarray) -> CrossbarComputeResult:
        """Evaluate one input-slice cycle.

        Parameters
        ----------
        input_slice:
            Non-negative input-slice values for the programmed rows; shape
            ``(..., used_rows)`` (a batch of input vectors is allowed).

        Returns
        -------
        :class:`CrossbarComputeResult` with noisy column sums over the
        programmed columns.
        """
        self._require_programmed()
        inputs = np.asarray(input_slice, dtype=np.int64)
        if inputs.shape[-1] != self.used_rows:
            raise ValueError(
                f"input has {inputs.shape[-1]} rows, crossbar programmed with "
                f"{self.used_rows}"
            )
        if np.any(inputs < 0):
            raise ValueError("input slice values must be non-negative")
        positive_activity = inputs @ self._positive
        negative_activity = inputs @ self._negative
        column_sums = self.noise.apply(positive_activity, negative_activity)
        return CrossbarComputeResult(
            column_sums=column_sums,
            positive_activity=positive_activity,
            negative_activity=negative_activity,
            input_pulses=int(inputs.sum()),
        )
