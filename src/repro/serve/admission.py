"""Admission control: typed accept/shed/downgrade decisions at submit time.

PR 3 taught the scheduler to *order* work by priority and deadline slack, but
under overload every request was still accepted: a doomed request (deadline
already unmeetable given the backlog) would queue, consume engine time, and
delay feasible work behind it.  This module adds the standard serving-systems
discipline -- bounded queues plus early rejection beat unbounded queues at
every utilization level:

* :class:`AdmissionController` evaluates every :meth:`InferenceServer.submit
  <repro.serve.server.InferenceServer.submit>` against the calibrated latency
  predictions (:meth:`TelemetryCollector.predicted_batch_latency_s
  <repro.telemetry.collector.TelemetryCollector.predicted_batch_latency_s>`)
  and the live queue depth, and returns a typed :class:`AdmissionDecision`
  -- ``"accepted"``, ``"shed"`` or ``"downgraded"`` -- carrying the evidence
  (predicted slack, queue depths, overload state) instead of silently
  enqueueing.
* :class:`AdmissionPolicy` sets per-model and per-tenant queue-depth caps,
  predicted inflight-cost caps, the unmeetable-deadline policy (shed, or
  downgrade to best-effort), and the overload state machine thresholds.
* :class:`OverloadState` is that state machine: ``ACCEPTING`` ->
  ``SHED_BEST_EFFORT`` (predicted backlog beyond the overload threshold:
  best-effort requests are rejected outright) -> ``SHED_ALL_BUT_TOP``
  (backlog beyond the critical threshold: only requests at or above the
  configured top priority are admitted), with hysteresis on the way back
  down so the state does not flap at a threshold.

Every decision is pure dictionary lookups and float arithmetic -- O(hosted
models), no locks beyond the controller's own counter lock, and never an
engine call -- so a shed costs microseconds (``benchmarks/bench_admission.py``
pins this).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Mapping

from repro.serve.scheduler import InferenceFuture, LatencyEstimator

__all__ = [
    "AdmissionController",
    "AdmissionCounters",
    "AdmissionDecision",
    "AdmissionPolicy",
    "OverloadState",
    "RequestShedError",
]

#: ``AdmissionDecision.status`` values.
ACCEPTED = "accepted"
DOWNGRADED = "downgraded"
SHED = "shed"


class OverloadState(enum.Enum):
    """The admission controller's overload state machine.

    States escalate with the *total predicted backlog* (seconds of modeled
    engine work queued or inflight across all models, via the calibrated
    latency predictor) and de-escalate with hysteresis
    (:attr:`AdmissionPolicy.overload_exit_fraction`).
    """

    ACCEPTING = "accepting"
    SHED_BEST_EFFORT = "shed_best_effort"
    SHED_ALL_BUT_TOP = "shed_all_but_top"

    @property
    def severity(self) -> int:
        """Numeric escalation level (0 accepting .. 2 critical), for export."""
        return _SEVERITY[self]


_SEVERITY = {
    OverloadState.ACCEPTING: 0,
    OverloadState.SHED_BEST_EFFORT: 1,
    OverloadState.SHED_ALL_BUT_TOP: 2,
}


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs of the admission controller.

    Every cap is optional (``None`` disables it); the default policy only
    sheds requests whose deadline is provably unmeetable, and only once a
    latency prediction exists for their model.

    Caps are evaluated against a point-in-time backlog snapshot and are not
    atomic with the enqueue: N submitter threads racing through admission
    can overshoot a cap by up to N-1 requests (making the check atomic
    would serialise every submit behind one lock).  Caps bound backlog
    growth; they are not an exact invariant under concurrency.

    Parameters
    ----------
    max_queue_samples_per_model:
        Cap on one model's backlog (queued + dispatched-but-unfinished
        samples).  A request that would push the model past the cap is shed.
    max_queue_samples_per_tenant:
        The same cap summed over every model registered to the request's
        tenant (:meth:`ModelRegistry.register
        <repro.serve.registry.ModelRegistry.register>` ``tenant=``).
    max_inflight_cost_s:
        Cap on one model's *predicted* backlog in seconds -- the calibrated
        latency prediction for the model's backlog including the candidate
        request.  Ignored while the model has no prediction.
    max_tenant_inflight_cost_s:
        The predicted-seconds cap summed across the tenant's models.
    deadline_policy:
        What to do with a request whose predicted slack is negative:
        ``"shed"`` rejects it, ``"downgrade"`` strips its SLO fields and
        admits it as best-effort work (unless the overload state is already
        shedding best-effort, in which case it is shed after all).
    slack_margin_s:
        Safety margin subtracted from predicted slack before the
        unmeetable-deadline test, absorbing prediction noise.
    overload_enter_backlog_s:
        Total predicted backlog (seconds, all models) beyond which the state
        machine enters :attr:`OverloadState.SHED_BEST_EFFORT`.
    critical_enter_backlog_s:
        Backlog beyond which it enters :attr:`OverloadState.SHED_ALL_BUT_TOP`.
    overload_exit_fraction:
        Hysteresis: a state is left only once the backlog drops below
        ``fraction * its entry threshold``, so the state cannot flap across
        a threshold on every submit.
    critical_priority:
        Minimum request priority still admitted in
        :attr:`OverloadState.SHED_ALL_BUT_TOP`.
    """

    max_queue_samples_per_model: int | None = None
    max_queue_samples_per_tenant: int | None = None
    max_inflight_cost_s: float | None = None
    max_tenant_inflight_cost_s: float | None = None
    deadline_policy: str = "shed"
    slack_margin_s: float = 0.0
    overload_enter_backlog_s: float | None = None
    critical_enter_backlog_s: float | None = None
    overload_exit_fraction: float = 0.5
    critical_priority: int = 1

    def __post_init__(self) -> None:
        for name in (
            "max_queue_samples_per_model",
            "max_queue_samples_per_tenant",
            "max_inflight_cost_s",
            "max_tenant_inflight_cost_s",
            "overload_enter_backlog_s",
            "critical_enter_backlog_s",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        if self.deadline_policy not in ("shed", "downgrade"):
            raise ValueError("deadline_policy must be 'shed' or 'downgrade'")
        if self.slack_margin_s < 0:
            raise ValueError("slack_margin_s must be non-negative")
        if not 0.0 < self.overload_exit_fraction <= 1.0:
            raise ValueError("overload_exit_fraction must be in (0, 1]")
        if (
            self.overload_enter_backlog_s is not None
            and self.critical_enter_backlog_s is not None
            and self.critical_enter_backlog_s < self.overload_enter_backlog_s
        ):
            raise ValueError(
                "critical_enter_backlog_s must be >= overload_enter_backlog_s"
            )


@dataclass
class AdmissionDecision:
    """The typed outcome of one :meth:`InferenceServer.submit` call.

    ``status`` is one of ``"accepted"``, ``"downgraded"`` (admitted, but with
    its priority and deadline stripped) or ``"shed"`` (rejected: no work was
    enqueued and :attr:`future` is ``None``).  The remaining fields are the
    evidence the decision rests on: queue depths at decision time, the
    calibrated latency prediction, the resulting deadline slack, and the
    overload state.

    The decision is also a drop-in result handle: :meth:`result` and
    :meth:`done` forward to the underlying
    :class:`~repro.serve.scheduler.InferenceFuture`, so
    ``server.submit(...).result()`` keeps working -- a shed request raises
    :class:`RequestShedError` instead of blocking forever.
    """

    status: str
    request_id: int
    model_name: str
    tenant: str
    reason: str
    overload_state: OverloadState
    queue_depth_samples: int | None = None
    tenant_depth_samples: int | None = None
    predicted_latency_s: float | None = None
    predicted_slack_s: float | None = None
    future: InferenceFuture | None = None
    #: Distributed-trace id of a sampled request (set by the server when a
    #: tracer is attached); the gateway echoes it in ``/v1/infer`` replies
    #: so clients can look their request up in the flight recorder.
    trace_id: str | None = None

    @property
    def accepted(self) -> bool:
        """Whether the request was enqueued (``accepted`` or ``downgraded``)."""
        return self.status != SHED

    def done(self) -> bool:
        """Whether a result (or the shed rejection) is already available."""
        return True if self.future is None else self.future.done()

    def result(self, timeout: float | None = None):
        """The request's output array; raises :class:`RequestShedError` if shed."""
        if self.future is None:
            raise self.shed_error()
        return self.future.result(timeout)

    def shed_error(self) -> RequestShedError:
        """The rejection this decision stands for, ready to raise.

        Shared by the sync :meth:`result` path and the asyncio facade
        (:class:`~repro.serve.aio.AsyncAdmissionDecision`), so both surface
        the identical exception object shape for a shed request.
        """
        return RequestShedError(self)

    def as_dict(self) -> dict:
        """JSON-ready representation (without the live future handle)."""
        return {
            "status": self.status,
            "request_id": self.request_id,
            "model": self.model_name,
            "tenant": self.tenant,
            "reason": self.reason,
            "overload_state": self.overload_state.value,
            "queue_depth_samples": self.queue_depth_samples,
            "tenant_depth_samples": self.tenant_depth_samples,
            "predicted_latency_s": self.predicted_latency_s,
            "predicted_slack_s": self.predicted_slack_s,
            "trace_id": self.trace_id,
        }


class RequestShedError(RuntimeError):
    """Raised when the result of a shed request is demanded."""

    def __init__(self, decision: AdmissionDecision):
        self.decision = decision
        super().__init__(
            f"request {decision.request_id} for model "
            f"{decision.model_name!r} was shed: {decision.reason}"
        )


@dataclass
class AdmissionCounters:
    """Cumulative controller-level decision counts (snapshot, not live)."""

    accepted: int = 0
    downgraded: int = 0
    shed: int = 0
    state_transitions: int = 0

    @property
    def decisions(self) -> int:
        """Total decisions taken."""
        return self.accepted + self.downgraded + self.shed


class AdmissionController:
    """Computes accept/shed/downgrade decisions for an inference server.

    Thread-safe: any number of submitter threads may call :meth:`decide`
    concurrently (the state machine and counters sit behind one lock; the
    arithmetic is lock-free).  One controller guards one server -- its
    overload state reflects that server's backlog.

    Parameters
    ----------
    policy:
        Caps and thresholds; defaults to :class:`AdmissionPolicy`'s
        deadline-only shedding.
    latency_predictor:
        Optional ``(model_name, n_samples) -> seconds | None`` override.
        When ``None`` the server wires in its telemetry collector's
        calibrated :meth:`predicted_batch_latency_s
        <repro.telemetry.collector.TelemetryCollector.predicted_batch_latency_s>`
        *with the observed queue-wait EMA folded in*
        (``include_queue_wait=True``), so every rule below prices
        cross-model worker contention -- time this model's batches spend
        queued behind co-hosted tenants' -- on top of the modeled execution
        time.  Without any predictor, deadline and inflight-cost rules are
        inert (nothing can be *proven* unmeetable) and only the sample-count
        caps apply.
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        latency_predictor: LatencyEstimator | None = None,
    ):
        self.policy = policy or AdmissionPolicy()
        self.latency_predictor = latency_predictor
        self._state = OverloadState.ACCEPTING
        self._counters = AdmissionCounters()
        self._lock = threading.Lock()

    @property
    def state(self) -> OverloadState:
        """The current overload state."""
        with self._lock:
            return self._state

    def counters(self) -> AdmissionCounters:
        """A snapshot of the cumulative decision counters."""
        with self._lock:
            return AdmissionCounters(**vars(self._counters))

    # -- the decision ----------------------------------------------------------

    def decide(
        self,
        request_id: int,
        model_name: str,
        tenant: str,
        n_samples: int,
        priority: int,
        deadline_s: float | None,
        backlog_samples: Mapping[str, int],
        tenants: Mapping[str, str],
        predictor: LatencyEstimator | None = None,
        replica_counts: Mapping[str, int] | None = None,
    ) -> AdmissionDecision:
        """Evaluate one candidate request against backlog and policy.

        ``replica_counts`` maps model names to their healthy replica count
        (the server passes each pool's ``dispatch_width``); predictions for
        those models are divided by it, because a backlog spread over N
        replicas drains ~N times faster than the per-engine calibration
        assumes.  The scaling applies uniformly -- deadline test, inflight
        cost caps, tenant cost and the overload state machine -- so every
        rule sees the same effective drain rate.  Missing names default
        to 1 (a single engine).

        ``deadline_s`` is *relative* (seconds from now, as passed to
        ``submit``); ``backlog_samples`` maps every model to its queued plus
        dispatched-but-unfinished samples, and ``tenants`` maps model names
        to tenant labels.  Rules apply in order:

        1. overload state (critical sheds below ``critical_priority``,
           overload sheds best-effort work),
        2. queue-depth caps (per model, then per tenant),
        3. predicted inflight-cost caps (per model, then per tenant),
        4. the unmeetable-deadline test: predicted completion is the
           calibrated latency of the model's backlog *including* this
           request (per-model execution serialises, so that is the expected
           finish time); negative slack sheds or downgrades per policy.

        The returned decision carries no future yet -- the server attaches
        one if it enqueues the request.
        """
        policy = self.policy
        predictor = self.latency_predictor or predictor
        # One prediction per (model, samples) per decision: the candidate
        # check, the tenant-cost cap and the state machine all share this
        # memo, so a decision costs O(hosted models) predictor calls total
        # (each takes the telemetry collector's lock) instead of ~2x that.
        memo: dict[tuple[str, int], float | None] = {}

        def predict(name: str, samples: int) -> float | None:
            key = (name, samples)
            if key not in memo:
                value = self._predict(predictor, name, samples)
                if value is not None and replica_counts:
                    value /= max(1, replica_counts.get(name, 1))
                memo[key] = value
            return memo[key]

        model_depth = backlog_samples.get(model_name, 0)
        tenant_depth = 0
        for name, samples in backlog_samples.items():
            if tenants.get(name, name) == tenant:
                tenant_depth += samples
        predicted = predict(model_name, model_depth + n_samples)
        slack = None
        if deadline_s is not None and predicted is not None:
            slack = deadline_s - predicted - policy.slack_margin_s
        state = self._update_state(backlog_samples, predict)

        def decision(status: str, reason: str) -> AdmissionDecision:
            self._count(status)
            return AdmissionDecision(
                status=status,
                request_id=request_id,
                model_name=model_name,
                tenant=tenant,
                reason=reason,
                overload_state=state,
                queue_depth_samples=model_depth,
                tenant_depth_samples=tenant_depth,
                predicted_latency_s=predicted,
                predicted_slack_s=slack,
            )

        best_effort = priority <= 0 and deadline_s is None
        if (
            state is OverloadState.SHED_ALL_BUT_TOP
            and priority < policy.critical_priority
        ):
            return decision(
                SHED,
                f"overload critical: only priority >= "
                f"{policy.critical_priority} admitted (got {priority})",
            )
        if state is OverloadState.SHED_BEST_EFFORT and best_effort:
            return decision(
                SHED, "overload: shedding best-effort (no priority, no deadline)"
            )
        cap = policy.max_queue_samples_per_model
        if cap is not None and model_depth + n_samples > cap:
            return decision(
                SHED,
                f"model queue depth cap: {model_depth} queued + "
                f"{n_samples} requested > {cap}",
            )
        cap = policy.max_queue_samples_per_tenant
        if cap is not None and tenant_depth + n_samples > cap:
            return decision(
                SHED,
                f"tenant queue depth cap: {tenant_depth} queued + "
                f"{n_samples} requested > {cap}",
            )
        if policy.max_inflight_cost_s is not None and predicted is not None:
            if predicted > policy.max_inflight_cost_s:
                return decision(
                    SHED,
                    f"model inflight cost cap: predicted {predicted:.4f}s "
                    f"> {policy.max_inflight_cost_s:.4f}s",
                )
        if policy.max_tenant_inflight_cost_s is not None and predictor is not None:
            tenant_cost = self._tenant_cost(
                predict, tenant, backlog_samples, tenants, model_name, n_samples
            )
            if (
                tenant_cost is not None
                and tenant_cost > policy.max_tenant_inflight_cost_s
            ):
                return decision(
                    SHED,
                    f"tenant inflight cost cap: predicted {tenant_cost:.4f}s "
                    f"> {policy.max_tenant_inflight_cost_s:.4f}s",
                )
        if slack is not None and slack < 0.0:
            if policy.deadline_policy == "downgrade":
                if state is OverloadState.ACCEPTING:
                    return decision(
                        DOWNGRADED,
                        f"deadline unmeetable (predicted slack {slack:.4f}s); "
                        "downgraded to best-effort",
                    )
                return decision(
                    SHED,
                    f"deadline unmeetable (predicted slack {slack:.4f}s) and "
                    "overload is shedding best-effort",
                )
            return decision(
                SHED,
                f"deadline unmeetable: predicted slack {slack:.4f}s < 0 "
                f"(deadline {deadline_s:.4f}s, predicted {predicted:.4f}s)",
            )
        return decision(ACCEPTED, "within caps and predicted slack")

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _predict(
        predictor: LatencyEstimator | None, model_name: str, n_samples: int
    ) -> float | None:
        """One guarded predictor call (a failing estimator must not shed)."""
        if predictor is None or n_samples <= 0:
            return None
        try:
            return predictor(model_name, n_samples)
        except Exception:
            return None

    @staticmethod
    def _tenant_cost(
        predict: LatencyEstimator,
        tenant: str,
        backlog_samples: Mapping[str, int],
        tenants: Mapping[str, str],
        model_name: str,
        n_samples: int,
    ) -> float | None:
        """Predicted seconds of backlog across the tenant's models.

        ``predict`` is the caller's memoised per-decision predictor.
        """
        extra = {model_name: n_samples}
        total, any_prediction = 0.0, False
        names = set(backlog_samples) | {model_name}
        for name in names:
            if tenants.get(name, name) != tenant:
                continue
            samples = backlog_samples.get(name, 0) + extra.get(name, 0)
            predicted = predict(name, samples)
            if predicted is not None:
                total += predicted
                any_prediction = True
        return total if any_prediction else None

    def _update_state(
        self,
        backlog_samples: Mapping[str, int],
        predict: LatencyEstimator,
    ) -> OverloadState:
        """Advance the overload state machine from the current backlog.

        ``predict`` is the caller's memoised per-decision predictor.
        """
        policy = self.policy
        if (
            policy.overload_enter_backlog_s is None
            and policy.critical_enter_backlog_s is None
        ):
            return OverloadState.ACCEPTING
        backlog_s = 0.0
        for name, samples in backlog_samples.items():
            predicted = predict(name, samples)
            if predicted is not None:
                backlog_s += predicted
        with self._lock:
            state = self._state
            enter_overload = policy.overload_enter_backlog_s
            enter_critical = policy.critical_enter_backlog_s
            exit_fraction = policy.overload_exit_fraction
            if enter_critical is not None and backlog_s >= enter_critical:
                state = OverloadState.SHED_ALL_BUT_TOP
            elif state is OverloadState.SHED_ALL_BUT_TOP:
                # De-escalate only once safely below the critical threshold,
                # and land in SHED_BEST_EFFORT while the backlog still sits
                # above the overload state's own exit level.
                if enter_critical is None or backlog_s < exit_fraction * enter_critical:
                    state = (
                        OverloadState.SHED_BEST_EFFORT
                        if enter_overload is not None
                        and backlog_s >= exit_fraction * enter_overload
                        else OverloadState.ACCEPTING
                    )
            if state in (OverloadState.ACCEPTING, OverloadState.SHED_BEST_EFFORT):
                if enter_overload is not None and backlog_s >= enter_overload:
                    state = OverloadState.SHED_BEST_EFFORT
                elif state is OverloadState.SHED_BEST_EFFORT and (
                    enter_overload is None
                    or backlog_s < exit_fraction * enter_overload
                ):
                    state = OverloadState.ACCEPTING
            if state is not self._state:
                self._counters.state_transitions += 1
                self._state = state
            return state

    def _count(self, status: str) -> None:
        with self._lock:
            if status == ACCEPTED:
                self._counters.accepted += 1
            elif status == DOWNGRADED:
                self._counters.downgraded += 1
            else:
                self._counters.shed += 1

    def retract(self, decision: AdmissionDecision) -> None:
        """Undo one decision's counter after its request failed to enqueue.

        The server calls this when ``stop()`` closes the queue between the
        admission decision and the enqueue: the request never entered the
        system, so it must not appear in the decision counters.  The
        overload state is left alone -- it is recomputed from the live
        backlog on the next decision.
        """
        with self._lock:
            if decision.status == ACCEPTED:
                self._counters.accepted -= 1
            elif decision.status == DOWNGRADED:
                self._counters.downgraded -= 1
            else:
                self._counters.shed -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counters = self.counters()
        return (
            f"AdmissionController(state={self.state.value!r}, "
            f"accepted={counters.accepted}, downgraded={counters.downgraded}, "
            f"shed={counters.shed})"
        )
