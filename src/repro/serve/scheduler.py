"""Dynamic micro-batching: request futures, batching policy, request queue.

The serving layer coalesces concurrent requests *per model* into one engine
call.  :class:`BatchingPolicy` sets the two knobs of the classic dynamic
batcher: a batch-size target and a latency budget.  :class:`RequestQueue`
holds pending :class:`InferenceRequest` objects per model and hands the
scheduler the next ready batch -- by default the model whose oldest request
has waited longest, as soon as that model has a full batch or its oldest
request exhausts the latency budget.

Requests may optionally carry a *priority* and a *deadline*.  While any such
request is pending (and the queue's SLO mode is on), model selection switches
from FIFO-by-age to SLO-aware dispatch: higher priority classes go first, and
within a class the model whose next dispatchable batch has the least *slack*
-- ``deadline - now - predicted batch latency`` over the requests that batch
would contain, with the prediction supplied by a
:class:`~repro.telemetry.cost.CostModel`-backed estimator -- wins.  A model
whose slack has run out dispatches immediately, even with a partial batch.
An aging rule bounds starvation: heads older than
:attr:`BatchingPolicy.starvation_limit_s` are promoted into the top pending
priority class, so best-effort work survives a saturated high-priority
stream.  With no
priorities, no deadlines, or SLO mode off, the scheduling decisions are
exactly the FIFO ones.

Requests never split across batches: a batch is a whole number of requests, so
splitting engine outputs back per request is a plain ``np.split`` at request
boundaries.  A single request larger than the batch-size target forms its own
batch (the engine's micro-batching bounds the working set downstream).
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["BatchingPolicy", "InferenceFuture", "InferenceRequest", "RequestQueue"]

#: Estimator signature: (model_name, queued_samples) -> predicted batch
#: latency in seconds, or None when the model has no prediction.
LatencyEstimator = Callable[[str, int], "float | None"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing knobs of the dynamic micro-batching scheduler.

    Parameters
    ----------
    max_batch_size:
        Sample-count target per coalesced engine call; a batch closes as soon
        as adding the next whole request would exceed it (a single oversized
        request still runs, alone).
    max_delay_s:
        Latency budget: the longest a request may wait for co-batching before
        the scheduler dispatches whatever has accumulated.
    adaptive_delay:
        Opt-in batch-size-aware delay: shrink the waiting budget linearly as
        the queued samples approach ``max_batch_size``, so a nearly full
        batch dispatches early instead of idling out the full budget waiting
        for the last few samples (see :meth:`effective_delay_s`).
    starvation_limit_s:
        The aging rule bounding priority starvation: a model whose oldest
        pending request (or oldest dispatched batch, at the worker layer)
        has waited longer than this is promoted into the top pending
        priority class, competing there on slack/deadline like everything
        else -- so a saturated stream of high-priority work cannot delay a
        best-effort request without a deadline forever, while genuinely
        urgent deadlines still dispatch first.  Must be positive; it only
        matters under SLO-aware scheduling (the FIFO path is oldest-first
        already).
    """

    max_batch_size: int = 32
    max_delay_s: float = 0.002
    adaptive_delay: bool = False
    starvation_limit_s: float = 0.25

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")
        if self.starvation_limit_s <= 0:
            raise ValueError("starvation_limit_s must be positive")

    def effective_delay_s(self, queued_samples: int) -> float:
        """The waiting budget given how full the pending batch already is.

        With ``adaptive_delay`` off this is always ``max_delay_s``.  With it
        on, the budget scales by the batch's remaining headroom:
        ``max_delay_s * (1 - queued/max_batch_size)`` -- an empty queue waits
        the full budget, a nearly full one dispatches almost immediately.
        """
        if not self.adaptive_delay:
            return self.max_delay_s
        headroom = 1.0 - min(queued_samples / self.max_batch_size, 1.0)
        return self.max_delay_s * headroom


class InferenceFuture:
    """Handle to the result of one submitted request.

    Completion callbacks (:meth:`add_done_callback`) fire on whichever
    thread delivers the result -- a server dispatch worker, usually -- so
    they must be cheap and non-blocking.  The asyncio facade
    (:class:`~repro.serve.aio.AsyncInferenceServer`) uses them to hand
    completions to an event loop via ``call_soon_threadsafe``.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._callbacks: list[Callable[[InferenceFuture], None]] = []

    def done(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the request completes; re-raises server-side errors."""
        if not self._event.wait(timeout):
            raise TimeoutError("inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until completion; return the server-side error, if any."""
        if not self._event.wait(timeout):
            raise TimeoutError("inference request did not complete in time")
        return self._error

    def add_done_callback(self, callback: Callable[[InferenceFuture], None]) -> None:
        """Invoke ``callback(self)`` once the request completes.

        If the future is already done the callback runs immediately on the
        calling thread; otherwise it runs on the thread that delivers the
        result.  Callback exceptions are logged and swallowed -- a misbehaving
        observer must not corrupt the dispatch worker's batch accounting.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        self._invoke(callback)

    def _invoke(self, callback: Callable[[InferenceFuture], None]) -> None:
        try:
            callback(self)
        except Exception:
            logging.getLogger(__name__).exception(
                "InferenceFuture done-callback raised"
            )

    def _finish(self) -> None:
        with self._lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self._invoke(callback)

    def _set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._finish()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._finish()


@dataclass
class InferenceRequest:
    """One pending request: a model name, an input batch, and its future.

    ``priority`` and ``deadline_s`` are the optional SLO fields: higher
    priorities dispatch first, and ``deadline_s`` (an *absolute*
    ``time.monotonic()`` instant) marks when the result stops being useful.
    Requests with neither keep the scheduler on its FIFO path.
    """

    model_name: str
    inputs: np.ndarray
    future: InferenceFuture
    enqueued_at: float
    priority: int = 0
    deadline_s: float | None = None
    request_id: int = 0
    #: Distributed-trace handle of a sampled request
    #: (:class:`repro.telemetry.tracing.TraceHandle`; duck-typed here so the
    #: scheduler stays import-free of the telemetry package).  ``None`` for
    #: unsampled requests -- the common case -- and the whole tracing path
    #: is skipped.
    trace: object | None = None
    #: When the scheduler formed this request into a batch (``0.0`` until
    #: then; only stamped for traced requests).  Splits the pre-dispatch
    #: wait into queue time (co-batching) and dispatch time (batch formed,
    #: waiting for a worker).
    formed_at: float = 0.0

    @property
    def n_samples(self) -> int:
        """Number of samples the request contributes to a batch."""
        return self.inputs.shape[0]

    @property
    def has_slo(self) -> bool:
        """Whether the request carries any SLO hint (priority or deadline)."""
        return self.priority != 0 or self.deadline_s is not None


class RequestQueue:
    """Per-model FIFO queues with batch-forming pop, shared by all submitters.

    ``next_batch`` is intended for a single scheduler thread; ``submit`` may
    be called from any number of threads.

    Parameters
    ----------
    latency_estimator:
        Optional ``(model_name, queued_samples) -> seconds`` predictor of a
        batch's execution latency (typically
        :meth:`TelemetryCollector.predicted_batch_latency_s
        <repro.telemetry.collector.TelemetryCollector.predicted_batch_latency_s>`),
        subtracted from deadlines when computing slack.  Without one,
        predicted latency is zero and SLO dispatch degenerates to earliest
        deadline first.
    slo_mode:
        When ``False``, priority/deadline hints are ignored for scheduling
        (they are still recorded downstream) and dispatch stays strictly
        FIFO-by-age -- the baseline the SLO benchmarks compare against.
    """

    def __init__(
        self,
        latency_estimator: LatencyEstimator | None = None,
        slo_mode: bool = True,
    ) -> None:
        self._pending: OrderedDict[str, deque[InferenceRequest]] = OrderedDict()
        self._condition = threading.Condition()
        self._closed = False
        self._latency_estimator = latency_estimator
        self._slo_mode = slo_mode
        self._slo_pending = 0

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue a request and wake the scheduler."""
        with self._condition:
            if self._closed:
                raise RuntimeError("request queue is closed")
            self._pending.setdefault(request.model_name, deque()).append(request)
            if request.has_slo:
                self._slo_pending += 1
            self._condition.notify_all()

    def close(self) -> None:
        """Refuse new requests; ``next_batch`` drains what remains, then ends."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._condition:
            return self._closed

    def __len__(self) -> int:
        with self._condition:
            return sum(len(q) for q in self._pending.values())

    def queued_samples_by_model(self) -> dict[str, int]:
        """Pending sample counts per model, for admission-control decisions.

        A consistent snapshot under the queue lock; models whose deques have
        drained are omitted.  The scan is O(pending requests) -- admission
        control calls this once per submit, which stays far below the
        microsecond budget for realistic queue depths.
        """
        with self._condition:
            return {
                name: sum(r.n_samples for r in requests)
                for name, requests in self._pending.items()
                if requests
            }

    def _oldest_model(self) -> str | None:
        oldest_name, oldest_time = None, None
        for name, requests in self._pending.items():
            if requests and (
                oldest_time is None or requests[0].enqueued_at < oldest_time
            ):
                oldest_name, oldest_time = name, requests[0].enqueued_at
        return oldest_name

    def _batch_preview(
        self, requests: deque[InferenceRequest], policy: BatchingPolicy
    ) -> tuple[int, int, float | None, bool]:
        """Stats of the batch :meth:`_pop_batch` would form right now.

        Returns ``(samples, max priority, min deadline, full)`` over exactly
        the whole-request prefix a dispatch would take, so urgency is judged
        on the requests that would actually ride the batch (a tight deadline
        deeper in the queue cannot boost a batch that will not contain it --
        it counts once earlier batches drain).  The scan is bounded by the
        batch size, not the backlog, keeping deep-queue drains linear.
        ``full`` means dispatching now loses no co-batching: the target is
        reached, or the next whole request would not fit.
        """
        samples = 0
        priority = 0
        min_deadline: float | None = None
        for index, request in enumerate(requests):
            if index and samples + request.n_samples > policy.max_batch_size:
                return samples, priority, min_deadline, True
            samples += request.n_samples
            priority = max(priority, request.priority)
            if request.deadline_s is not None:
                min_deadline = (
                    request.deadline_s
                    if min_deadline is None
                    else min(min_deadline, request.deadline_s)
                )
        return samples, priority, min_deadline, samples >= policy.max_batch_size

    def _most_urgent_dispatch(
        self, policy: BatchingPolicy, now: float
    ) -> tuple[str | None, float | None]:
        """SLO-aware selection: ``(model to dispatch or None, min due-in)``.

        Each model is judged by the batch it would dispatch right now
        (:meth:`_batch_preview`).  A model is *ready* when that batch is
        full, its slack -- tightest ``deadline - now - predicted batch
        latency`` within the batch, or the remaining co-batching budget when
        the batch carries no deadline -- has run out, or the queue is
        closed.  While nothing is ready the second element tells the caller
        how long it may sleep before the earliest model comes due.  Once
        *any* model is ready, a dispatch is going to happen -- so the
        globally most urgent model wins (highest priority class first, then
        least slack, then oldest head request), even with a partial batch:
        delaying an urgent request behind a less urgent full batch would
        invert the SLO ordering, and the engine has work either way.

        The one exception is the aging rule
        (:attr:`BatchingPolicy.starvation_limit_s`): a model whose head
        request has waited longer than the starvation limit is promoted into
        the *top pending priority class* (slack order still applies within
        it), so a continuous high-priority stream cannot starve a
        best-effort model forever -- without this, a deadline-free
        priority-0 request would lose the ``-priority`` comparison on every
        single dispatch decision.  A starved deadline-free head's slack is
        its (long exhausted) delay budget, which keeps falling with age, so
        it eventually undercuts any stream of fresh arrivals.
        """
        entries = []
        min_due, any_ready, top_priority = None, False, 0
        for name, requests in self._pending.items():
            if not requests:
                continue
            samples, priority, min_deadline, full = self._batch_preview(
                requests, policy
            )
            head = requests[0]
            budget_left = policy.effective_delay_s(samples) - (now - head.enqueued_at)
            if min_deadline is None:
                slack = budget_left
            else:
                predicted = 0.0
                if self._latency_estimator is not None:
                    # A failing user-supplied estimator must degrade to
                    # "no prediction", not kill the scheduler thread.
                    try:
                        estimate = self._latency_estimator(name, samples)
                    except Exception:
                        estimate = None
                    if estimate is not None:
                        predicted = estimate
                slack = min_deadline - now - predicted
            due_in = min(budget_left, slack)
            min_due = due_in if min_due is None else min(min_due, due_in)
            any_ready = any_ready or full or due_in <= 0 or self._closed
            top_priority = max(top_priority, priority)
            starved = now - head.enqueued_at > policy.starvation_limit_s
            entries.append((name, priority, starved, slack, head.enqueued_at))
        if not any_ready:
            return None, min_due
        best_key, best_name = None, None
        for name, priority, starved, slack, enqueued_at in entries:
            effective = max(priority, top_priority) if starved else priority
            key = (-effective, slack, enqueued_at)
            if best_key is None or key < best_key:
                best_key, best_name = key, name
        return best_name, min_due

    def _pop_batch(self, name: str, policy: BatchingPolicy) -> list[InferenceRequest]:
        requests = self._pending[name]
        batch = [requests.popleft()]
        total = batch[0].n_samples
        while requests and total + requests[0].n_samples <= policy.max_batch_size:
            total += requests[0].n_samples
            batch.append(requests.popleft())
        if not requests:
            del self._pending[name]
        self._slo_pending -= sum(1 for request in batch if request.has_slo)
        return batch

    def next_batch(self, policy: BatchingPolicy) -> list[InferenceRequest] | None:
        """Block until a batch is ready; ``None`` once closed and drained.

        FIFO path (no SLO hints pending, or SLO mode off): the model whose
        head request has waited longest is served first; its batch dispatches
        when the queued samples reach ``max_batch_size``, when the head
        request's age exhausts the (possibly adaptive) delay budget, or
        immediately once the queue is closed (drain mode).

        SLO path (some pending request carries a priority or deadline): once
        any model is due -- full batch, exhausted budget, deadline at risk,
        or drain mode -- dispatch the globally most urgent model (highest
        priority, then least slack; see :meth:`_most_urgent_dispatch`),
        partial batch or not.
        """
        with self._condition:
            while True:
                if self._slo_mode and self._slo_pending > 0:
                    now = time.monotonic()
                    name, due_in = self._most_urgent_dispatch(policy, now)
                    if name is not None:
                        return self._pop_batch(name, policy)
                    if due_in is None:  # nothing pending at all
                        if self._closed:
                            return None
                        self._condition.wait()
                    else:
                        self._condition.wait(timeout=max(due_in, 0.0))
                    continue
                name = self._oldest_model()
                if name is None:
                    if self._closed:
                        return None
                    self._condition.wait()
                    continue
                requests = self._pending[name]
                queued_samples = sum(r.n_samples for r in requests)
                head_age = time.monotonic() - requests[0].enqueued_at
                remaining = policy.effective_delay_s(queued_samples) - head_age
                if (
                    queued_samples < policy.max_batch_size
                    and remaining > 0
                    and not self._closed
                ):
                    self._condition.wait(timeout=remaining)
                    continue
                return self._pop_batch(name, policy)
