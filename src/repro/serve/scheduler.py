"""Dynamic micro-batching: request futures, batching policy, request queue.

The serving layer coalesces concurrent requests *per model* into one engine
call.  :class:`BatchingPolicy` sets the two knobs of the classic dynamic
batcher: a batch-size target and a latency budget.  :class:`RequestQueue`
holds pending :class:`InferenceRequest` objects per model and hands the
scheduler the next ready batch -- the model whose oldest request has waited
longest, as soon as that model has a full batch or its oldest request exhausts
the latency budget.

Requests never split across batches: a batch is a whole number of requests, so
splitting engine outputs back per request is a plain ``np.split`` at request
boundaries.  A single request larger than the batch-size target forms its own
batch (the engine's micro-batching bounds the working set downstream).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass

import numpy as np

__all__ = ["BatchingPolicy", "InferenceFuture", "InferenceRequest", "RequestQueue"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Coalescing knobs of the dynamic micro-batching scheduler.

    Parameters
    ----------
    max_batch_size:
        Sample-count target per coalesced engine call; a batch closes as soon
        as adding the next whole request would exceed it (a single oversized
        request still runs, alone).
    max_delay_s:
        Latency budget: the longest a request may wait for co-batching before
        the scheduler dispatches whatever has accumulated.
    """

    max_batch_size: int = 32
    max_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_delay_s < 0:
            raise ValueError("max_delay_s must be non-negative")


class InferenceFuture:
    """Handle to the result of one submitted request."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        """Whether a result or error has been delivered."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the request completes; re-raises server-side errors."""
        if not self._event.wait(timeout):
            raise TimeoutError("inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._result

    def _set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._event.set()

    def _set_error(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class InferenceRequest:
    """One pending request: a model name, an input batch, and its future."""

    model_name: str
    inputs: np.ndarray
    future: InferenceFuture
    enqueued_at: float

    @property
    def n_samples(self) -> int:
        """Number of samples the request contributes to a batch."""
        return self.inputs.shape[0]


class RequestQueue:
    """Per-model FIFO queues with batch-forming pop, shared by all submitters.

    ``next_batch`` is intended for a single scheduler thread; ``submit`` may
    be called from any number of threads.
    """

    def __init__(self) -> None:
        self._pending: OrderedDict[str, deque[InferenceRequest]] = OrderedDict()
        self._condition = threading.Condition()
        self._closed = False

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue a request and wake the scheduler."""
        with self._condition:
            if self._closed:
                raise RuntimeError("request queue is closed")
            self._pending.setdefault(request.model_name, deque()).append(request)
            self._condition.notify_all()

    def close(self) -> None:
        """Refuse new requests; ``next_batch`` drains what remains, then ends."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._condition:
            return self._closed

    def __len__(self) -> int:
        with self._condition:
            return sum(len(q) for q in self._pending.values())

    def _oldest_model(self) -> str | None:
        oldest_name, oldest_time = None, None
        for name, requests in self._pending.items():
            if requests and (oldest_time is None or requests[0].enqueued_at < oldest_time):
                oldest_name, oldest_time = name, requests[0].enqueued_at
        return oldest_name

    def next_batch(self, policy: BatchingPolicy) -> list[InferenceRequest] | None:
        """Block until a batch is ready; ``None`` once closed and drained.

        The model whose head request has waited longest is served first.  Its
        batch dispatches when the queued samples reach ``max_batch_size``,
        when the head request's age exceeds ``max_delay_s``, or immediately
        once the queue is closed (drain mode).
        """
        with self._condition:
            while True:
                name = self._oldest_model()
                if name is None:
                    if self._closed:
                        return None
                    self._condition.wait()
                    continue
                requests = self._pending[name]
                queued_samples = sum(r.n_samples for r in requests)
                head_age = time.monotonic() - requests[0].enqueued_at
                remaining = policy.max_delay_s - head_age
                if (
                    queued_samples < policy.max_batch_size
                    and remaining > 0
                    and not self._closed
                ):
                    self._condition.wait(timeout=remaining)
                    continue
                batch = [requests.popleft()]
                total = batch[0].n_samples
                while (
                    requests
                    and total + requests[0].n_samples <= policy.max_batch_size
                ):
                    total += requests[0].n_samples
                    batch.append(requests.popleft())
                if not requests:
                    del self._pending[name]
                return batch
