"""Multi-tenant batched serving on top of the vectorized runtime.

The ROADMAP's north star is a production-scale system serving heavy traffic;
this package turns :class:`~repro.runtime.NetworkEngine` into that serving
layer:

* :mod:`repro.serve.registry` -- :class:`ModelRegistry` hosts several
  calibrated models side by side behind one shared
  :class:`~repro.runtime.ExecutorPool` / :class:`~repro.runtime.EncodedWeightCache`
  (identical weights share encoded crossbars across tenants), with the
  runtime's float32 GEMM fast path enabled by default.
  ``register(..., backend="process", replicas=N)`` hosts a model in a
  self-healing :class:`~repro.runtime.ReplicaPool` of worker processes
  with a zero-copy shared-memory request path, sidestepping the GIL for
  the digital stages; crashed replicas restart automatically and
  ``unregister`` drains the pool cleanly.
* :mod:`repro.serve.scheduler` -- the dynamic micro-batching substrate:
  :class:`BatchingPolicy` (batch-size target + latency budget),
  :class:`InferenceFuture` result handles and the per-model
  :class:`RequestQueue`.
* :mod:`repro.serve.server` -- :class:`InferenceServer` coalesces concurrent
  requests per model into one engine call and splits the outputs back per
  request; different models execute concurrently, each model serialises.
  Requests may carry a priority and deadline; with a
  :class:`~repro.telemetry.TelemetryCollector` attached the server records
  per-request cost traces and schedules SLO-aware (highest priority, least
  deadline slack first) instead of FIFO-by-age, with an aging rule so
  best-effort work is never starved.  Workers dispatch the globally most
  urgent formed batch across models rather than FIFO-draining one model.
* :mod:`repro.serve.admission` -- :class:`AdmissionController` screens every
  submit against queue-depth/inflight-cost caps, an overload state machine
  (:class:`OverloadState`) and the calibrated unmeetable-deadline test,
  returning a typed :class:`AdmissionDecision` (accepted / downgraded /
  shed) instead of silently enqueueing doomed work.
* :mod:`repro.serve.fleet` -- energy-aware heterogeneous fleets:
  ``ModelRegistry.register_fleet(name, variants=[...])`` groups several
  architecture variants of one logical model, and the server's
  :class:`FleetRouter` places each batch on the variant minimising modeled
  energy subject to its deadline slack (pluggable via
  :class:`RoutingObjective`: :class:`MinimizeEnergy`,
  :class:`MinimizeLatency`, :class:`PinVariant`), with per-variant backlog
  feedback so a saturated fast variant spills work to the low-power one.
* :mod:`repro.serve.sharded` -- :class:`ShardedEngine` pipelines micro-batches
  across layer stages in worker threads, bit-identical to the sequential
  engine.
* :mod:`repro.serve.aio` -- :class:`AsyncInferenceServer`, the asyncio front
  door: ``await submit(...)`` yields an awaitable admission decision, so
  tens of thousands of in-flight requests cost coroutines instead of
  blocked threads, with ``max_inflight`` end-to-end backpressure and the
  identical admission/shed semantics (and bit-identical outputs) as the
  sync path.
* :mod:`repro.serve.gateway` -- :class:`AsyncGateway`, a stdlib-only
  HTTP/JSON front door (``POST /v1/infer``, ``GET /metrics`` in Prometheus
  text format, ``GET /healthz``) over the asyncio facade; see
  ``examples/gateway.py``.

Quickstart::

    from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry

    registry = ModelRegistry()
    registry.register("resnet", model)          # a calibrated QuantizedModel
    policy = BatchingPolicy(max_batch_size=32, max_delay_s=0.002)
    with InferenceServer(registry, policy) as server:
        decision = server.submit("resnet", inputs)  # (n_samples, *input_shape)
        outputs = decision.result()
    print(server.statistics().mean_batch_size)
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionCounters,
    AdmissionDecision,
    AdmissionPolicy,
    OverloadState,
    RequestShedError,
)
from repro.serve.aio import AsyncAdmissionDecision, AsyncInferenceServer
from repro.serve.fleet import (
    FleetRouter,
    MinimizeEnergy,
    MinimizeLatency,
    PinVariant,
    RouteDecision,
    RoutingObjective,
)
from repro.serve.gateway import AsyncGateway
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import (
    BatchingPolicy,
    InferenceFuture,
    InferenceRequest,
    RequestQueue,
)
from repro.serve.server import (
    InferenceServer,
    ServerStatistics,
    ServerStoppedError,
)
from repro.serve.sharded import ShardedEngine

__all__ = [
    "AdmissionController",
    "AdmissionCounters",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AsyncAdmissionDecision",
    "AsyncGateway",
    "AsyncInferenceServer",
    "BatchingPolicy",
    "FleetRouter",
    "InferenceFuture",
    "InferenceRequest",
    "InferenceServer",
    "MinimizeEnergy",
    "MinimizeLatency",
    "ModelRegistry",
    "OverloadState",
    "PinVariant",
    "RequestQueue",
    "RequestShedError",
    "RouteDecision",
    "RoutingObjective",
    "ServerStatistics",
    "ServerStoppedError",
    "ShardedEngine",
]
