"""Layer-pipeline sharded execution, bit-identical to the sequential engine.

:class:`ShardedEngine` partitions a model's layer list into contiguous
*stages* (one per crossbar-mapped layer by default) and runs each stage in its
own worker thread.  Micro-batches flow through the stages as a pipeline:
while micro-batch ``i`` occupies stage 2, micro-batch ``i + 1`` is already
executing on stage 1.  NumPy releases the GIL inside the BLAS GEMMs of the
vectorized executors, so the stages genuinely overlap.

Bit-identity with :meth:`NetworkEngine.run` holds by construction:

* each stage is a *single* thread and its input queue is FIFO, so every layer
  executor processes the micro-batches in exactly the order the sequential
  micro-batched path would -- statistics accumulate in the same order and
  seeded noise models draw the same values;
* micro-batch boundaries, quantize/dequantize placement and layer arithmetic
  are byte-for-byte the operations :meth:`QuantizedModel.forward_quantized`
  performs with the same ``micro_batch``;
* the one construction that cannot pipeline deterministically -- several
  executors sharing a single seeded noise RNG, whose sequential draw order
  interleaves *across* layers -- is detected and falls back to the sequential
  path (give each layer its own noise model to pipeline noisy runs).

The pipeline only pays off when there is more than one micro-batch in flight;
with one stage, one micro-batch, or ``micro_batch=None`` the engine falls
back to the inherited sequential path (same results either way).
"""

from __future__ import annotations

import queue
import threading
import time

import numpy as np

from repro.analog.noise import NoiseModel
from repro.core.executor import PimLayerConfig
from repro.nn.layers import MatmulLayer
from repro.nn.model import QuantizedModel
from repro.runtime.cache import ExecutorPool
from repro.runtime.engine import _USE_DEFAULT, NetworkEngine

__all__ = ["ShardedEngine"]


class _StageFailure:
    """Marker carrying a stage exception downstream with its micro-batch id."""

    def __init__(self, index: int, error: BaseException):
        self.index = index
        self.error = error


class ShardedEngine(NetworkEngine):
    """A :class:`NetworkEngine` that pipelines micro-batches across layer stages.

    Parameters
    ----------
    model, executors, micro_batch:
        As for :class:`NetworkEngine`.  ``micro_batch`` doubles as the
        pipeline granularity; with ``None`` the engine degenerates to the
        sequential path.
    n_stages:
        Number of pipeline stages; ``None`` uses one stage per crossbar-mapped
        layer.  Values larger than the number of natural stages are clamped.
    """

    def __init__(
        self,
        model: QuantizedModel,
        executors: dict,
        micro_batch: int | None = None,
        n_stages: int | None = None,
    ):
        super().__init__(model, executors, micro_batch=micro_batch)
        if n_stages is not None and n_stages < 1:
            raise ValueError("n_stages must be positive")
        self.n_stages = n_stages

    @classmethod
    def build(
        cls,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        pool: ExecutorPool | None = None,
        float32: bool | None = None,
        n_stages: int | None = None,
    ) -> "ShardedEngine":
        """Build with pooled executors (see :meth:`NetworkEngine.build`)."""
        if n_stages is not None and n_stages < 1:
            raise ValueError("n_stages must be positive")
        engine = super().build(
            model,
            config,
            noise=noise,
            micro_batch=micro_batch,
            pool=pool,
            float32=float32,
        )
        engine.n_stages = n_stages
        return engine

    # -- stage partitioning ----------------------------------------------------

    def stage_groups(self) -> list[list]:
        """Contiguous layer groups, one pipeline stage each.

        A new stage starts at every crossbar-mapped layer (the expensive
        operations worth overlapping); cheap digital layers ride along with
        the preceding stage.  ``n_stages`` merges adjacent groups evenly when
        fewer stages are requested.
        """
        groups: list[list] = []
        for layer in self.model.layers:
            if not groups or isinstance(layer, MatmulLayer):
                groups.append([layer])
            else:
                groups[-1].append(layer)
        if self.n_stages is not None and self.n_stages < len(groups):
            merged: list[list] = []
            bounds = np.linspace(0, len(groups), self.n_stages + 1).astype(int)
            for lo, hi in zip(bounds[:-1], bounds[1:]):
                if hi > lo:
                    merged.append([g for group in groups[lo:hi] for g in group])
            groups = merged
        return groups

    def _shares_stateful_noise(self) -> bool:
        """Whether two executors share one stateful (seeded) noise model.

        :meth:`NetworkEngine.build` hands every layer the *same* noise object,
        whose RNG then draws in global layer-interleaved order on the
        sequential path.  Pipelined stages would interleave those draws
        nondeterministically, so such engines fall back to sequential
        execution; give each layer its own noise model to pipeline noisy
        runs (per-executor draw order is FIFO-preserved either way).
        """
        from repro.analog.noise import NoiselessModel

        stateful = [
            id(executor.noise)
            for executor in self.executors.values()
            if not isinstance(executor.noise, NoiselessModel)
        ]
        return len(stateful) != len(set(stateful))

    # -- pipelined execution ---------------------------------------------------

    def run(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> np.ndarray:
        """Run the integer path, pipelining micro-batches across stages."""
        micro = self.micro_batch if micro_batch is _USE_DEFAULT else micro_batch
        x = np.asarray(inputs, dtype=np.float64)
        groups = self.stage_groups()
        if micro is not None and micro <= 0:
            raise ValueError("micro_batch must be positive")
        if (
            micro is None
            or x.shape[0] <= micro
            or len(groups) < 2
            or self._shares_stateful_noise()
        ):
            return super().run(x, return_codes=return_codes, micro_batch=micro)
        if not self.model.is_calibrated:
            raise RuntimeError("model must be calibrated before quantized inference")
        pipeline_start = time.perf_counter() if self._run_probes else None

        starts = range(0, x.shape[0], micro)
        # Bounded inter-stage queues provide backpressure: a slow stage caps
        # how many in-flight micro-batch activations accumulate ahead of it,
        # preserving the working-set bound micro_batch exists to give.
        queues: list[queue.Queue] = [
            queue.Queue(maxsize=2) for _ in range(len(groups) + 1)
        ]

        def stage_worker(stage_index: int) -> None:
            inbox, outbox = queues[stage_index], queues[stage_index + 1]
            while True:
                item = inbox.get()
                if item is None or isinstance(item, _StageFailure):
                    outbox.put(item)
                    if item is None:
                        return
                    continue
                index, codes, quant = item
                try:
                    for layer in groups[stage_index]:
                        codes, quant = layer.forward_quantized(
                            codes, quant, pim_matmul=self.pim_matmul
                        )
                except BaseException as error:  # propagate to the caller
                    outbox.put(_StageFailure(index, error))
                    continue
                outbox.put((index, codes, quant))

        input_quant = self.model.input_quant

        def feeder() -> None:
            # A dedicated feeder lets the main thread drain the final queue
            # while the bounded queues apply backpressure upstream.
            try:
                for index, start in enumerate(starts):
                    codes = input_quant.quantize(x[start : start + micro])
                    queues[0].put((index, codes, input_quant))
            except BaseException as error:  # pragma: no cover - defensive
                queues[0].put(_StageFailure(-1, error))
            queues[0].put(None)

        workers = [
            threading.Thread(target=stage_worker, args=(i,), daemon=True)
            for i in range(len(groups))
        ]
        workers.append(threading.Thread(target=feeder, daemon=True))
        for worker in workers:
            worker.start()

        results: dict[int, np.ndarray] = {}
        failure: _StageFailure | None = None
        while True:
            item = queues[-1].get()
            if item is None:
                break
            if isinstance(item, _StageFailure):
                if failure is None or item.index < failure.index:
                    failure = item
                continue
            index, codes, quant = item
            results[index] = codes if return_codes else quant.dequantize(codes)
        for worker in workers:
            worker.join()
        if failure is not None:
            raise failure.error
        if pipeline_start is not None:
            self._notify_run_probes(
                int(x.shape[0]), time.perf_counter() - pipeline_start
            )
        return np.concatenate([results[i] for i in sorted(results)], axis=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedEngine(model={self.model.name!r}, "
            f"layers={len(self.executors)}, micro_batch={self.micro_batch}, "
            f"stages={len(self.stage_groups())})"
        )
