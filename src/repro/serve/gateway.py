"""Stdlib-only HTTP/JSON gateway over :class:`AsyncInferenceServer`.

The last missing layer between the serving stack and a load balancer: a
minimal HTTP/1.1 front door built on ``asyncio.start_server`` -- no web
framework, because the repo's dependency budget is numpy plus the standard
library.  Three routes:

* ``POST /v1/infer`` -- body ``{"model": str, "inputs": [[...]],
  "priority": int?, "deadline_s": float?}``.  Admitted requests await their
  result and return ``200`` with ``{"outputs": [[...]], "decision": {...}}``;
  shed requests return ``429`` *immediately* (the admission decision is
  O(us); no scheduler round-trip) with the typed decision as the body, plus
  a ``Retry-After`` hint.  Unknown models map to ``404``, malformed bodies
  to ``400``.
* ``GET /metrics`` -- the :class:`~repro.telemetry.TelemetryCollector`
  Prometheus text exposition, served under
  :data:`~repro.telemetry.PROMETHEUS_CONTENT_TYPE` so a stock Prometheus
  scraper can point at the gateway unmodified.
* ``GET /healthz`` -- liveness plus the server's per-model backlog and
  admission counters, the signals a load balancer needs for weighted
  routing.

The HTTP surface is deliberately small: one request per connection
(``Connection: close``), bounded header/body sizes, JSON in and out.  It is
an *example-grade* front door -- the asyncio facade underneath is the
production piece -- but every response it emits is well-formed HTTP/1.1,
and ``examples/gateway.py`` plus ``tests/test_async_serve.py`` drive it
with a real ``http.client``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.admission import RequestShedError
from repro.serve.aio import AsyncInferenceServer
from repro.telemetry import PROMETHEUS_CONTENT_TYPE

__all__ = ["AsyncGateway"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024
_JSON_TYPE = "application/json; charset=utf-8"

#: HTTP status line reasons for the subset of codes the gateway emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error that maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class AsyncGateway:
    """Serve ``/v1/infer``, ``/metrics`` and ``/healthz`` over one event loop.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.aio.AsyncInferenceServer` handling
        inference.  Its telemetry collector (if any) backs ``/metrics``.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`),
        which is what the tests and the example use.
    """

    def __init__(
        self,
        server: AsyncInferenceServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._server = server
        self._host = host
        self._port = port
        self._listener: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` -- resolves ``port=0`` after start."""
        if self._listener is None:
            raise RuntimeError("gateway is not running")
        sock = self._listener.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "AsyncGateway":
        self._listener = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self

    async def aclose(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, content_type, payload = await self._route(method, path, body)
            except _HttpError as exc:
                status = exc.status
                content_type = _JSON_TYPE
                payload = json.dumps({"error": exc.message}).encode()
            except Exception:
                status = 500
                content_type = _JSON_TYPE
                payload = json.dumps({"error": "internal error"}).encode()
            await self._write_response(writer, status, content_type, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Parse one HTTP/1.1 request: start line, headers, sized body."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, "body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        path = path.split("?", 1)[0]
        if path == "/v1/infer":
            if method != "POST":
                raise _HttpError(405, "POST required")
            return await self._infer(body)
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._metrics()
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._healthz()
        raise _HttpError(404, f"no route for {path!r}")

    async def _infer(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body)
            model = payload["model"]
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
        except (ValueError, KeyError, TypeError) as exc:
            raise _HttpError(400, f"bad request body: {exc}") from None
        priority = int(payload.get("priority", 0))
        deadline_s = payload.get("deadline_s")
        try:
            decision = await self._server.submit(
                model, inputs, priority=priority, deadline_s=deadline_s
            )
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from None
        except (ValueError, TypeError) as exc:
            raise _HttpError(400, str(exc)) from None
        except RuntimeError as exc:  # ServerStoppedError and kin
            raise _HttpError(503, str(exc)) from None
        try:
            outputs = await decision.result()
        except RequestShedError:
            reply = json.dumps({"decision": decision.as_dict()}).encode()
            return 429, _JSON_TYPE, reply
        reply = json.dumps(
            {"outputs": outputs.tolist(), "decision": decision.as_dict()}
        ).encode()
        return 200, _JSON_TYPE, reply

    def _metrics(self) -> tuple[int, str, bytes]:
        telemetry = self._server.telemetry
        if telemetry is None:
            raise _HttpError(503, "no telemetry collector attached")
        return 200, PROMETHEUS_CONTENT_TYPE, telemetry.to_prometheus().encode()

    def _healthz(self) -> tuple[int, str, bytes]:
        sync_server = self._server.server
        health = {
            "status": "ok",
            "backlog_samples": sync_server.backlog_by_model(),
            "inflight": self._server.inflight,
        }
        if sync_server.admission is not None:
            health["admission"] = vars(sync_server.admission.counters())
        return 200, _JSON_TYPE, json.dumps(health).encode()

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if status == 429:
            head += "Retry-After: 1\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
