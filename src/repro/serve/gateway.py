"""Stdlib-only HTTP/JSON gateway over :class:`AsyncInferenceServer`.

The last missing layer between the serving stack and a load balancer: a
minimal HTTP/1.1 front door built on ``asyncio.start_server`` -- no web
framework, because the repo's dependency budget is numpy plus the standard
library.  Five routes:

* ``POST /v1/infer`` -- body ``{"model": str, "inputs": [[...]],
  "priority": int?, "deadline_s": float?}``.  Admitted requests await their
  result and return ``200`` with ``{"outputs": [[...]], "decision": {...},
  "trace_id": str|null}`` (the trace id is non-null when a
  :class:`~repro.telemetry.Tracer` sampled the request -- quote it to
  ``/debug/trace``); shed requests return ``429`` *immediately* (the
  admission decision is O(us); no scheduler round-trip) with the typed
  decision as the body, plus a ``Retry-After`` hint.  Unknown models map to
  ``404``, malformed bodies to ``400``.
* ``GET /v1/models`` -- the hosted models with per-model backend, tenant,
  backlog, dispatch width and (for replica pools) healthy/total replica
  counts, plus the admission controller's overload state.
* ``GET /metrics`` -- the :class:`~repro.telemetry.TelemetryCollector`
  Prometheus text exposition (counters, gauges and the latency/queue-wait/
  engine-time histograms), served under
  :data:`~repro.telemetry.PROMETHEUS_CONTENT_TYPE` so a stock Prometheus
  scraper can point at the gateway unmodified.
* ``GET /healthz`` -- liveness plus the server's per-model backlog,
  admission counters, overload state and replica-pool health, the signals a
  load balancer needs for weighted routing.
* ``GET /debug/trace`` -- the tracer's flight recorder as Chrome
  trace-event JSON (open in Perfetto); ``?trace_id=`` narrows the dump to
  one request.

The HTTP surface is deliberately small: one request per connection
(``Connection: close``), bounded header/body sizes, JSON in and out.  It is
an *example-grade* front door -- the asyncio facade underneath is the
production piece -- but every response it emits is well-formed HTTP/1.1,
and ``examples/gateway.py`` plus ``tests/test_async_serve.py`` drive it
with a real ``http.client``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.admission import RequestShedError
from repro.serve.aio import AsyncInferenceServer
from repro.telemetry import PROMETHEUS_CONTENT_TYPE

__all__ = ["AsyncGateway"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_BODY_BYTES = 16 * 1024 * 1024
_JSON_TYPE = "application/json; charset=utf-8"

#: HTTP status line reasons for the subset of codes the gateway emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An error that maps straight to an HTTP error response."""

    def __init__(self, status: int, message: str):
        self.status = status
        self.message = message
        super().__init__(message)


class AsyncGateway:
    """Serve inference, metrics, health and trace routes over one event loop.

    Parameters
    ----------
    server:
        The :class:`~repro.serve.aio.AsyncInferenceServer` handling
        inference.  Its telemetry collector (if any) backs ``/metrics``.
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`),
        which is what the tests and the example use.
    """

    def __init__(
        self,
        server: AsyncInferenceServer,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self._server = server
        self._host = host
        self._port = port
        self._listener: asyncio.base_events.Server | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` -- resolves ``port=0`` after start."""
        if self._listener is None:
            raise RuntimeError("gateway is not running")
        sock = self._listener.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def start(self) -> "AsyncGateway":
        self._listener = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )
        return self

    async def aclose(self) -> None:
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None

    async def __aenter__(self) -> "AsyncGateway":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, content_type, payload = await self._route(method, path, body)
            except _HttpError as exc:
                status = exc.status
                content_type = _JSON_TYPE
                payload = json.dumps({"error": exc.message}).encode()
            except Exception:
                status = 500
                content_type = _JSON_TYPE
                payload = json.dumps({"error": "internal error"}).encode()
            await self._write_response(writer, status, content_type, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        """Parse one HTTP/1.1 request: start line, headers, sized body."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, path, _version = parts
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length < 0 or length > _MAX_BODY_BYTES:
            raise _HttpError(413, "body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes]:
        path, _, query = path.partition("?")
        if path == "/v1/infer":
            if method != "POST":
                raise _HttpError(405, "POST required")
            return await self._infer(body)
        if path == "/v1/models":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._models()
        if path == "/metrics":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._metrics()
        if path == "/healthz":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._healthz()
        if path == "/debug/trace":
            if method != "GET":
                raise _HttpError(405, "GET required")
            return self._debug_trace(query)
        raise _HttpError(404, f"no route for {path!r}")

    async def _infer(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body)
            model = payload["model"]
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
        except (ValueError, KeyError, TypeError) as exc:
            raise _HttpError(400, f"bad request body: {exc}") from None
        priority = int(payload.get("priority", 0))
        deadline_s = payload.get("deadline_s")
        try:
            decision = await self._server.submit(
                model, inputs, priority=priority, deadline_s=deadline_s
            )
        except KeyError as exc:
            raise _HttpError(404, str(exc)) from None
        except (ValueError, TypeError) as exc:
            raise _HttpError(400, str(exc)) from None
        except RuntimeError as exc:  # ServerStoppedError and kin
            raise _HttpError(503, str(exc)) from None
        trace_id = getattr(decision.decision, "trace_id", None)
        try:
            outputs = await decision.result()
        except RequestShedError:
            reply = json.dumps(
                {"decision": decision.as_dict(), "trace_id": trace_id}
            ).encode()
            return 429, _JSON_TYPE, reply
        reply = json.dumps(
            {
                "outputs": outputs.tolist(),
                "decision": decision.as_dict(),
                "trace_id": trace_id,
            }
        ).encode()
        return 200, _JSON_TYPE, reply

    def _metrics(self) -> tuple[int, str, bytes]:
        telemetry = self._server.telemetry
        if telemetry is None:
            raise _HttpError(503, "no telemetry collector attached")
        return 200, PROMETHEUS_CONTENT_TYPE, telemetry.to_prometheus().encode()

    def _models(self) -> tuple[int, str, bytes]:
        """``GET /v1/models``: hosted models with health/backlog/pressure."""
        sync_server = self._server.server
        registry = sync_server.registry
        backlog = sync_server.backlog_by_model()
        tenants = registry.tenants()
        models = []
        for name in sorted(registry.names()):
            try:
                engine = registry.engine(name)
            except KeyError:  # unregistered between names() and engine()
                continue
            entry: dict = {
                "name": name,
                "tenant": tenants.get(name, name),
                "backend": (
                    "process"
                    if getattr(engine, "worker_owns_state", False)
                    else "thread"
                ),
                "backlog_samples": backlog.get(name, 0),
                "dispatch_width": int(getattr(engine, "dispatch_width", 1)),
            }
            pool_health = getattr(engine, "pool_health", None)
            if pool_health is not None:
                entry["replicas"] = pool_health()
            models.append(entry)
        payload = {"models": models, "overload_state": self._overload_state()}
        return 200, _JSON_TYPE, json.dumps(payload).encode()

    def _overload_state(self) -> str | None:
        """The admission controller's overload state (``None`` without one)."""
        admission = self._server.server.admission
        return None if admission is None else admission.state.value

    def _healthz(self) -> tuple[int, str, bytes]:
        sync_server = self._server.server
        health = {
            "status": "ok",
            "backlog_samples": sync_server.backlog_by_model(),
            "inflight": self._server.inflight,
            "overload_state": self._overload_state(),
        }
        if sync_server.admission is not None:
            health["admission"] = vars(sync_server.admission.counters())
        pools = {}
        registry = sync_server.registry
        for name in registry.names():
            try:
                engine = registry.engine(name)
            except KeyError:
                continue
            pool_health = getattr(engine, "pool_health", None)
            if pool_health is not None:
                pools[name] = pool_health()
        if pools:
            health["pools"] = pools
        return 200, _JSON_TYPE, json.dumps(health).encode()

    def _debug_trace(self, query: str) -> tuple[int, str, bytes]:
        """``GET /debug/trace``: the flight recorder as Chrome trace JSON.

        ``?trace_id=<id>`` narrows the dump to one request's span events
        (still wrapped in the same ``traceEvents`` envelope, so either form
        loads in Perfetto).
        """
        tracer = self._server.server.tracer
        if tracer is None or tracer.recorder is None:
            raise _HttpError(503, "no tracer attached")
        recorder = tracer.recorder
        params = dict(pair.partition("=")[::2] for pair in query.split("&") if pair)
        trace_id = params.get("trace_id")
        if trace_id:
            payload = json.dumps(
                {
                    "traceEvents": recorder.trace_events(trace_id),
                    "displayTimeUnit": "ms",
                }
            )
        else:
            payload = recorder.to_chrome_trace()
        return 200, _JSON_TYPE, payload.encode()

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        payload: bytes,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
        )
        if status == 429:
            head += "Retry-After: 1\r\n"
        head += "Connection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
