"""The multi-tenant batched inference server.

:class:`InferenceServer` accepts concurrent requests against any model hosted
in a :class:`~repro.serve.registry.ModelRegistry`, coalesces them per model
with the dynamic micro-batching scheduler
(:class:`~repro.serve.scheduler.RequestQueue`), executes each coalesced batch
on the model's engine, and splits the outputs back per request.  With an
:class:`~repro.serve.admission.AdmissionController` attached, every
:meth:`~InferenceServer.submit` is first judged against the live backlog and
the calibrated latency predictions, and doomed or over-cap requests are shed
(or downgraded) *before* they consume queue space -- the returned
:class:`~repro.serve.admission.AdmissionDecision` carries the evidence.

Threading model:

* any number of client threads call :meth:`submit` / :meth:`infer`;
* one scheduler thread forms batches and appends them to per-model FIFO
  dispatch queues;
* worker threads repeatedly pop the *globally most urgent* dispatched batch
  (highest priority first, with aged-starved batches promoted into the top
  class, then earliest deadline, then formation order) from any model not
  already being drained -- batches of
  different models run concurrently, batches of the same model run in
  formation order, and a busy worker no longer FIFO-drains one model while
  a higher-priority batch of another model waits;
* engine access is additionally serialised per *executor* (locks acquired in
  a global order), because the shared :class:`~repro.runtime.ExecutorPool`
  can back several hosted names with the same executors (e.g. one model
  registered twice, or tenants sharing layer objects), and executors
  accumulate statistics and noise state unguarded;
* process-backed engines (:class:`~repro.runtime.ReplicaPool`,
  ``ModelRegistry.register(..., backend="process", replicas=N)``) take no
  executor locks at all -- each worker process owns every executor and
  serialises its own request pipe, so two process-backed models execute
  truly in parallel while their worker-side engine timings still feed
  telemetry calibration.  A pool advertising ``dispatch_width > 1`` also
  runs up to that many *same-model* batches concurrently (one per healthy
  replica); single-width engines keep the classic one-batch-per-model
  draining rule.

Results are bit-identical to calling ``engine.run`` directly on each request's
inputs whenever the engine is deterministic (the default noiseless setup):
every stage of the simulator is per-sample, so coalescing requests into one
batch cannot change any request's outputs.  With a seeded noise model the
*grouping* determines which draws land on which request, exactly as it would
when choosing a batch size by hand.
"""

from __future__ import annotations

import copy
import itertools
import math
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.serve.admission import (
    ACCEPTED,
    DOWNGRADED,
    AdmissionController,
    AdmissionDecision,
    OverloadState,
)
from repro.serve.fleet import FleetRouter, RouteDecision, RoutingObjective
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import (
    BatchingPolicy,
    InferenceFuture,
    InferenceRequest,
    RequestQueue,
)
from repro.telemetry import RequestTrace, TelemetryCollector, Tracer

__all__ = ["InferenceServer", "ServerStatistics", "ServerStoppedError"]


class ServerStoppedError(RuntimeError):
    """Raised by :meth:`InferenceServer.submit` once the server has stopped.

    Subclasses :class:`RuntimeError` so pre-existing ``except RuntimeError``
    call sites keep working.  The check runs *before* admission control and
    any counter updates, so a rejected submit leaves no trace in the
    admission/telemetry accounting.
    """


def _clone_error(error: BaseException) -> BaseException:
    """A per-request copy of one batch-wide failure.

    Every future of a failed batch needs its *own* exception instance:
    raising mutates ``__traceback__``/``__context__`` on the raised object,
    so concurrent ``result()`` calls re-raising one shared instance race on
    that mutation.  The copy keeps the original type/args (so ``except`` and
    message matching behave identically) and chains the original via
    ``__cause__`` for debugging; exceptions that refuse to copy degrade to a
    ``RuntimeError`` carrying their repr.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        clone = None
    if clone is None or clone is error or type(clone) is not type(error):
        clone = RuntimeError(f"batch execution failed: {error!r}")
    clone.__cause__ = error
    return clone


@dataclass
class ServerStatistics:
    """Aggregate serving counters (snapshot via :meth:`InferenceServer.statistics`)."""

    requests_submitted: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    requests_shed: int = 0
    requests_downgraded: int = 0
    batches_executed: int = 0
    samples_executed: int = 0
    max_batch_size: int = 0
    engine_time_s: float = 0.0
    queue_wait_s: float = 0.0
    batches_per_model: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        """Average samples per coalesced engine call."""
        if self.batches_executed == 0:
            return 0.0
        return self.samples_executed / self.batches_executed

    @property
    def mean_queue_wait_s(self) -> float:
        """Average time a request waited for co-batching."""
        if self.requests_completed == 0:
            return 0.0
        return self.queue_wait_s / self.requests_completed


@dataclass
class _EngineLockEntry:
    """One per-executor/per-noise lock plus its in-flight reference count.

    ``refs`` counts batches the lock has been handed to but that have not
    finished executing yet; pruning must keep such entries even when their
    model has been unregistered, because re-registering the same pooled
    executor must map onto the *same* lock while any batch still holds (or
    is about to take) it.
    """

    lock: threading.Lock = field(default_factory=threading.Lock)
    refs: int = 0


@dataclass
class _DispatchedBatch:
    """One formed batch waiting for (or undergoing) execution.

    The urgency fields are frozen at formation time: ``priority`` is the
    batch's highest request priority, ``deadline_s`` its tightest absolute
    deadline, ``enqueued_at`` its oldest request's submission instant (the
    aging clock), and ``seq`` the global formation order that keeps
    same-model batches FIFO and breaks ties deterministically.

    ``engine_name`` is the registry name the batch executes on: the
    requests' own model name, except for fleet submissions, where the
    router rebinds it to the chosen variant (``route`` then carries the
    :class:`~repro.serve.fleet.RouteDecision` evidence, and may be rebound
    again if the variant is unregistered mid-flight).
    """

    seq: int
    requests: list[InferenceRequest]
    samples: int
    priority: int
    deadline_s: float | None
    enqueued_at: float
    engine_name: str
    route: RouteDecision | None = None
    # The dispatch-queue name this batch's samples are counted under; set by
    # the worker that pops it and cleared (under the dispatch guard) when the
    # batch is retired from the dispatched backlog -- see _retire_dispatch.
    dispatch_key: str | None = None

    @classmethod
    def from_requests(
        cls, seq: int, requests: list[InferenceRequest]
    ) -> "_DispatchedBatch":
        deadlines = [r.deadline_s for r in requests if r.deadline_s is not None]
        return cls(
            seq=seq,
            requests=requests,
            samples=sum(r.n_samples for r in requests),
            priority=max(r.priority for r in requests),
            deadline_s=min(deadlines) if deadlines else None,
            enqueued_at=min(r.enqueued_at for r in requests),
            engine_name=requests[0].model_name,
        )


class InferenceServer:
    """Dynamic micro-batching server over a model registry.

    Parameters
    ----------
    registry:
        The hosted models.  Models may be registered while the server runs.
    policy:
        Batch-size / latency-budget knobs of the scheduler (including the
        anti-starvation aging limit used by both batch formation and worker
        dispatch).
    max_workers:
        Worker threads executing coalesced batches; batches of different
        models run concurrently, batches of one model always serialise.
    telemetry:
        Optional :class:`~repro.telemetry.TelemetryCollector`.  When set, the
        server records a :class:`~repro.telemetry.RequestTrace` per completed
        request (queue wait, batch size, engine wall time, modeled energy --
        total and per-component -- and latency from the model's cost tables)
        plus one engine-run record per coalesced batch, and the scheduler's
        deadline slack uses the collector's calibrated latency predictions.
        Cost models registered on the
        :class:`~repro.serve.registry.ModelRegistry` (via its ``arch``
        parameter) are attached to the collector automatically.
    slo_scheduling:
        Whether pending priorities/deadlines reorder dispatch (SLO-aware
        scheduling).  Enabled by default -- a no-op while no request carries
        SLO hints, preserving FIFO behaviour exactly.  ``False`` forces pure
        FIFO-by-age even for SLO-tagged requests (the baseline the telemetry
        benchmarks compare against).
    admission:
        Optional :class:`~repro.serve.admission.AdmissionController`.  When
        set, every submit is screened against queue-depth/inflight-cost caps,
        the overload state machine, and the unmeetable-deadline test; shed
        requests are rejected in microseconds without enqueueing anything.
        Without one, every valid request is admitted (the pre-admission
        behaviour) and decisions report no queue evidence.
    tracer:
        Optional :class:`~repro.telemetry.Tracer`.  When set, sampled
        requests carry a distributed trace: spans cover the admission
        decision, queue wait, batch formation, dispatch, worker IPC,
        worker-side engine execution and completion, the request's
        ``trace_id`` rides the returned decision, and finished traces plus
        lifecycle events (replica crashes/restarts, overload transitions,
        sheds) land in the tracer's flight recorder.  Replica pools hosted
        in the registry get their lifecycle observer wired automatically.
        Absent (the default), the tracing path costs one ``None`` check.
    routing:
        Optional :class:`~repro.serve.fleet.RoutingObjective` for fleet
        submissions (:meth:`ModelRegistry.register_fleet
        <repro.serve.registry.ModelRegistry.register_fleet>`).  Batches
        addressed at a fleet name are placed on one of its architecture
        variants at formation time by a
        :class:`~repro.serve.fleet.FleetRouter` (exposed as
        :attr:`router`), by default minimising modeled energy subject to
        the batch's deadline slack; per-variant backlog feeds back into
        the placement so a saturated fast variant spills to the low-power
        one.  Non-fleet submissions never touch the router.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.  Requests
    may be submitted before :meth:`start`; they dispatch once the scheduler
    runs (handy for deterministic tests and benchmarks).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        policy: BatchingPolicy | None = None,
        max_workers: int = 2,
        telemetry: TelemetryCollector | None = None,
        slo_scheduling: bool = True,
        admission: AdmissionController | None = None,
        tracer: Tracer | None = None,
        routing: RoutingObjective | None = None,
    ):
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.registry = registry
        self.policy = policy or BatchingPolicy()
        self.max_workers = max_workers
        self.telemetry = telemetry
        self.slo_scheduling = slo_scheduling
        self.admission = admission
        self.tracer = tracer
        self.router = FleetRouter(registry, telemetry, routing)
        # Replica pools whose lifecycle observer is already pointed at this
        # server's tracer; same generation-keyed invalidation as the cost
        # model cache below.  Setting the observer is assignment-idempotent,
        # so the cache only saves the per-request getattr, not correctness.
        self._wired_observers: set[str] = set()
        self._observer_generation = -1
        # Last overload state seen per submit, for edge-triggered
        # overload_transition events in the flight recorder.  Read/written
        # without a lock: a racing pair of submits can at worst emit a
        # duplicate or miss one transition event, never corrupt state.
        self._last_overload_state: str | None = None
        self._request_ids = itertools.count()
        # Model names whose cost model was already wired into the collector,
        # so submit() pays the lookup once per model, not per request.  The
        # cache is tied to the registry's generation counter: any tenant
        # (un)registration invalidates it, so a name re-registered with new
        # tables is re-wired instead of billed against stale ones.
        self._wired_cost_models: set[str] = set()
        self._wired_generation = -1
        self._queue = self._make_queue()
        self._stats = ServerStatistics()
        self._stats_lock = threading.Lock()
        # Per-executor/per-noise lock entries, keyed by object id.  The
        # table is pruned whenever the registry generation changes (see
        # _engine_locks), so long-running servers that register/unregister
        # tenants do not leak lock entries; entries handed to an in-flight
        # batch (refs > 0) survive pruning so a concurrently re-registered
        # model reusing the same pooled executor keeps serialising on the
        # same lock.
        self._executor_locks: dict[int, _EngineLockEntry] = {}
        self._locks_generation = -1
        # Per-model FIFO queues of formed batches.  Workers pop the globally
        # most urgent head batch of any model with spare dispatch capacity
        # (in-flight batches < the engine's dispatch_width, 1 for ordinary
        # engines); _dispatched_samples counts samples formed-but-unfinished
        # (including the batch currently executing), which admission control
        # adds to the request queue's depth to see the whole backlog.
        self._dispatch: dict[str, deque[_DispatchedBatch]] = {}
        self._active_batches: dict[str, int] = {}
        self._dispatched_samples: dict[str, int] = {}
        self._dispatch_seq = itertools.count()
        self._dispatch_guard = threading.Lock()
        self._scheduler: threading.Thread | None = None
        self._workers: ThreadPoolExecutor | None = None

    # -- lifecycle -------------------------------------------------------------

    def _make_queue(self) -> RequestQueue:
        return RequestQueue(
            latency_estimator=self._latency_predictor(),
            slo_mode=self.slo_scheduling,
        )

    def _latency_predictor(self, include_queue_wait: bool = False):
        """The collector's calibrated latency predictor, made fleet-aware.

        Plain model names pass straight through to
        :meth:`~repro.telemetry.TelemetryCollector.predicted_batch_latency_s`.
        A fleet name predicts its *best feasible variant*: the minimum over
        variants of the calibrated estimate divided by that variant's
        dispatch width (a replica pool drains its backlog ~width times
        faster) -- which is what the router can actually achieve, so
        admission control and deadline-slack scheduling neither shed work a
        fast variant could serve nor admit work no variant can.  ``None``
        without a collector (the queue and admission both treat a missing
        predictor as "no latency evidence").

        ``include_queue_wait=True`` folds each model's observed queue-wait
        EMA into the estimate -- the cross-model contention signal the
        admission controller prices (see :meth:`TelemetryCollector
        .predicted_batch_latency_s
        <repro.telemetry.TelemetryCollector.predicted_batch_latency_s>`).
        The scheduler's slack estimator keeps the default: a queued
        request's own wait is measured directly there, and adding the EMA
        would double-count it.
        """
        if self.telemetry is None:
            return None
        collector = self.telemetry

        def base(model_name: str, n_samples: int) -> float | None:
            return collector.predicted_batch_latency_s(
                model_name, n_samples, include_queue_wait=include_queue_wait
            )

        def predict(model_name: str, n_samples: int) -> float | None:
            variants = self.registry.fleet_variants(model_name)
            if variants is None:
                return base(model_name, n_samples)
            best = None
            for variant in variants:
                predicted = base(variant, n_samples)
                if predicted is None:
                    continue
                try:
                    engine = self.registry.engine(variant)
                except KeyError:  # unregistered concurrently
                    continue
                predicted /= max(1, int(getattr(engine, "dispatch_width", 1)))
                if best is None or predicted < best:
                    best = predicted
            return best

        return predict

    def start(self) -> "InferenceServer":
        """Start the scheduler and worker pool (idempotent, restartable)."""
        if self._scheduler is not None:
            return self
        if self._queue.closed:  # restarting after stop(): fresh queue
            self._queue = self._make_queue()
        self._workers = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="serve-worker"
        )
        self._scheduler = threading.Thread(
            target=self._schedule_loop, name="serve-scheduler", daemon=True
        )
        self._scheduler.start()
        return self

    def stop(self) -> None:
        """Drain pending requests, then stop scheduler and workers."""
        if self._scheduler is None:
            return
        self._queue.close()
        self._scheduler.join()
        self._workers.shutdown(wait=True)
        self._scheduler = None
        self._workers = None

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- client API ------------------------------------------------------------

    def submit(
        self,
        model_name: str,
        inputs: np.ndarray,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> AdmissionDecision:
        """Screen, enqueue (unless shed) and return the admission decision.

        ``inputs`` must carry a leading batch dimension:
        ``(n_samples, *model.input_shape)``.  Validation happens here so bad
        requests fail fast instead of poisoning a coalesced batch.

        ``priority`` (higher dispatches first) and ``deadline_s`` (seconds
        from now after which the result stops being useful) opt the request
        into SLO-aware scheduling; omitting both keeps the classic FIFO
        behaviour.  Deadlines are best-effort -- a late *admitted* request
        still completes, and the miss is recorded in the telemetry collector.

        The returned :class:`~repro.serve.admission.AdmissionDecision` is
        also the result handle (``decision.result()`` /``decision.done()``
        forward to the underlying future); a shed decision has no future and
        raises :class:`~repro.serve.admission.RequestShedError` on
        :meth:`~repro.serve.admission.AdmissionDecision.result`.

        Raises :class:`ServerStoppedError` once :meth:`stop` has closed the
        queue -- *before* the admission decision, so a rejected submit never
        bumps an admission or telemetry counter.  :meth:`start` the server
        again to resume submitting.
        """
        if self._queue.closed:
            raise ServerStoppedError(
                "inference server is stopped; call start() before submitting"
            )
        model = self.registry.model(model_name)  # raises KeyError if unknown
        batch = np.asarray(inputs, dtype=np.float64)
        if batch.ndim != len(model.input_shape) + 1 or batch.shape[0] == 0:
            raise ValueError(
                f"expected inputs of shape (n_samples, "
                f"{', '.join(map(str, model.input_shape))}), got {batch.shape}"
            )
        if batch.shape[1:] != model.input_shape:
            raise ValueError(
                f"model {model_name!r} takes samples of shape "
                f"{model.input_shape}, got {batch.shape[1:]}"
            )
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be positive (seconds from now)")
        self._wire_cost_model(model_name)
        self._wire_trace_observer(model_name)
        request_id = next(self._request_ids)
        tracer = self.tracer
        handle = None if tracer is None else tracer.begin(model_name, request_id)
        decision = self._admission_decision(
            request_id, model_name, batch.shape[0], priority, deadline_s
        )
        # One timestamp serves as both the admission span's end and the
        # request's enqueue instant, so the admission and queue_wait spans
        # tile without a gap and the trace covers the full wall time.
        now = time.monotonic()
        if handle is not None:
            handle.add_span(
                "admission",
                handle.start_s,
                now,
                status=decision.status,
                reason=decision.reason,
                overload_state=decision.overload_state.value,
            )
            decision.trace_id = handle.trace_id
        if tracer is not None:
            state = decision.overload_state.value
            if state != self._last_overload_state:
                previous = self._last_overload_state
                self._last_overload_state = state
                tracer.record_event(
                    "overload_transition",
                    model=model_name,
                    previous=previous,
                    state=state,
                )
        if decision.status == DOWNGRADED:
            priority, deadline_s = 0, None
        if not decision.accepted:
            if self.telemetry is not None and self.admission is not None:
                self.telemetry.record_admission(decision)
            with self._stats_lock:
                self._stats.requests_shed += 1
            if tracer is not None:
                tracer.record_event(
                    "request_shed",
                    model=model_name,
                    request_id=request_id,
                    reason=decision.reason,
                )
            if handle is not None:
                handle.finish(status="shed")
            return decision
        future = InferenceFuture()
        request = InferenceRequest(
            model_name=model_name,
            inputs=batch,
            future=future,
            enqueued_at=now,
            priority=priority,
            deadline_s=None if deadline_s is None else now + deadline_s,
            request_id=request_id,
            trace=handle,
        )
        decision.future = future
        # Accepted requests are counted only *after* the enqueue succeeds:
        # stop() may close the queue between the fail-fast check above and
        # this point, and a request that was never enqueued must not appear
        # in admission or serving counters.
        try:
            self._queue.submit(request)
        except RuntimeError as error:
            if self.admission is not None:
                # decide() already counted the decision; the request never
                # entered the system, so take the count back.
                self.admission.retract(decision)
            if handle is not None:
                handle.finish(status="stopped")
            raise ServerStoppedError(
                "inference server stopped while submitting; call start() "
                "before submitting"
            ) from error
        if self.telemetry is not None and self.admission is not None:
            self.telemetry.record_admission(decision)
        with self._stats_lock:
            self._stats.requests_submitted += 1
            if decision.status == DOWNGRADED:
                self._stats.requests_downgraded += 1
        return decision

    def _admission_decision(
        self,
        request_id: int,
        model_name: str,
        n_samples: int,
        priority: int,
        deadline_s: float | None,
    ) -> AdmissionDecision:
        """Run the admission controller (or accept trivially without one)."""
        if self.admission is None:
            return AdmissionDecision(
                status=ACCEPTED,
                request_id=request_id,
                model_name=model_name,
                tenant=model_name,
                reason="admission control disabled",
                overload_state=OverloadState.ACCEPTING,
            )
        tenants = self.registry.tenants()
        # Fleet names predict via their best feasible variant (already
        # width-scaled inside the predictor); _dispatch_widths has no fleet
        # entry, so admission's own replica division stays a no-op for them.
        # Admission (alone) prices observed queue wait on top of the modeled
        # latency, so deadline feasibility sees cross-model contention.
        predictor = self._latency_predictor(include_queue_wait=True)
        return self.admission.decide(
            request_id=request_id,
            model_name=model_name,
            tenant=tenants.get(model_name, model_name),
            n_samples=n_samples,
            priority=priority,
            deadline_s=deadline_s,
            backlog_samples=self._backlog_by_model(),
            tenants=tenants,
            predictor=predictor,
            replica_counts=self._dispatch_widths(),
        )

    def _dispatch_widths(self) -> dict[str, int]:
        """Models whose engine drains more than one batch at a time.

        Replica pools advertise their healthy width via ``dispatch_width``;
        admission control divides its latency predictions by it, because a
        backlog spread over N healthy replicas drains ~N times faster than
        the single-engine calibration assumes.  Width-1 engines are omitted
        (the default divisor).
        """
        widths: dict[str, int] = {}
        for name in self.registry.names():
            try:
                engine = self.registry.engine(name)
            except KeyError:  # unregistered between names() and engine()
                continue
            width = int(getattr(engine, "dispatch_width", 1))
            if width > 1:
                widths[name] = width
        return widths

    def _backlog_by_model(self) -> dict[str, int]:
        """Queued plus dispatched-but-unfinished samples per model."""
        backlog = self._queue.queued_samples_by_model()
        with self._dispatch_guard:
            for name, samples in self._dispatched_samples.items():
                if samples:
                    backlog[name] = backlog.get(name, 0) + samples
        return backlog

    def backlog_by_model(self) -> dict[str, int]:
        """Public backlog snapshot: in-flight samples per model.

        Counts queued plus dispatched-but-unfinished samples -- the same
        figure admission control prices.  The asyncio gateway's health
        endpoint reports this so a load balancer can see pressure building
        before the admission controller starts shedding.
        """
        return self._backlog_by_model()

    def _wire_cost_model(self, model_name: str) -> None:
        """Attach the registry's cost tables to the collector, once per model.

        A fleet name wires every live variant's tables instead of its own
        (a fleet holds no engine or tables) -- the router's energy
        predictions and the per-variant cost attribution both read them
        from the collector.
        """
        if self.telemetry is None:
            return
        # Read the generation BEFORE fetching tables: if the registry
        # changes concurrently (re-registration between fetch and
        # attach), the stored generation is already behind the live one,
        # so the next submit invalidates the cache and re-wires -- a
        # race mis-attributes at most the in-flight request, never
        # subsequent ones.
        generation = self.registry.generation
        if generation != self._wired_generation:
            self._wired_cost_models.clear()
            self._wired_generation = generation
        if model_name in self._wired_cost_models:
            return
        variants = self.registry.fleet_variants(model_name)
        if variants is not None:
            for variant in variants:
                self._wire_one_cost_model(variant)
            # Membership changes bump the generation and clear this cache,
            # so caching the fleet name itself is safe.
            self._wired_cost_models.add(model_name)
            return
        self._wire_one_cost_model(model_name)

    def _wire_one_cost_model(self, name: str) -> None:
        if name in self._wired_cost_models:
            return
        try:
            cost_model = self.registry.cost_model(name)
        except KeyError:  # unregistered concurrently; next submit re-tries
            return
        if cost_model is not None:
            # The registry's tables win: after a re-registration the
            # collector may still hold the previous tenant's.
            self.telemetry.attach_cost_model(name, cost_model)
            self._wired_cost_models.add(name)
        elif self.telemetry.cost_model(name) is not None:
            # Tables attached to the collector directly (no registry
            # arch): keep them.
            self._wired_cost_models.add(name)
        # Absence is not cached: re-registering the model with an
        # architecture later must still wire its cost tables.

    def _wire_trace_observer(self, model_name: str) -> None:
        """Point a hosted replica pool's lifecycle events at the tracer.

        Crash/restart events then show up as instants in the tracer's
        flight recorder, timestamp-aligned with the request spans they
        interrupt.  Same generation-keyed cache discipline as
        :meth:`_wire_cost_model`; the stale-generation race is equally
        benign because setting the observer is idempotent.
        """
        if self.tracer is None:
            return
        generation = self.registry.generation
        if generation != self._observer_generation:
            self._wired_observers.clear()
            self._observer_generation = generation
        if model_name in self._wired_observers:
            return
        # A fleet name wires every live variant's pool (the fleet has no
        # engine of its own); membership changes bump the generation, so
        # caching the fleet name is safe.
        for target in self.registry.fleet_variants(model_name) or (model_name,):
            if target in self._wired_observers:
                continue
            try:
                engine = self.registry.engine(target)
            except KeyError:  # unregistered concurrently; next submit re-tries
                continue
            setter = getattr(engine, "set_lifecycle_observer", None)
            if setter is not None:
                setter(self._pool_lifecycle_event)
            self._wired_observers.add(target)
        self._wired_observers.add(model_name)

    def _pool_lifecycle_event(self, event: dict) -> None:
        """Forward one replica-pool lifecycle event into the flight recorder."""
        tracer = self.tracer
        if tracer is None:
            return
        payload = dict(event)
        name = payload.pop("event", "pool_event")
        tracer.record_event(name, **payload)

    def infer(
        self,
        model_name: str,
        inputs: np.ndarray,
        timeout: float | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Synchronous convenience wrapper: submit and wait for the result.

        Raises :class:`~repro.serve.admission.RequestShedError` when the
        admission controller sheds the request.
        """
        decision = self.submit(
            model_name, inputs, priority=priority, deadline_s=deadline_s
        )
        return decision.result(timeout)

    def statistics(self) -> ServerStatistics:
        """A consistent snapshot of the serving counters."""
        with self._stats_lock:
            snapshot = ServerStatistics(
                **{
                    name: value
                    for name, value in vars(self._stats).items()
                    if name != "batches_per_model"
                }
            )
            snapshot.batches_per_model = dict(self._stats.batches_per_model)
            return snapshot

    @property
    def pending_requests(self) -> int:
        """Requests currently queued (not yet formed into batches)."""
        return len(self._queue)

    # -- scheduler / workers ---------------------------------------------------

    @staticmethod
    def _engine_lock_ids(engine) -> set[int]:
        """Ids of the engine's shared mutable objects (executors + noise)."""
        from repro.analog.noise import NoiselessModel

        lock_ids = {id(executor) for executor in engine.executors.values()}
        lock_ids.update(
            id(executor.noise)
            for executor in engine.executors.values()
            if not isinstance(executor.noise, NoiselessModel)
        )
        return lock_ids

    def _live_lock_ids(self) -> set[int]:
        """Lock ids backed by an engine currently hosted in the registry."""
        live: set[int] = set()
        for name in self.registry.names():
            try:
                engine = self.registry.engine(name)
            except KeyError:  # unregistered between names() and engine()
                continue
            if getattr(engine, "worker_owns_state", False):
                continue  # process-backed: no parent-side executor state
            live.update(self._engine_lock_ids(engine))
        return live

    def _engine_locks(self, engine) -> list[_EngineLockEntry]:
        """Lock entries covering the engine's shared mutable state, id-sorted.

        The shared pool can back different hosted names with the same
        executor instances, and different engines can share one stateful
        (seeded) noise model whose RNG is not thread-safe -- so locks are
        keyed per executor *and* per stateful noise object rather than per
        model name.  The global id-sorted acquisition order makes taking
        several locks deadlock-free.

        The table is bounded: whenever the registry generation moves (a
        model was (un)registered), entries whose id no longer belongs to a
        hosted engine are dropped -- *except* entries some in-flight batch
        is still using (``refs > 0``).  Keeping in-use entries is a
        correctness requirement, not just politeness: unregistering a model
        mid-batch and re-registering it (its executors stay cached in the
        shared pool) must map the same executor onto the same lock, or two
        batches would run one unguarded executor concurrently.  Each
        returned entry's ``refs`` is incremented here; the caller must pair
        this with :meth:`_release_engine_locks`.  A recycled id can at
        worst share a lock until the next pruning pass (harmless extra
        serialisation), never accumulate forever.
        """
        lock_ids = self._engine_lock_ids(engine)
        # Snapshot the live ids *before* taking the dispatch guard: the
        # O(models x executors) registry scan must not stall every worker's
        # batch selection.  The unguarded generation read can only be stale,
        # which at worst defers (or redoes) one pruning pass; the refs > 0
        # rule keeps any in-flight entry safe regardless.
        generation = self.registry.generation
        stale = generation != self._locks_generation
        live = self._live_lock_ids() if stale else None
        with self._dispatch_guard:
            if live is not None and self._locks_generation < generation:
                self._executor_locks = {
                    lock_id: entry
                    for lock_id, entry in self._executor_locks.items()
                    if lock_id in live or entry.refs > 0
                }
                self._locks_generation = generation
            entries = [
                self._executor_locks.setdefault(lock_id, _EngineLockEntry())
                for lock_id in sorted(lock_ids)
            ]
            for entry in entries:
                entry.refs += 1
            return entries

    def _release_engine_locks(self, entries: list[_EngineLockEntry]) -> None:
        """Drop the in-flight references taken by :meth:`_engine_locks`."""
        with self._dispatch_guard:
            for entry in entries:
                entry.refs -= 1

    def _schedule_loop(self) -> None:
        while True:
            batch = self._queue.next_batch(self.policy)
            if batch is None:
                return
            name = batch[0].model_name
            if self.tracer is not None:
                formed = time.monotonic()
                for request in batch:
                    if request.trace is not None:
                        request.formed_at = formed
            entry = _DispatchedBatch.from_requests(next(self._dispatch_seq), batch)
            if self.registry.is_fleet(name):
                self._route_entry(name, entry)
            key = entry.engine_name
            # Routed batches join the *variant's* FIFO: per-variant
            # capacity, ordering and serialisation are exactly those of
            # direct submissions, which is what keeps a pinned fleet
            # bit-identical to single-variant serving -- and what makes
            # _dispatched_samples per-variant backlog the router feeds on.
            with self._dispatch_guard:
                self._dispatch.setdefault(key, deque()).append(entry)
                self._dispatched_samples[key] = (
                    self._dispatched_samples.get(key, 0) + entry.samples
                )
            # One worker task per formed batch: each task executes zero or
            # more batches (whatever is most urgent when it gets a thread)
            # and exits when nothing is selectable, so batches can never
            # outnumber the tasks that will look for them.
            self._workers.submit(self._dispatch_worker)

    def _route_entry(
        self, fleet: str, entry: _DispatchedBatch, reroute: bool = False
    ) -> bool:
        """Place one fleet batch on a variant; ``True`` when a variant was chosen.

        The decision path is dictionary lookups over precomputed cost
        tables and calibration scalars -- no engine is touched, so routing
        adds microseconds to batch formation.  ``reroute=True`` is the
        mid-flight drain path (the chosen variant was unregistered with
        the batch already dispatched): the batch is replaced onto the
        remaining variants and the hop is counted separately so the
        telemetry's routed-batch totals stay one-per-batch.  ``False``
        means no live variant exists; the caller lets the batch fail (or,
        at formation time, lets the engine lookup produce the usual
        unknown-model error).
        """
        started = time.monotonic()
        try:
            decision = self.router.route(
                fleet,
                entry.samples,
                deadline_s=entry.deadline_s,
                now=started,
                backlog=self._backlog_by_model(),
            )
        except LookupError:  # fleet emptied or dropped concurrently
            return False
        decided = time.monotonic()
        entry.engine_name = decision.variant
        entry.route = decision
        if self.telemetry is not None:
            self.telemetry.record_route(decision, reroute=reroute)
        if reroute and self.tracer is not None:
            self.tracer.record_event(
                "fleet_reroute",
                fleet=fleet,
                variant=decision.variant,
                samples=entry.samples,
            )
        for request in entry.requests:
            if request.trace is not None:
                request.trace.add_span(
                    "route",
                    started,
                    decided,
                    variant=decision.variant,
                    rejected=list(decision.rejected),
                    objective=decision.objective,
                    reason=decision.reason,
                    rerouted=reroute,
                )
        return True

    def _select_model_locked(self, now: float) -> str | None:
        """The most urgent head batch across models not already draining.

        Urgency order: highest priority class first -- where a batch older
        than :attr:`BatchingPolicy.starvation_limit_s` is promoted into the
        top pending class (the aging rule; best-effort batches cannot starve
        behind a saturated high-priority stream) -- then earliest deadline
        (EDF; deadline-free batches rank last), then formation order.  Only
        head batches compete, and a model already running as many batches as
        its engine's dispatch width (1 unless a replica pool advertises
        more) is skipped -- same-model batches still *dispatch* in formation
        order, replicas merely overlap their execution.  With
        ``slo_scheduling=False`` (the benchmarks' FIFO baseline) dispatch is
        strictly formation-ordered, mirroring the queue's FIFO mode.
        """
        heads = [
            (name, pending[0])
            for name, pending in self._dispatch.items()
            if pending
            and self._active_batches.get(name, 0) < self._dispatch_capacity(name)
        ]
        if not heads:
            return None
        if not self.slo_scheduling:
            return min(heads, key=lambda item: item[1].seq)[0]
        top_priority = max(head.priority for _, head in heads)
        best_name, best_key = None, None
        for name, head in heads:
            starved = now - head.enqueued_at > self.policy.starvation_limit_s
            priority = top_priority if starved else head.priority
            deadline = math.inf if head.deadline_s is None else head.deadline_s
            key = (-priority, deadline, head.seq)
            if best_key is None or key < best_key:
                best_key, best_name = key, name
        return best_name

    def _dispatch_capacity(self, name: str) -> int:
        """How many batches of one model may execute concurrently (>= 1)."""
        try:
            engine = self.registry.engine(name)
        except KeyError:  # unregistered with batches still queued
            return 1
        return max(1, int(getattr(engine, "dispatch_width", 1)))

    def _dispatch_worker(self) -> None:
        """Execute globally-most-urgent batches until none is selectable."""
        while True:
            with self._dispatch_guard:
                name = self._select_model_locked(time.monotonic())
                if name is None:
                    return
                self._active_batches[name] = self._active_batches.get(name, 0) + 1
                entry = self._dispatch[name].popleft()
                entry.dispatch_key = name
            try:
                self._execute_batch(entry)
            finally:
                # Normally a no-op: _execute_batch retires the batch before
                # its futures resolve.  This is the safety net for paths
                # that failed before reaching the accounting.
                self._retire_dispatch(entry)
                with self._dispatch_guard:
                    active = self._active_batches.get(name, 0) - 1
                    if active > 0:
                        self._active_batches[name] = active
                    else:
                        self._active_batches.pop(name, None)
                    if not self._dispatch.get(name):
                        self._dispatch.pop(name, None)

    def _retire_dispatch(self, entry: _DispatchedBatch) -> None:
        """Drop a batch's samples from the dispatched backlog, exactly once.

        Runs on the execution path *before* the batch's futures resolve, so
        a caller woken by its result no longer finds its own request in
        ``backlog_by_model()`` (queued and dispatched counts are the figure
        admission control prices).  Clearing ``dispatch_key`` under the
        guard makes the retirement idempotent.
        """
        with self._dispatch_guard:
            name = entry.dispatch_key
            if name is None:
                return
            entry.dispatch_key = None
            remaining = self._dispatched_samples.get(name, 0) - entry.samples
            if remaining > 0:
                self._dispatched_samples[name] = remaining
            else:
                self._dispatched_samples.pop(name, None)

    def _execute_batch(self, entry: _DispatchedBatch) -> None:
        batch = entry.requests
        sizes = [request.n_samples for request in batch]
        # Trace fan-out: the batch runs once, but each sampled request's
        # trace gets its own copy of the batch-level spans collected in
        # ``sink`` (engine/worker_ipc, as plain dicts so the runtime layer
        # never imports telemetry).  ``trace_ctx`` rides the worker request
        # so worker-side spans come back tagged with every trace they serve.
        traced = [request for request in batch if request.trace is not None]
        sink: list[dict] | None = [] if traced else None
        trace_ctx = (
            tuple(request.trace.trace_id for request in traced) if traced else None
        )
        dispatched = time.monotonic()
        try:
            inputs = (
                batch[0].inputs
                if len(batch) == 1
                else np.concatenate([request.inputs for request in batch], axis=0)
            )
            while True:
                try:
                    engine = self.registry.engine(entry.engine_name)
                    outputs, engine_time, engine_records = self._run_engine(
                        engine, inputs, sizes, sink, trace_ctx
                    )
                    break
                except BaseException:
                    # Zero-loss drain: a routed batch whose variant was
                    # unregistered mid-flight (the engine lookup fails, or
                    # a process pool was closed under the running batch) is
                    # re-placed onto the fleet's remaining variants instead
                    # of failing its requests.  Each retry targets a
                    # variant the pruned fleet still lists, so the loop is
                    # bounded by the fleet width; anything else -- including
                    # a fleet emptied of variants -- falls through to the
                    # failure path below.
                    if entry.route is None or entry.engine_name in self.registry:
                        raise
                    if not self._route_entry(entry.route.fleet, entry, reroute=True):
                        raise
        except BaseException as error:
            self._retire_dispatch(entry)
            for request in batch:
                request.future._set_error(_clone_error(error))
            with self._stats_lock:
                self._stats.requests_failed += len(batch)
            if traced:
                failed_at = time.monotonic()
                self._finish_traces(
                    traced,
                    sink,
                    dispatched,
                    delivered=failed_at,
                    completed=failed_at,
                    status="error",
                    error=type(error).__name__,
                )
            return
        bounds = np.cumsum(sizes)[:-1]
        results = np.split(outputs, bounds, axis=0)
        delivered = time.monotonic()
        completed = delivered
        # All accounting (server stats, traces, telemetry) is finalised
        # *before* the futures resolve: a caller woken by ``result()`` must
        # see its own request already reflected in ``statistics()``.  The
        # ``finally`` guarantees the futures resolve even if accounting
        # raises.
        try:
            self._retire_dispatch(entry)
            with self._stats_lock:
                stats = self._stats
                stats.requests_completed += len(batch)
                stats.batches_executed += 1
                stats.samples_executed += int(sum(sizes))
                stats.max_batch_size = max(stats.max_batch_size, int(sum(sizes)))
                stats.engine_time_s += engine_time
                stats.queue_wait_s += sum(
                    dispatched - request.enqueued_at for request in batch
                )
                # Routed batches are counted under the variant that actually
                # executed them (the fleet-level totals live in the telemetry
                # collector's routing counters).
                stats.batches_per_model[entry.engine_name] = (
                    stats.batches_per_model.get(entry.engine_name, 0) + 1
                )
            if traced:
                self._finish_traces(
                    traced,
                    sink,
                    dispatched,
                    delivered=delivered,
                    completed=completed,
                    status="ok",
                    batch_size=int(sum(sizes)),
                )
            if self.telemetry is not None:
                if entry.route is not None:
                    self.telemetry.record_route_outcome(entry.route)
                self._record_telemetry(
                    entry,
                    engine,
                    sizes,
                    dispatched,
                    completed,
                    engine_time,
                    engine_records,
                )
        finally:
            for request, result in zip(batch, results):
                request.future._set_result(result)

    def _run_engine(
        self,
        engine,
        inputs: np.ndarray,
        sizes: list[int],
        sink: list[dict] | None,
        trace_ctx: tuple | None,
    ) -> tuple[np.ndarray, float, list[tuple]]:
        """Run one coalesced batch on ``engine``; returns outputs + timings."""
        if getattr(engine, "worker_owns_state", False):
            # Process-backed engine: all mutable state lives in the
            # worker, which serialises its own requests -- no executor
            # locks.  Timing and engine-run records are measured inside
            # the worker, so telemetry calibration never sees IPC cost.
            # A replica pool additionally absorbs worker crashes here:
            # the batch is requeued onto a healthy sibling inside
            # run_timed, so a crash never surfaces as request failures.
            if sink is None:
                return engine.run_timed(inputs)
            return engine.run_timed(inputs, trace_ctx=trace_ctx, span_sink=sink)
        entries = self._engine_locks(engine)
        try:
            with ExitStack() as stack:
                for entry in entries:
                    stack.enter_context(entry.lock)
                engine_start = time.monotonic()
                start = time.perf_counter()
                outputs = engine.run(inputs)
                engine_time = time.perf_counter() - start
        finally:
            self._release_engine_locks(entries)
        engine_records = [(int(sum(sizes)), engine_time)]
        if sink is not None:
            # Thread-backed engines run in-process: the engine span
            # is parent-measured (same pid/tid as the worker thread).
            sink.append(
                {
                    "name": "engine",
                    "start_s": engine_start,
                    "end_s": engine_start + engine_time,
                    "replica": None,
                    "status": "ok",
                }
            )
        return outputs, engine_time, engine_records

    def _finish_traces(
        self,
        traced: list[InferenceRequest],
        sink: list[dict] | None,
        dispatched: float,
        *,
        delivered: float,
        completed: float,
        status: str,
        error: str | None = None,
        batch_size: int | None = None,
    ) -> None:
        """Close every sampled request's trace for one executed batch.

        Each traced request gets its own copies of the per-batch spans:
        ``queue_wait`` (submit -> batch formation), ``dispatch_wait``
        (formation -> worker pickup), ``execute`` (pickup -> outputs
        delivered), the sink's ``worker_ipc``/``engine`` spans (clamped into
        the execute window as a cross-platform guard; on Linux worker clocks
        share ``CLOCK_MONOTONIC`` so the clamp is a no-op), and ``complete``
        (output split + future delivery).  Finishing freezes the span list,
        which is what lets :meth:`_record_telemetry` snapshot it afterwards.
        """
        for request in traced:
            handle = request.trace
            formed = request.formed_at or dispatched
            formed = min(formed, dispatched)
            handle.add_span("queue_wait", request.enqueued_at, formed)
            handle.add_span("dispatch_wait", formed, dispatched)
            attrs: dict = {"status": status}
            if error is not None:
                attrs["error"] = error
            if batch_size is not None:
                attrs["batch_size"] = batch_size
            handle.add_span("execute", dispatched, delivered, **attrs)
            if sink:
                handle.add_span_dicts(sink, clamp=(dispatched, delivered))
            if status == "ok":
                handle.add_span("complete", delivered, completed)
            handle.finish(completed, status=status)

    def _record_telemetry(
        self,
        entry: _DispatchedBatch,
        engine,
        sizes: list[int],
        dispatched: float,
        completed: float,
        engine_time: float,
        engine_records: list[tuple],
    ) -> None:
        """Feed one completed batch into the telemetry collector.

        ``engine_records`` are the per-run ``(n_samples, elapsed_s)`` pairs
        -- or ``(n_samples, elapsed_s, replica)`` triples from a replica
        pool: measured server-side for in-process engines, shipped back over
        the result pipe for process-backed ones -- either way they feed the
        same calibration, so predicted latency stays grounded in engine
        time.  Engines exposing ``pool_health()`` (replica pools) also get
        their healthy/total replica counts and restart total snapshotted
        into the collector per batch.

        Routed fleet batches are recorded under the *variant* that executed
        them: calibration must stay per variant (the router's backlog-spill
        behaviour depends on each variant predicting its own speed) and the
        energy attribution must use the executing architecture's tables.
        Fleet-level aggregates come from the collector's routing counters.
        """
        batch = entry.requests
        name = entry.engine_name
        batch_samples = int(sum(sizes))
        self.telemetry.record_engine_runs(name, engine_records)
        pool_health = getattr(engine, "pool_health", None)
        if pool_health is not None:
            health = pool_health()
            self.telemetry.record_pool_health(
                name,
                healthy=health["healthy"],
                replicas=health["replicas"],
                restarts=health["restarts"],
            )
        cost = self.telemetry.cost_model(name)
        # The pipeline-fill latency is paid once per coalesced batch, so each
        # request is charged its sample-weighted share of the *batch's*
        # modeled latency (mirroring engine_share_s for wall time); summing
        # the per-request figures recovers the batch total exactly.
        batch_modeled_us = (
            None if cost is None else cost.batch_latency_us(batch_samples)
        )
        for request in batch:
            handle = request.trace
            self.telemetry.record(
                RequestTrace(
                    request_id=request.request_id,
                    model_name=name,
                    n_samples=request.n_samples,
                    priority=request.priority,
                    deadline_s=request.deadline_s,
                    enqueued_at=request.enqueued_at,
                    dispatched_at=dispatched,
                    completed_at=completed,
                    batch_size=batch_samples,
                    engine_time_s=engine_time,
                    modeled_energy_pj=(
                        None if cost is None else cost.energy_pj(request.n_samples)
                    ),
                    modeled_energy_components_pj=(
                        None
                        if cost is None
                        else cost.energy_split_pj(request.n_samples)
                    ),
                    modeled_latency_us=(
                        None
                        if batch_modeled_us is None
                        else batch_modeled_us * request.n_samples / batch_samples
                    ),
                    trace_id=None if handle is None else handle.trace_id,
                    spans=(
                        ()
                        if handle is None
                        else tuple(span.as_dict() for span in handle.spans())
                    ),
                )
            )
