"""Asyncio front door: coroutine-priced concurrency over the threaded server.

:class:`~repro.serve.server.InferenceServer` resolves each request through a
blocking :meth:`InferenceFuture.result`, so every in-flight request costs a
blocked OS thread.  That is fine for tens of clients and hopeless for the
ROADMAP's "heavy traffic" target: ten thousand concurrent requests must not
mean ten thousand stacks.  :class:`AsyncInferenceServer` keeps the entire
proven sync machinery -- admission control, dynamic micro-batching, SLO
dispatch, process/replica backends -- and changes only who waits:

* ``await submit(...)`` runs the sync submit fast path inline on the event
  loop.  That path never blocks (shape validation, an O(us) admission
  decision, one queue append), so shed latency through the async facade is
  the sync latency plus one coroutine hop.
* Each admitted request registers one
  :meth:`~repro.serve.scheduler.InferenceFuture.add_done_callback` bridge.
  When a dispatch worker delivers the result, the callback hops it onto the
  caller's event loop via ``loop.call_soon_threadsafe`` and resolves a plain
  :class:`asyncio.Future` -- one callback, no polling, no thread per request.
* ``max_inflight`` adds end-to-end backpressure *behind* admission control:
  ``submit`` awaits a free slot before the sync server ever sees the
  request, so a slow engine propagates pressure to producers as suspended
  coroutines instead of an unbounded queue.

Outputs are bit-identical to the sync path by construction -- the same
server executes the same batches; the facade only changes how completion is
awaited.  Shed requests surface the same
:class:`~repro.serve.admission.RequestShedError`.

One event loop per server: completion bridging targets the loop that
submitted the request, and the ``max_inflight`` semaphore binds to the first
loop that awaits it.  Run one :class:`AsyncInferenceServer` per loop (the
normal deployment: one loop per gateway process).

Quickstart::

    from repro.serve.aio import AsyncInferenceServer

    async def main():
        async with AsyncInferenceServer(registry, max_inflight=10_000) as srv:
            decision = await srv.submit("resnet", inputs)
            outputs = await decision  # RequestShedError if shed
"""

from __future__ import annotations

import asyncio
import functools
import threading
import time

import numpy as np

from repro.serve.admission import AdmissionController, AdmissionDecision
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import BatchingPolicy, InferenceFuture
from repro.serve.server import InferenceServer, ServerStatistics
from repro.telemetry import TelemetryCollector, Tracer

__all__ = ["AsyncAdmissionDecision", "AsyncInferenceServer"]


class AsyncAdmissionDecision:
    """Awaitable view of one :class:`~repro.serve.admission.AdmissionDecision`.

    ``await decision`` (or ``await decision.result()``) suspends until the
    dispatch worker delivers the request's output array; a shed decision
    raises :class:`~repro.serve.admission.RequestShedError` immediately, the
    same exception the sync path raises.  The wrapped typed decision stays
    available as :attr:`decision` for structured logging/HTTP mapping.
    """

    __slots__ = ("decision", "_future")

    def __init__(self, decision: AdmissionDecision, future: "asyncio.Future | None"):
        self.decision = decision
        self._future = future

    @property
    def status(self) -> str:
        return self.decision.status

    @property
    def accepted(self) -> bool:
        return self.decision.accepted

    @property
    def request_id(self) -> int:
        return self.decision.request_id

    @property
    def model_name(self) -> str:
        return self.decision.model_name

    @property
    def reason(self) -> str:
        return self.decision.reason

    def as_dict(self) -> dict:
        """JSON-ready representation (forwards to the sync decision)."""
        return self.decision.as_dict()

    def done(self) -> bool:
        """Whether a result (or the shed rejection) is already available."""
        return True if self._future is None else self._future.done()

    async def result(self, timeout: float | None = None) -> np.ndarray:
        """The request's output array; raises ``RequestShedError`` if shed.

        Cancellation (or a ``timeout``) abandons only this ``await``: the
        request stays in flight server-side and the decision may be awaited
        again later.
        """
        if self._future is None:
            raise self.decision.shed_error()
        if timeout is None:
            return await asyncio.shield(self._future)
        return await asyncio.wait_for(asyncio.shield(self._future), timeout)

    def __await__(self):
        return self.result().__await__()


class AsyncInferenceServer:
    """``async``/``await`` facade over an :class:`InferenceServer`.

    Accepts either the :class:`InferenceServer` constructor arguments (the
    common case -- the facade owns the server) or a prebuilt ``server=`` to
    wrap, e.g. one shared with sync callers.  ``async with`` starts and
    stops the underlying server; the blocking drain in ``stop`` runs in a
    thread-pool executor so the event loop never stalls on shutdown.

    ``max_inflight`` bounds the number of admitted-but-unfinished requests
    seen through this facade.  ``submit`` awaits a slot before admission, so
    overload suspends producers (cheap coroutines) rather than growing the
    server queue without bound; completions release slots from the event
    loop as results bridge back.
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        policy: BatchingPolicy | None = None,
        max_workers: int = 2,
        telemetry: TelemetryCollector | None = None,
        slo_scheduling: bool = True,
        admission: AdmissionController | None = None,
        tracer: Tracer | None = None,
        *,
        server: InferenceServer | None = None,
        max_inflight: int | None = None,
    ):
        if server is None:
            if registry is None:
                raise ValueError(
                    "AsyncInferenceServer needs a registry (or a prebuilt server=)"
                )
            server = InferenceServer(
                registry,
                policy,
                max_workers=max_workers,
                telemetry=telemetry,
                slo_scheduling=slo_scheduling,
                admission=admission,
                tracer=tracer,
            )
        elif registry is not None:
            raise ValueError("pass either a registry or a prebuilt server, not both")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self._server = server
        self._max_inflight = max_inflight
        self._capacity = (
            asyncio.Semaphore(max_inflight) if max_inflight is not None else None
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    @property
    def server(self) -> InferenceServer:
        """The wrapped synchronous server (shared admission/telemetry/stats)."""
        return self._server

    @property
    def registry(self) -> ModelRegistry:
        return self._server.registry

    @property
    def telemetry(self) -> TelemetryCollector | None:
        return self._server.telemetry

    @property
    def max_inflight(self) -> int | None:
        return self._max_inflight

    @property
    def inflight(self) -> int:
        """Admitted requests whose results have not yet bridged back."""
        with self._inflight_lock:
            return self._inflight

    def statistics(self) -> ServerStatistics:
        """Snapshot of the wrapped server's counters."""
        return self._server.statistics()

    def backlog_by_model(self) -> dict[str, int]:
        """In-flight (queued + dispatched) samples per model."""
        return self._server.backlog_by_model()

    async def start(self) -> "AsyncInferenceServer":
        """Start the underlying scheduler and dispatch workers."""
        self._server.start()
        return self

    async def stop(self) -> None:
        """Drain pending requests and stop the server, off the event loop.

        The sync ``stop`` joins the scheduler thread after the queue drains;
        running it in the default executor keeps completion bridging live
        (the loop keeps spinning) while the drain happens, so every future
        submitted before ``stop`` still resolves.
        """
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._server.stop)

    async def __aenter__(self) -> "AsyncInferenceServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def submit(
        self,
        model_name: str,
        inputs: np.ndarray,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> AsyncAdmissionDecision:
        """Admit one request; returns an awaitable admission decision.

        Suspends only for ``max_inflight`` backpressure.  The admission
        decision itself is made synchronously on the loop (it is an O(us)
        arithmetic check by design), so shed feedback is immediate: the
        returned decision for a shed request raises
        :class:`~repro.serve.admission.RequestShedError` when awaited,
        without a round-trip through the scheduler.
        """
        loop = asyncio.get_running_loop()
        if self._capacity is not None:
            await self._capacity.acquire()
        try:
            decision = self._server.submit(
                model_name, inputs, priority=priority, deadline_s=deadline_s
            )
        except BaseException:
            if self._capacity is not None:
                self._capacity.release()
            raise
        sync_future = decision.future
        if sync_future is None:  # shed: nothing in flight, free the slot now
            if self._capacity is not None:
                self._capacity.release()
            return AsyncAdmissionDecision(decision, None)
        async_future = loop.create_future()
        with self._inflight_lock:
            self._inflight += 1
        # Traced requests get a loop-side completion span: the request's
        # trace closes in the dispatch worker, so the asyncio bridge records
        # its hop as a standalone span attached to the same trace_id.
        trace_id = getattr(decision, "trace_id", None)
        sync_future.add_done_callback(
            functools.partial(self._bridge, loop, async_future, trace_id=trace_id)
        )
        return AsyncAdmissionDecision(decision, async_future)

    async def infer(
        self,
        model_name: str,
        inputs: np.ndarray,
        timeout: float | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Submit and await one request's outputs (sheds raise immediately)."""
        decision = await self.submit(
            model_name, inputs, priority=priority, deadline_s=deadline_s
        )
        return await decision.result(timeout)

    def _bridge(
        self,
        loop: asyncio.AbstractEventLoop,
        async_future: asyncio.Future,
        sync_future: InferenceFuture,
        trace_id: str | None = None,
    ) -> None:
        """Hop one completed request onto the event loop (dispatch thread)."""
        with self._inflight_lock:
            self._inflight -= 1
        bridge_start = time.monotonic() if trace_id is not None else 0.0
        try:
            loop.call_soon_threadsafe(
                self._resolve, async_future, sync_future, trace_id, bridge_start
            )
        except RuntimeError:
            # The loop already closed (shutdown with batches still in
            # flight).  The sync future has resolved -- anyone holding it
            # still gets the result -- and no coroutine on a closed loop can
            # await the asyncio future, so there is nothing left to wake.
            pass

    def _resolve(
        self,
        async_future: asyncio.Future,
        sync_future: InferenceFuture,
        trace_id: str | None = None,
        bridge_start: float = 0.0,
    ) -> None:
        """Deliver one bridged completion (event-loop thread)."""
        if self._capacity is not None:
            self._capacity.release()
        if not async_future.done():  # done() means the awaiter was cancelled
            error = sync_future.exception()
            if error is not None:
                async_future.set_exception(error)
            else:
                async_future.set_result(sync_future.result())
        tracer = self._server.tracer
        if trace_id is not None and tracer is not None:
            tracer.record_span(
                "loop_complete", trace_id, bridge_start, time.monotonic()
            )
