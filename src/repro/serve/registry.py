"""Multi-tenant model hosting behind one shared executor pool.

:class:`ModelRegistry` holds several calibrated models side by side, each
compiled into its own :class:`~repro.runtime.NetworkEngine` (or pipelined
:class:`~repro.serve.sharded.ShardedEngine`), while every engine draws its
executors from one shared :class:`~repro.runtime.ExecutorPool` and one shared
:class:`~repro.runtime.EncodedWeightCache`.  Tenants with identical layer
weights (fine-tuned model families, A/B variants) therefore share encoded
crossbars automatically, and re-registering a model after eviction re-uses its
pooled executors outright.

The registry enables the runtime's float32 GEMM fast path by default: serving
is the hot path the ROADMAP targets, and the fast path silently degrades to
float64 per chunk wherever exactness cannot be proven, so it is always safe.

Registration also compiles (and owns) each model's
:class:`~repro.runtime.plan.ModelPlan`: the per-layer execution recipes --
encoded chunks, phase index tables, GEMM operand views, speculation gather
tables, micro-batch splits -- derived once and then *executed* by every
engine kind.  Plans live in a :class:`~repro.runtime.ModelPlanCache` keyed by
weight fingerprints plus the frozen config (the same discipline as the
encoded-weight cache), so re-registering an unchanged model -- a
thread<->process backend swap, a rolling ``replace`` -- reuses the exact plan
object, while any weight or config change compiles a fresh one.
"""

from __future__ import annotations

import threading

from repro.analog.noise import NoiseModel
from repro.core.executor import PimLayerConfig
from repro.hw.architecture import ArchitectureSpec
from repro.nn.model import QuantizedModel
from repro.runtime.cache import EncodedWeightCache, ExecutorPool, ModelPlanCache
from repro.runtime.engine import NetworkEngine
from repro.runtime.plan import ModelPlan, compile_model_plan
from repro.runtime.procpool import ReplicaPool
from repro.runtime.vectorized import VectorizedLayerExecutor
from repro.serve.sharded import ShardedEngine
from repro.telemetry.cost import CostModel

__all__ = ["ModelRegistry"]


class ModelRegistry:
    """Named, calibrated models compiled into engines over shared caches.

    Parameters
    ----------
    pool:
        Executor pool shared by every hosted engine; built fresh (with its own
        weight cache) when omitted.
    float32:
        Default for the float32 GEMM fast path of newly registered engines.
    """

    def __init__(self, pool: ExecutorPool | None = None, float32: bool = True):
        if pool is None:
            pool = ExecutorPool(weight_cache=EncodedWeightCache(), float32=float32)
        self.pool = pool
        self.float32 = float32
        self._engines: dict[str, NetworkEngine] = {}
        # Compiled execution plans: the LRU cache deduplicates across hosted
        # names (fingerprint-keyed), _plans maps each live name to the plan
        # its engine currently runs.
        self._plan_cache = ModelPlanCache()
        self._plans: dict[str, ModelPlan] = {}
        self._cost_models: dict[str, CostModel] = {}
        self._tenants: dict[str, str] = {}
        # Logical fleet name -> ordered variant (engine) names; see
        # register_fleet.  Variants are ordinary registered models, so a
        # fleet holds no engine of its own.
        self._fleets: dict[str, tuple[str, ...]] = {}
        self._reserved: set[str] = set()
        self._lock = threading.RLock()
        # Bumped on every (un)registration; servers use it to invalidate
        # their per-name cost-model wiring caches when tenants change.
        self.generation = 0

    @property
    def weight_cache(self) -> EncodedWeightCache | None:
        """The encoded-weight cache behind the shared pool."""
        return self.pool.weight_cache

    def register(
        self,
        name: str,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        n_stages: int | None = None,
        sharded: bool = False,
        float32: bool | None = None,
        arch: ArchitectureSpec | None = None,
        tenant: str | None = None,
        backend: str = "thread",
        replicas: int | None = None,
        replace: bool = False,
        blas_threads: int | None = 1,
    ) -> NetworkEngine:
        """Host a calibrated model under ``name`` and return its engine.

        ``sharded=True`` (or any explicit ``n_stages``) builds a pipelined
        :class:`ShardedEngine`; both engine kinds are bit-identical, sharding
        only changes how micro-batches overlap in time.

        ``backend="process"`` hosts the model in a self-healing
        :class:`~repro.runtime.ReplicaPool` of ``replicas`` worker processes
        (default 1): each worker builds a private in-process engine from the
        pickled model spec and serves ``run()`` calls over a shared-memory
        request path, bit-identical to the default in-process (``"thread"``)
        backend.  Process-backed engines own all their mutable state, so the
        server dispatches to them without executor locks and replicas of one
        model (as well as different models) execute truly in parallel; a
        crashed replica is restarted automatically and its in-flight batch
        requeued onto a sibling.  ``blas_threads`` pins each worker's
        BLAS/OpenMP pools (default one thread per worker) so replicas divide
        the machine instead of oversubscribing it.  The workers are shut
        down cleanly by :meth:`unregister` (or :meth:`close`).  Process
        backends build their pool and weight cache worker-side, so they do
        not share encodings with this registry's pool, and they do not
        combine with ``sharded``/``n_stages`` (process parallelism replaces
        thread pipelining).

        ``replace=True`` re-registers an existing name in place.  When the
        old and new backend are both ``"process"``, the new spec is *rolled*
        through the existing pool one replica at a time, so the model never
        becomes unserveable and in-flight dispatches keep their engine
        reference; otherwise the new engine is built first, swapped in
        atomically, and the old one closed.  ``replicas=None`` keeps a
        rolled pool at its current width.

        ``arch`` opts the tenant into hardware-grounded telemetry: the
        registry precomputes a :class:`~repro.telemetry.CostModel` (per-layer
        energy/latency tables on that architecture), retrievable via
        :meth:`cost_model` and attached automatically by an
        :class:`~repro.serve.server.InferenceServer` running with a
        telemetry collector.

        ``tenant`` groups several hosted models under one accounting /
        admission-control label (A/B variants, one customer's model family);
        it defaults to the model's own hosted name, keeping the historical
        one-model-one-tenant behaviour.  Per-tenant queue caps in
        :class:`~repro.serve.admission.AdmissionPolicy` sum over every model
        registered with the same tenant label.
        """
        if not model.is_calibrated:
            raise ValueError(f"model {model.name!r} must be calibrated first")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown backend {backend!r} (thread or process)")
        if backend == "process" and (sharded or n_stages is not None):
            raise ValueError("backend='process' does not combine with sharding")
        if replicas is not None and replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replicas is not None and replicas > 1 and backend != "process":
            raise ValueError("replicas > 1 requires backend='process'")
        use_float32 = self.float32 if float32 is None else float32
        # Reserve the name, then build outside the registry lock so
        # concurrent tenant registrations overlap their compilation work
        # (the pool/cache locks already make the shared structures safe).
        rolling: ReplicaPool | None = None
        with self._lock:
            if name in self._reserved:
                raise ValueError(f"model name {name!r} is already registered")
            if name in self._engines:
                if not replace:
                    raise ValueError(f"model name {name!r} is already registered")
                existing = self._engines[name]
                if backend == "process" and isinstance(existing, ReplicaPool):
                    rolling = existing
            else:
                self._reserved.add(name)
        try:
            cost_model = None if arch is None else CostModel.from_model(model, arch)
            plan = self._compile_plan(
                model, config, noise, use_float32, micro_batch, sharded or n_stages
            )
            if rolling is not None:
                rolling.replace(
                    model,
                    config,
                    noise=noise,
                    micro_batch=micro_batch,
                    float32=use_float32,
                    blas_threads=blas_threads,
                    replicas=replicas,
                    plan=plan,
                )
                engine: NetworkEngine = rolling
            elif backend == "process":
                engine = ReplicaPool.launch(
                    model,
                    config,
                    noise=noise,
                    micro_batch=micro_batch,
                    float32=use_float32,
                    replicas=1 if replicas is None else replicas,
                    blas_threads=blas_threads,
                    plan=plan,
                )
            elif sharded or n_stages is not None:
                engine: NetworkEngine = ShardedEngine.build(
                    model,
                    config,
                    noise=noise,
                    micro_batch=micro_batch,
                    pool=self.pool,
                    float32=use_float32,
                    n_stages=n_stages,
                )
            else:
                engine = NetworkEngine.build(
                    model,
                    config,
                    noise=noise,
                    micro_batch=micro_batch,
                    pool=self.pool,
                    float32=use_float32,
                    plan=plan,
                )
        except BaseException:
            with self._lock:
                self._reserved.discard(name)
            raise
        with self._lock:
            self._reserved.discard(name)
            old = self._engines.get(name)
            self._engines[name] = engine
            if plan is not None:
                self._plans[name] = plan
            else:
                self._plans.pop(name, None)
            # A replace rebinds the name's metadata wholesale: stale cost
            # tables or tenant labels must not outlive the model they
            # described.
            self._cost_models.pop(name, None)
            self._tenants.pop(name, None)
            if cost_model is not None:
                self._cost_models[name] = cost_model
            if tenant is not None:
                self._tenants[name] = tenant
            self.generation += 1
        if old is not None and old is not engine:
            closer = getattr(old, "close", None)
            if closer is not None:
                closer()
        return engine

    def _compile_plan(
        self,
        model: QuantizedModel,
        config: PimLayerConfig | None,
        noise: NoiseModel | None,
        float32: bool,
        micro_batch: int | None,
        sharded: object,
    ) -> ModelPlan | None:
        """Compile (or fetch from cache) the model's execution plan.

        Returns ``None`` where plans do not apply: sharded engines slice the
        model across stages (their executors still share the pool's weight
        cache), and pools built around a non-vectorized executor factory
        have nothing to plan.  The cache key is weight fingerprints + frozen
        config, so a re-registration with unchanged weights and config --
        backend swap, rolling replace -- returns the *same* plan object,
        while a changed :class:`PimLayerConfig` or re-quantized weights
        compile a fresh one; an evicted/changed entry simply falls out of
        the LRU, no generation-wide invalidation is needed.
        """
        if sharded:
            return None
        if not issubclass(self.pool.executor_factory, VectorizedLayerExecutor):
            return None
        resolved_config = config if config is not None else PimLayerConfig()
        key = ModelPlan.cache_key(model, resolved_config, noise, float32, micro_batch)
        return self._plan_cache.get_or_compile(
            key,
            lambda: compile_model_plan(
                model,
                resolved_config,
                noise=noise,
                float32=float32,
                micro_batch=micro_batch,
                pool=self.pool,
            ),
        )

    def plan(self, name: str) -> ModelPlan | None:
        """The compiled plan the named engine runs (``None`` for sharded)."""
        with self._lock:
            if name not in self._engines:
                raise KeyError(f"no model registered under {name!r}")
            return self._plans.get(name)

    @property
    def plan_cache(self) -> ModelPlanCache:
        """The fingerprint-keyed LRU cache behind :meth:`plan`."""
        return self._plan_cache

    def register_fleet(
        self,
        name: str,
        variants: list[str] | tuple[str, ...],
        tenant: str | None = None,
    ) -> tuple[str, ...]:
        """Group several registered variants under one logical fleet name.

        Each variant is an already-registered model -- typically the *same*
        calibrated network hosted under different names with different
        ``arch`` cost tables and execution knobs (``micro_batch``,
        ``backend``, ``replicas``), e.g. a small low-power configuration
        next to a large high-throughput one.  Submitting to ``name`` then
        lets the server's :class:`~repro.serve.fleet.FleetRouter` choose a
        variant per batch from the calibrated energy/latency predictions.

        Variants must share one input shape (they serve one logical model);
        for bit-identical outputs across placements they should host the
        same calibrated model, which different ``arch`` values never
        perturb (the architecture only parameterises the cost tables).

        Unregistering a variant removes it from its fleets (an emptied
        fleet disappears with its last variant); unregistering the fleet
        name drops only the grouping, never the variants.  ``tenant``
        labels requests submitted *via the fleet name* for admission
        accounting, defaulting to the fleet name itself.
        """
        ordered = tuple(variants)
        if not ordered:
            raise ValueError("a fleet needs at least one variant")
        if len(set(ordered)) != len(ordered):
            raise ValueError(f"duplicate variant names in fleet {name!r}")
        with self._lock:
            if name in self._engines or name in self._reserved or name in self._fleets:
                raise ValueError(f"model name {name!r} is already registered")
            for variant in ordered:
                if variant in self._fleets:
                    raise ValueError(
                        f"fleet variant {variant!r} is itself a fleet; "
                        "fleets do not nest"
                    )
                if variant not in self._engines:
                    raise ValueError(f"no model registered under {variant!r}")
            shapes = {self._engines[v].model.input_shape for v in ordered}
            if len(shapes) != 1:
                raise ValueError(
                    f"fleet {name!r} variants must share one input shape, "
                    f"got {sorted(shapes)}"
                )
            self._fleets[name] = ordered
            if tenant is not None:
                self._tenants[name] = tenant
            self.generation += 1
        return ordered

    def fleet_variants(self, name: str) -> tuple[str, ...] | None:
        """The fleet's live variant names, or ``None`` for non-fleet names."""
        with self._lock:
            return self._fleets.get(name)

    def is_fleet(self, name: str) -> bool:
        """Whether ``name`` is a registered fleet (not a plain model)."""
        with self._lock:
            return name in self._fleets

    def fleets(self) -> dict[str, tuple[str, ...]]:
        """Registered fleet name -> variant names, in registration order."""
        with self._lock:
            return dict(self._fleets)

    def engine(self, name: str) -> NetworkEngine:
        """The engine hosting ``name``."""
        with self._lock:
            try:
                return self._engines[name]
            except KeyError:
                raise KeyError(f"no model registered under {name!r}") from None

    def model(self, name: str) -> QuantizedModel:
        """The calibrated model registered under ``name``.

        A fleet name resolves to its first live variant's model (variants
        share one input shape, so any of them validates a request).
        """
        with self._lock:
            variants = self._fleets.get(name)
            if variants:
                name = variants[0]
        return self.engine(name).model

    def cost_model(self, name: str) -> CostModel | None:
        """The hosted model's cost tables (``None`` if registered without arch)."""
        with self._lock:
            if name not in self._engines:
                raise KeyError(f"no model registered under {name!r}")
            return self._cost_models.get(name)

    def tenant(self, name: str) -> str:
        """The tenant label of a hosted model or fleet (its own name when unset)."""
        with self._lock:
            if name not in self._engines and name not in self._fleets:
                raise KeyError(f"no model registered under {name!r}")
            return self._tenants.get(name, name)

    def tenants(self) -> dict[str, str]:
        """Hosted model/fleet name -> tenant label, for admission accounting."""
        with self._lock:
            names = list(self._engines) + list(self._fleets)
            return {name: self._tenants.get(name, name) for name in names}

    def unregister(self, name: str) -> bool:
        """Drop a hosted model (its pooled executors stay cached for reuse).

        Idempotent: returns ``True`` when the name was dropped, ``False``
        when nothing was registered under it (e.g. a concurrent unregister
        or double close got there first).  A process-backed engine's workers
        are shut down cleanly: the drop happens under the lock, the
        (potentially slow) drain-and-join outside it, so other tenants are
        not blocked on process teardown -- and the pool's own close drains
        in-flight batches before reclaiming shared memory, so a close racing
        a dispatch cannot strand a block.

        Fleet semantics (see :meth:`register_fleet`): unregistering a fleet
        name drops only the grouping; unregistering a variant prunes it from
        every fleet, and a fleet emptied of variants disappears with them.
        """
        with self._lock:
            if name in self._fleets:
                # Dropping the fleet removes only the logical grouping; the
                # variants stay registered and individually serveable.
                del self._fleets[name]
                self._tenants.pop(name, None)
                self.generation += 1
                return True
            engine = self._engines.pop(name, None)
            if engine is None:
                return False
            # The name's plan binding goes with it; the compiled artifact
            # stays in the LRU cache so a re-registration reuses it.
            self._plans.pop(name, None)
            self._cost_models.pop(name, None)
            self._tenants.pop(name, None)
            for fleet_name, variants in list(self._fleets.items()):
                if name in variants:
                    remaining = tuple(v for v in variants if v != name)
                    if remaining:
                        self._fleets[fleet_name] = remaining
                    else:
                        # A fleet emptied of variants disappears with them.
                        del self._fleets[fleet_name]
                        self._tenants.pop(fleet_name, None)
            self.generation += 1
        closer = getattr(engine, "close", None)
        if closer is not None:
            closer()
        return True

    def close(self) -> None:
        """Unregister every hosted model, draining all process replicas.

        Idempotent, like :meth:`unregister`: names that disappear
        concurrently are simply skipped.
        """
        for name in self.names():
            self.unregister(name)

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def names(self) -> list[str]:
        """Registered model names, in registration order."""
        with self._lock:
            return list(self._engines)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._engines

    def __len__(self) -> int:
        with self._lock:
            return len(self._engines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry(models={self.names()}, pool_executors={len(self.pool)})"
