"""Energy-aware routing across heterogeneous architecture variants.

The paper's headline results are energy/throughput trade-offs across
architecture configurations (Fig. 12/13): the same network mapped onto a
low-power RAELLA-style substrate or a high-throughput ISAAC-style one costs
very different picojoules per sample.  This module turns those calibrated
trade-offs into a *live placement decision*: a :class:`FleetRouter` serves
one logical model across several registered variants (grouped by
:meth:`ModelRegistry.register_fleet
<repro.serve.registry.ModelRegistry.register_fleet>`), picking the variant
per batch from

* each variant's modeled energy for the batch
  (:meth:`CostModel.energy_pj <repro.telemetry.cost.CostModel.energy_pj>`),
* each variant's *calibrated* wall-latency prediction including its current
  backlog (:meth:`TelemetryCollector.predicted_batch_latency_s
  <repro.telemetry.collector.TelemetryCollector.predicted_batch_latency_s>`),
  so a saturated fast variant's prediction rises and work spills to the
  low-power one,
* the batch's deadline slack.

The decision path touches no engine: it is dictionary lookups and float
comparisons over precomputed tables, so routing costs microseconds.  The
policy is pluggable via :class:`RoutingObjective`:

* :class:`MinimizeEnergy` (the default) -- cheapest variant that still meets
  the deadline; least-late variant when none can.
* :class:`MinimizeLatency` -- fastest variant, optionally subject to a
  per-sample energy budget.
* :class:`PinVariant` -- a fixed placement (the always-fastest baseline the
  benchmarks compare against; also what makes routed serving bit-identical
  to single-variant serving for any fixed decision).

Every decision is returned as a frozen :class:`RouteDecision` carrying the
chosen variant, the rejected alternatives with their evidence
(:class:`VariantSnapshot`), and the energy of the fastest variant as the
savings baseline -- the server records these into the telemetry collector's
fleet counters and the per-request ``route`` span.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # imported lazily to keep module import light and acyclic
    from repro.serve.registry import ModelRegistry
    from repro.telemetry import TelemetryCollector

__all__ = [
    "FleetRouter",
    "MinimizeEnergy",
    "MinimizeLatency",
    "PinVariant",
    "RouteDecision",
    "RoutingObjective",
]


@dataclass(frozen=True)
class VariantSnapshot:
    """One variant's evidence at decision time.

    ``predicted_latency_s`` is the calibrated wall-clock estimate for this
    batch *behind the variant's current backlog* (``None`` when the variant
    has no cost tables or no collector is attached);
    ``idle_latency_s`` is the same estimate at zero backlog;
    ``modeled_latency_s`` is the raw (uncalibrated) cost-table latency -- a
    stable hardware property defining which variant counts as "fastest" for
    the savings baseline, unaffected by what wall-clock calibration learns;
    ``energy_pj`` is the modeled energy of this batch's samples on the
    variant's architecture.
    """

    name: str
    n_samples: int
    backlog_samples: int
    predicted_latency_s: float | None
    idle_latency_s: float | None
    energy_pj: float | None
    modeled_latency_s: float | None = None

    @property
    def energy_per_sample_pj(self) -> float | None:
        """Modeled energy per sample on this variant (``None`` without tables)."""
        if self.energy_pj is None or self.n_samples <= 0:
            return None
        return self.energy_pj / self.n_samples

    def meets(self, slack_s: float | None) -> bool:
        """Whether the variant provably fits the deadline slack.

        Mirrors admission-control semantics: no deadline or no prediction
        means the deadline cannot be proven unmeetable, so the variant
        stays eligible.
        """
        if slack_s is None or self.predicted_latency_s is None:
            return True
        return self.predicted_latency_s <= slack_s


@dataclass(frozen=True)
class RouteDecision:
    """The outcome of one routing decision (also the savings evidence).

    ``baseline_variant`` / ``baseline_energy_pj`` describe the
    always-fastest placement (lowest *modeled* latency, a stable hardware
    property) the energy-savings gauges compare against; ``energy_pj`` is
    the chosen variant's modeled energy for the batch.
    """

    fleet: str
    variant: str
    objective: str
    reason: str
    n_samples: int
    deadline_slack_s: float | None
    candidates: tuple[VariantSnapshot, ...]
    baseline_variant: str
    baseline_energy_pj: float | None
    energy_pj: float | None

    @property
    def rejected(self) -> tuple[str, ...]:
        """The variants considered and not chosen, in candidate order."""
        return tuple(c.name for c in self.candidates if c.name != self.variant)

    @property
    def predicted_saved_pj(self) -> float | None:
        """Modeled energy saved vs the always-fastest placement (``None`` unknown)."""
        if self.energy_pj is None or self.baseline_energy_pj is None:
            return None
        return self.baseline_energy_pj - self.energy_pj


class RoutingObjective:
    """Strategy choosing one variant from the candidate snapshots.

    Subclasses implement :meth:`choose`; candidates arrive in fleet
    registration order and are never empty.  Ties must break
    deterministically (the built-ins order by the objective's figure of
    merit, then name) so a fixed fleet state always routes identically.
    """

    name = "objective"

    def choose(
        self, candidates: Sequence[VariantSnapshot], slack_s: float | None
    ) -> tuple[VariantSnapshot, str]:
        """Return ``(chosen, reason)`` for one batch."""
        raise NotImplementedError


def _latency_key(candidate: VariantSnapshot) -> tuple[float, str]:
    latency = candidate.predicted_latency_s
    return (math.inf if latency is None else latency, candidate.name)


def _energy_key(candidate: VariantSnapshot) -> tuple[float, float, str]:
    energy = candidate.energy_pj
    latency = candidate.predicted_latency_s
    return (
        math.inf if energy is None else energy,
        math.inf if latency is None else latency,
        candidate.name,
    )


class MinimizeEnergy(RoutingObjective):
    """Cheapest variant that still meets the deadline (the default).

    Deadline-free batches simply take the lowest modeled energy.  When no
    variant provably meets the slack, the least-late variant is chosen --
    matching the serving layer's best-effort deadline semantics (a late
    admitted request still completes).
    """

    name = "min_energy"

    def choose(
        self, candidates: Sequence[VariantSnapshot], slack_s: float | None
    ) -> tuple[VariantSnapshot, str]:
        feasible = [c for c in candidates if c.meets(slack_s)]
        if not feasible:
            return min(candidates, key=_latency_key), "no variant meets slack"
        chosen = min(feasible, key=_energy_key)
        if slack_s is None:
            return chosen, "min energy (no deadline)"
        return chosen, f"min energy of {len(feasible)} feasible"


class MinimizeLatency(RoutingObjective):
    """Fastest variant, optionally within a per-sample energy budget.

    ``energy_budget_pj_per_sample`` excludes variants whose modeled energy
    per sample exceeds it (variants without cost tables are never excluded:
    the budget cannot be proven violated).  When every variant busts the
    budget, the cheapest one is chosen instead.
    """

    name = "min_latency"

    def __init__(self, energy_budget_pj_per_sample: float | None = None):
        if (
            energy_budget_pj_per_sample is not None
            and energy_budget_pj_per_sample <= 0
        ):
            raise ValueError("energy_budget_pj_per_sample must be positive")
        self.energy_budget_pj_per_sample = energy_budget_pj_per_sample

    def _within_budget(self, candidate: VariantSnapshot) -> bool:
        budget = self.energy_budget_pj_per_sample
        per_sample = candidate.energy_per_sample_pj
        if budget is None or per_sample is None:
            return True
        return per_sample <= budget

    def choose(
        self, candidates: Sequence[VariantSnapshot], slack_s: float | None
    ) -> tuple[VariantSnapshot, str]:
        eligible = [c for c in candidates if self._within_budget(c)]
        if not eligible:
            return min(candidates, key=_energy_key), "no variant within budget"
        return min(eligible, key=_latency_key), "min predicted latency"


class PinVariant(RoutingObjective):
    """Route every batch to one fixed variant (while it exists).

    This is the bit-identity anchor -- a routed server pinned to variant
    ``v`` behaves exactly like serving ``v`` directly -- and the
    always-fastest baseline of ``benchmarks/bench_fleet.py``.  If the
    pinned variant leaves the fleet (unregistered mid-flight), the fastest
    remaining variant takes over instead of failing the batch.
    """

    name = "pin"

    def __init__(self, variant: str):
        self.variant = variant

    def choose(
        self, candidates: Sequence[VariantSnapshot], slack_s: float | None
    ) -> tuple[VariantSnapshot, str]:
        for candidate in candidates:
            if candidate.name == self.variant:
                return candidate, "pinned"
        return min(candidates, key=_latency_key), "pinned variant unavailable"


class FleetRouter:
    """Per-batch placement over a fleet's registered architecture variants.

    Parameters
    ----------
    registry:
        Source of truth for fleet membership and per-variant cost tables.
    telemetry:
        Optional collector providing calibrated wall-latency predictions.
        Without one, predictions fall back to the raw modeled batch latency
        (uncalibrated but still proportional between variants).
    objective:
        The routing policy; :class:`MinimizeEnergy` when omitted.

    :meth:`route` touches no engine: per variant it reads one precomputed
    cost table and one calibration scalar, so a decision is O(variants)
    dictionary lookups and float math -- microseconds, on the batch
    formation path.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        telemetry: TelemetryCollector | None = None,
        objective: RoutingObjective | None = None,
    ):
        self.registry = registry
        self.telemetry = telemetry
        self.objective = objective or MinimizeEnergy()

    def _predicted(self, variant: str, n_samples: int, cost) -> float | None:
        if self.telemetry is not None:
            predicted = self.telemetry.predicted_batch_latency_s(variant, n_samples)
            if predicted is not None:
                return predicted
        if cost is None:
            return None
        return cost.batch_latency_s(n_samples)

    def snapshot(
        self,
        fleet: str,
        n_samples: int,
        backlog: Mapping[str, int] | None = None,
    ) -> tuple[VariantSnapshot, ...]:
        """Evidence for every live variant (raises ``KeyError`` for non-fleets)."""
        variants = self.registry.fleet_variants(fleet)
        if variants is None:
            raise KeyError(f"no fleet registered under {fleet!r}")
        backlog = backlog or {}
        candidates = []
        for variant in variants:
            try:
                cost = self.registry.cost_model(variant)
            except KeyError:  # unregistered concurrently; skip this variant
                continue
            queued = int(backlog.get(variant, 0))
            idle = self._predicted(variant, n_samples, cost)
            loaded = (
                idle
                if queued == 0
                else self._predicted(variant, queued + n_samples, cost)
            )
            candidates.append(
                VariantSnapshot(
                    name=variant,
                    n_samples=n_samples,
                    backlog_samples=queued,
                    predicted_latency_s=loaded,
                    idle_latency_s=idle,
                    energy_pj=None if cost is None else cost.energy_pj(n_samples),
                    modeled_latency_s=(
                        None if cost is None else cost.batch_latency_s(n_samples)
                    ),
                )
            )
        return tuple(candidates)

    def route(
        self,
        fleet: str,
        n_samples: int,
        deadline_s: float | None = None,
        now: float | None = None,
        backlog: Mapping[str, int] | None = None,
    ) -> RouteDecision:
        """Choose a variant for one batch of ``n_samples`` samples.

        ``deadline_s`` is the batch's *absolute* deadline on the
        ``time.monotonic()`` clock (as carried by dispatched batches) and
        ``now`` the decision instant; their difference is the slack handed
        to the objective.  ``backlog`` maps variant name to its
        queued-plus-dispatched sample count (the per-variant feedback that
        makes a saturated fast variant spill work to the low-power one).

        Raises ``KeyError`` when ``fleet`` is unknown and ``LookupError``
        when every variant has been unregistered.
        """
        candidates = self.snapshot(fleet, n_samples, backlog)
        if not candidates:
            raise LookupError(f"fleet {fleet!r} has no live variants")
        slack_s = None
        if deadline_s is not None:
            slack_s = deadline_s - (time.monotonic() if now is None else now)
        objective = self.objective
        chosen, reason = objective.choose(candidates, slack_s)
        # The savings baseline is the *modeled*-fastest variant: a stable
        # hardware property, unlike calibrated wall latency, which can tie
        # across variants whose host-side execution speed is identical.
        baseline = min(
            candidates,
            key=lambda c: (
                math.inf if c.modeled_latency_s is None else c.modeled_latency_s,
                math.inf if c.idle_latency_s is None else c.idle_latency_s,
                c.name,
            ),
        )
        return RouteDecision(
            fleet=fleet,
            variant=chosen.name,
            objective=objective.name,
            reason=reason,
            n_samples=n_samples,
            deadline_slack_s=slack_s,
            candidates=candidates,
            baseline_variant=baseline.name,
            baseline_energy_pj=baseline.energy_pj,
            energy_pj=chosen.energy_pj,
        )
