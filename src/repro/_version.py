"""Version of the RAELLA reproduction package."""

__version__ = "1.0.0"
