"""The ISAAC baseline (Shafiee et al., ISCA 2016), scaled to 8-bit DNNs.

ISAAC stores unsigned weight codes in 1T1R cells across 128x128 crossbars,
slices weights into four 2-bit slices and inputs into eight 1-bit slices, and
converts every column sum with an 8-bit ADC.  It requires no retraining and
loses no fidelity, but pays a high ADC cost -- it is the "low-accuracy-loss"
reference RAELLA's Fig. 12 normalises against.

This module bundles the architecture spec (for the cost model) with the
matching functional executor configuration (for accuracy / noise experiments).
The functional configuration widens the ADC clip range just enough to make the
noiseless path exact, standing in for ISAAC's data-encoding trick that flips
weights to keep column sums in range; the cost model still charges 8-bit
conversions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.arithmetic.slicing import ISAAC_WEIGHT_SLICING
from repro.core.center_offset import WeightEncoding
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig
from repro.hw.architecture import ISAAC_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.zoo import ModelShapes

__all__ = ["IsaacBaseline"]


@dataclass
class IsaacBaseline:
    """ISAAC: architecture spec + functional executor configuration."""

    arch: ArchitectureSpec = field(default_factory=lambda: ISAAC_ARCH)

    def pim_config(
        self, collect_column_sums: bool = False, lossless_adc: bool = True
    ) -> PimLayerConfig:
        """Functional executor configuration for ISAAC.

        With ``lossless_adc`` (default) the clip range covers the worst-case
        column sum of the configured crossbar, mirroring ISAAC's guarantee
        that conversions never overflow; disable it to model a hard 8-bit
        clip.
        """
        if lossless_adc:
            max_weight_slice = (1 << ISAAC_WEIGHT_SLICING.max_slice_bits) - 1
            worst_case = self.arch.crossbar_rows * max_weight_slice
            adc_bits = max(
                int(math.ceil(math.log2(worst_case + 1))), self.arch.adc_bits
            )
        else:
            adc_bits = self.arch.adc_bits
        return PimLayerConfig(
            crossbar_rows=self.arch.crossbar_rows,
            crossbar_cols=self.arch.crossbar_cols,
            adc_bits=adc_bits,
            adc_signed=False,
            weight_encoding=WeightEncoding.UNSIGNED,
            weight_slicing=ISAAC_WEIGHT_SLICING,
            speculation=SpeculationMode.BIT_SERIAL,
            collect_column_sums=collect_column_sums,
        )

    def energy(self, shapes: ModelShapes, batch_size: int = 1) -> EnergyBreakdown:
        """Energy breakdown for a full-scale DNN."""
        return EnergyModel(self.arch).model_energy(shapes, batch_size=batch_size)

    def throughput(self, shapes: ModelShapes) -> ThroughputReport:
        """Throughput report for a full-scale DNN."""
        return ThroughputModel(self.arch).evaluate(shapes)
