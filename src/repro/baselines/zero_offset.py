"""The Zero+Offset (differential encoding) ablation baseline.

Zero+Offset keeps RAELLA's hardware but replaces Center+Offset with
common-practice differential encoding: the per-filter center is pinned at the
code of real zero (the weight quantization zero point), so positive offsets
represent positive real weights and negative offsets represent negative real
weights.  Filters whose weights skew negative then produce mostly-negative
slices, large negative column sums and frequent ADC saturation -- the accuracy
collapse shown in Table 4.
"""

from __future__ import annotations

from repro.core.center_offset import WeightEncoding
from repro.core.compiler import RaellaCompilerConfig
from repro.core.executor import PimLayerConfig

__all__ = ["zero_offset_config", "zero_offset_compiler_config"]


def zero_offset_config(base: PimLayerConfig | None = None) -> PimLayerConfig:
    """RAELLA's executor configuration with Zero+Offset encoding."""
    base = base or PimLayerConfig()
    return base.with_changes(weight_encoding=WeightEncoding.ZERO_OFFSET)


def zero_offset_compiler_config(
    base: RaellaCompilerConfig | None = None,
) -> RaellaCompilerConfig:
    """Compiler configuration matching RAELLA but with Zero+Offset encoding.

    Table 4 uses the *same slicings* for Center+Offset and Zero+Offset so that
    efficiency and throughput match and only the encoding differs; adaptive
    slicing is therefore disabled here and callers should copy the slicings
    chosen by the Center+Offset compilation (see
    :func:`repro.experiments.table4.run_table4`).
    """
    from dataclasses import replace

    base = base or RaellaCompilerConfig()
    return replace(
        base,
        pim=zero_offset_config(base.pim),
        adaptive_slicing_enabled=False,
    )
