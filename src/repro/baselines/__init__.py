"""Baseline accelerators the paper compares against.

* :mod:`repro.baselines.isaac`       -- the 8-bit ISAAC baseline (no retraining,
  high ADC cost): architecture spec plus a functional executor configuration.
* :mod:`repro.baselines.forms`       -- FORMS-8, Weight-Count-Limited: ISAAC-like
  substrate with fine-grained polarised pruning and retraining.
* :mod:`repro.baselines.timely`      -- TIMELY, Sum-Fidelity-Limited: huge analog
  accumulation, LSB-dropping conversion, retraining.
* :mod:`repro.baselines.zero_offset` -- the Zero+Offset (differential encoding)
  ablation of Center+Offset used in Table 4.
"""

from repro.baselines.forms import FormsBaseline
from repro.baselines.isaac import IsaacBaseline
from repro.baselines.timely import TimelyBaseline
from repro.baselines.zero_offset import zero_offset_compiler_config, zero_offset_config

__all__ = [
    "IsaacBaseline",
    "FormsBaseline",
    "TimelyBaseline",
    "zero_offset_config",
    "zero_offset_compiler_config",
]
