"""The FORMS-8 baseline (Yuan et al., ISCA 2021).

FORMS is Weight-Count-Limited: it prunes DNN weights with fine-grained
polarisation to reduce MACs/DNN (2.0x on ResNet18 at the highest reported
pruning ratio) and retrains to recover the resulting accuracy loss.  The
substrate is ISAAC-like (128x128 crossbars, 8-bit ADC); the paper's
evaluation models it with the same components as ISAAC and RAELLA and reports
the retrained accuracy from the original publication.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hw.architecture import FORMS_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.zoo import ModelShapes

__all__ = ["FormsBaseline"]

#: Accuracy drops after pruning + retraining reported by FORMS (Table 4).
FORMS_REPORTED_ACCURACY_DROP = {"resnet18": 0.62, "resnet50": 0.70}


@dataclass
class FormsBaseline:
    """FORMS-8: pruned ISAAC-like architecture requiring retraining."""

    arch: ArchitectureSpec = field(default_factory=lambda: FORMS_ARCH)

    @property
    def pruning_factor(self) -> float:
        """MACs/DNN reduction from pruning (2.0x at the highest ratio)."""
        return self.arch.mac_reduction_factor

    @property
    def requires_retraining(self) -> bool:
        """FORMS retrains to recover pruning-induced accuracy loss."""
        return True

    def reported_accuracy_drop(self, model_name: str) -> float | None:
        """Accuracy drop (%) reported by the original paper, if available."""
        return FORMS_REPORTED_ACCURACY_DROP.get(model_name)

    def energy(self, shapes: ModelShapes, batch_size: int = 1) -> EnergyBreakdown:
        """Energy breakdown for a full-scale DNN (after pruning)."""
        return EnergyModel(self.arch).model_energy(shapes, batch_size=batch_size)

    def throughput(self, shapes: ModelShapes) -> ThroughputReport:
        """Throughput report for a full-scale DNN (after pruning)."""
        return ThroughputModel(self.arch).evaluate(shapes)
