"""The TIMELY baseline (Li et al., ISCA 2020).

TIMELY is Sum-Fidelity-Limited: it pushes data movement into the analog
domain with analog local buffers, time-domain interfaces (TDCs instead of SAR
ADCs) and very large analog accumulation, reducing Converts/MAC by up to 512x
over ISAAC.  The cost is fidelity: 16 bits are dropped from each column sum,
so DNNs must be requantized and retrained.  The paper compares against
TIMELY's published numbers and rebuilds RAELLA with TIMELY's 65 nm analog
components for a like-for-like comparison (Fig. 13).

Functionally, TIMELY-style conversion is modelled by the LSB-truncating ADC
(:class:`repro.analog.adc.TruncatingADC`); the cost model uses the 65 nm
component library with cheap time-domain conversions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.adc import TruncatingADC
from repro.hw.architecture import TIMELY_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.zoo import ModelShapes

__all__ = ["TimelyBaseline"]

#: Accuracy drops after requantization + retraining reported by TIMELY.
TIMELY_REPORTED_ACCURACY_DROP = {"resnet18": 0.1, "resnet50": 0.1}


@dataclass
class TimelyBaseline:
    """TIMELY: Sum-Fidelity-Limited architecture requiring retraining."""

    arch: ArchitectureSpec = field(default_factory=lambda: TIMELY_ARCH)

    @property
    def requires_retraining(self) -> bool:
        """TIMELY requantizes and retrains DNNs to tolerate fidelity loss."""
        return True

    def truncating_adc(self, sum_bits: int = 24) -> TruncatingADC:
        """The LSB-dropping conversion TIMELY's fidelity loss corresponds to."""
        return TruncatingADC(bits=self.arch.adc_bits, signed=False)

    def lsbs_dropped(self, sum_bits: int = 24) -> int:
        """Bits of column-sum fidelity lost per conversion."""
        return self.truncating_adc().lsbs_dropped(sum_bits)

    def reported_accuracy_drop(self, model_name: str) -> float | None:
        """Accuracy drop (%) reported by the original paper, if available."""
        return TIMELY_REPORTED_ACCURACY_DROP.get(model_name)

    def energy(self, shapes: ModelShapes, batch_size: int = 1) -> EnergyBreakdown:
        """Energy breakdown for a full-scale DNN."""
        return EnergyModel(self.arch).model_energy(shapes, batch_size=batch_size)

    def throughput(self, shapes: ModelShapes) -> ThroughputReport:
        """Throughput report for a full-scale DNN."""
        return ThroughputModel(self.arch).evaluate(shapes)
