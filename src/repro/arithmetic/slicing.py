"""Slicing descriptions: how an operand's bits are partitioned into slices.

A :class:`Slicing` is an ordered tuple of slice widths, most-significant slice
first.  RAELLA's Adaptive Weight Slicing chooses one slicing per DNN layer out
of all compositions of 8 bits into parts of at most 4 bits (108 options,
Section 4.2.2); its Dynamic Input Slicing switches between an aggressive
3-slice speculative slicing and a conservative 8x1-bit recovery slicing at
runtime (Section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.arithmetic.bits import (
    reassemble_slices,
    signed_slices,
    slice_shifts,
    unsigned_slices,
)

__all__ = [
    "Slicing",
    "enumerate_slicings",
    "ISAAC_WEIGHT_SLICING",
    "ISAAC_INPUT_SLICING",
    "RAELLA_DEFAULT_WEIGHT_SLICING",
    "RAELLA_SPECULATIVE_INPUT_SLICING",
    "RAELLA_RECOVERY_INPUT_SLICING",
]


@dataclass(frozen=True)
class Slicing:
    """An ordered partition of an operand's bits into slices.

    Parameters
    ----------
    widths:
        Bits per slice, most-significant slice first.  ``Slicing((4, 2, 2))``
        describes an 8-bit operand split into a 4-bit high slice and two 2-bit
        low slices -- the slicing most RAELLA layers use for weights (Fig. 7).
    """

    widths: tuple[int, ...]

    def __init__(self, widths: Sequence[int]):
        widths = tuple(int(w) for w in widths)
        if not widths:
            raise ValueError("a Slicing needs at least one slice")
        if any(w <= 0 for w in widths):
            raise ValueError(f"slice widths must be positive, got {widths}")
        object.__setattr__(self, "widths", widths)

    @property
    def n_slices(self) -> int:
        """Number of slices."""
        return len(self.widths)

    @property
    def total_bits(self) -> int:
        """Total operand width covered by the slicing."""
        return sum(self.widths)

    @property
    def shifts(self) -> tuple[int, ...]:
        """LSB bit position of each slice (most-significant slice first)."""
        return slice_shifts(self.widths)

    @property
    def max_slice_bits(self) -> int:
        """Width of the widest slice."""
        return max(self.widths)

    def slice_unsigned(self, values: np.ndarray) -> list[np.ndarray]:
        """Slice unsigned integer values according to this slicing."""
        return unsigned_slices(values, self.widths)

    def slice_signed(self, values: np.ndarray) -> list[np.ndarray]:
        """Slice signed integer values (sign-magnitude per slice)."""
        return signed_slices(values, self.widths)

    def reassemble(self, slices: Sequence[np.ndarray]) -> np.ndarray:
        """Reassemble sliced values back into full-width integers."""
        return reassemble_slices(slices, self.widths)

    def refine_to_bit_serial(self) -> "Slicing":
        """Return the 1-bit-per-slice slicing covering the same width."""
        return Slicing((1,) * self.total_bits)

    def split_slice_to_bits(self, index: int) -> "Slicing":
        """Return a new slicing with slice ``index`` expanded into 1-bit slices.

        This is the re-slicing RAELLA's recovery step performs when a
        speculative input slice fails (Section 4.3).
        """
        if not 0 <= index < self.n_slices:
            raise IndexError(f"slice index {index} out of range")
        widths = (
            self.widths[:index]
            + (1,) * self.widths[index]
            + self.widths[index + 1 :]
        )
        return Slicing(widths)

    def __iter__(self) -> Iterator[int]:
        return iter(self.widths)

    def __len__(self) -> int:
        return self.n_slices

    def __str__(self) -> str:
        return "-".join(f"{w}b" for w in self.widths)


@lru_cache(maxsize=None)
def enumerate_slicings(
    total_bits: int = 8, max_slice_bits: int = 4
) -> tuple[Slicing, ...]:
    """Enumerate every slicing of ``total_bits`` with slices of at most ``max_slice_bits``.

    For 8-bit operands and 4-bit devices this yields the 108 slicings the paper
    iterates over when choosing a layer's weight slicing (Section 4.2.2).
    Slicings are returned sorted by (number of slices, widths) so that the
    densest (fewest-slice) options come first.
    """
    if total_bits <= 0:
        raise ValueError("total_bits must be positive")
    if max_slice_bits <= 0:
        raise ValueError("max_slice_bits must be positive")

    def compositions(remaining: int) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        for first in range(1, min(max_slice_bits, remaining) + 1):
            for rest in compositions(remaining - first):
                yield (first,) + rest

    slicings = [Slicing(widths) for widths in compositions(total_bits)]
    slicings.sort(key=lambda s: (s.n_slices, s.widths))
    return tuple(slicings)


#: ISAAC stores weights as four 2-bit slices across columns (Section 7).
ISAAC_WEIGHT_SLICING = Slicing((2, 2, 2, 2))

#: ISAAC feeds inputs bit-serially: eight 1-bit input slices.
ISAAC_INPUT_SLICING = Slicing((1,) * 8)

#: Most RAELLA layers settle on a 4b-2b-2b weight slicing (Fig. 7).
RAELLA_DEFAULT_WEIGHT_SLICING = Slicing((4, 2, 2))

#: RAELLA speculates with three input slices of 4, 2 and 2 bits (Section 4.3).
RAELLA_SPECULATIVE_INPUT_SLICING = Slicing((4, 2, 2))

#: RAELLA recovers with the most conservative eight 1-bit input slices.
RAELLA_RECOVERY_INPUT_SLICING = Slicing((1,) * 8)
