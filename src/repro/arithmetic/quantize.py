"""8-bit per-channel quantization and 16-bit partial-sum requantization.

RAELLA targets off-the-shelf 8-bit per-channel quantized DNNs with 16-bit
partial sums (Section 2.1).  This module implements that quantization scheme
for the NumPy DNN substrate:

* weights are quantized per output channel to unsigned 8-bit codes with a
  zero point (the crossbar stores unsigned codes; RAELLA's Center+Offset
  re-encodes them as ``center +- offset``),
* activations are quantized per tensor, unsigned for post-ReLU activations and
  signed for layers such as BERT's feed-forward blocks,
* integer partial sums are accumulated at 16-bit-equivalent precision and
  requantized back to 8-bit outputs with a fused scale/bias and optional fused
  ReLU, following the per-channel linear quantization of [Zhao et al., ICLR'20]
  referenced by the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QuantizationParams",
    "quantize_tensor",
    "quantize_per_channel",
    "dequantize",
    "requantize_psums",
    "integer_dot_product_terms",
]

#: Number of bits used for operands throughout the library.
OPERAND_BITS = 8

#: Number of bits partial sums are accumulated to before requantization.
PSUM_BITS = 16


@dataclass(frozen=True)
class QuantizationParams:
    """Affine quantization parameters ``real = scale * (code - zero_point)``.

    ``scale`` and ``zero_point`` are scalars for per-tensor quantization or
    1-D arrays (one entry per output channel) for per-channel quantization.
    ``signed`` selects the code range: ``[-128, 127]`` if true, ``[0, 255]``
    otherwise.
    """

    scale: np.ndarray
    zero_point: np.ndarray
    signed: bool = False

    def __post_init__(self) -> None:
        scale = np.atleast_1d(np.asarray(self.scale, dtype=np.float64))
        zero_point = np.atleast_1d(np.asarray(self.zero_point, dtype=np.int64))
        if np.any(scale <= 0):
            raise ValueError("quantization scales must be positive")
        if scale.shape != zero_point.shape:
            raise ValueError("scale and zero_point must have the same shape")
        lo, hi = self.code_range_static(self.signed)
        if np.any(zero_point < lo) or np.any(zero_point > hi):
            raise ValueError("zero_point outside representable code range")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(self, "zero_point", zero_point)

    @staticmethod
    def code_range_static(signed: bool) -> tuple[int, int]:
        """Return the (low, high) inclusive code range for 8-bit codes."""
        if signed:
            return -(1 << (OPERAND_BITS - 1)), (1 << (OPERAND_BITS - 1)) - 1
        return 0, (1 << OPERAND_BITS) - 1

    @property
    def code_range(self) -> tuple[int, int]:
        """Inclusive (low, high) code range."""
        return self.code_range_static(self.signed)

    @property
    def per_channel(self) -> bool:
        """Whether parameters are per-channel (more than one scale)."""
        return self.scale.size > 1


def _broadcast_params(
    params: QuantizationParams, values: np.ndarray, channel_axis: int
) -> tuple[np.ndarray, np.ndarray]:
    """Broadcast per-channel scale/zero_point along ``channel_axis``."""
    if not params.per_channel:
        return params.scale.reshape(()), params.zero_point.reshape(())
    if values.shape[channel_axis] != params.scale.size:
        raise ValueError(
            f"channel axis {channel_axis} has {values.shape[channel_axis]} "
            f"channels but params have {params.scale.size}"
        )
    shape = [1] * values.ndim
    shape[channel_axis] = params.scale.size
    return params.scale.reshape(shape), params.zero_point.reshape(shape)


def quantize_tensor(
    values: np.ndarray,
    params: QuantizationParams,
    channel_axis: int = 0,
) -> np.ndarray:
    """Quantize real values to integer codes with the given parameters."""
    values = np.asarray(values, dtype=np.float64)
    scale, zero_point = _broadcast_params(params, values, channel_axis)
    lo, hi = params.code_range
    codes = np.round(values / scale) + zero_point
    return np.clip(codes, lo, hi).astype(np.int64)


def dequantize(
    codes: np.ndarray,
    params: QuantizationParams,
    channel_axis: int = 0,
) -> np.ndarray:
    """Convert integer codes back to real values."""
    codes = np.asarray(codes, dtype=np.float64)
    scale, zero_point = _broadcast_params(params, codes, channel_axis)
    return (codes - zero_point) * scale


def quantize_per_channel(
    weights: np.ndarray, channel_axis: int = 0, signed: bool = False
) -> tuple[np.ndarray, QuantizationParams]:
    """Quantize weights per output channel to 8-bit codes.

    The quantization is asymmetric (a zero point per channel) so that the full
    unsigned 8-bit code range maps onto each channel's weight range, which is
    how crossbar-resident weights are stored before Center+Offset re-encoding.

    Returns the integer codes and the :class:`QuantizationParams`.
    """
    weights = np.asarray(weights, dtype=np.float64)
    n_channels = weights.shape[channel_axis]
    moved = np.moveaxis(weights, channel_axis, 0).reshape(n_channels, -1)
    w_min = np.minimum(moved.min(axis=1), 0.0)
    w_max = np.maximum(moved.max(axis=1), 0.0)
    lo, hi = QuantizationParams.code_range_static(signed)
    span = np.maximum(w_max - w_min, 1e-12)
    scale = span / (hi - lo)
    zero_point = np.clip(np.round(lo - w_min / scale), lo, hi).astype(np.int64)
    params = QuantizationParams(scale=scale, zero_point=zero_point, signed=signed)
    codes = quantize_tensor(weights, params, channel_axis=channel_axis)
    return codes, params


def integer_dot_product_terms(
    input_codes: np.ndarray,
    weight_codes: np.ndarray,
    input_zero_point: int,
    weight_zero_points: np.ndarray,
) -> dict[str, np.ndarray]:
    """Decompose an affine-quantized dot product into integer terms.

    For ``real = s_i (i - z_i)`` and ``real_w = s_w (w - z_w)`` the dot product
    of a filter with an input vector expands into four integer terms.  The
    crossbar computes ``sum_r i_r * w_r``; the remaining terms are handled
    digitally (they only involve sums of inputs and constants).  This helper
    returns the terms separately so executors can account for them.
    """
    input_codes = np.asarray(input_codes, dtype=np.int64)
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    weight_zero_points = np.asarray(weight_zero_points, dtype=np.int64)
    raw = input_codes @ weight_codes
    input_sum = input_codes.sum(axis=-1, keepdims=True)
    weight_sum = weight_codes.sum(axis=0)
    n = weight_codes.shape[0]
    return {
        "raw": raw,
        "input_sum_term": input_sum * weight_zero_points,
        "weight_sum_term": input_zero_point * weight_sum,
        "constant_term": np.asarray(input_zero_point * weight_zero_points * n),
    }


def requantize_psums(
    psums: np.ndarray,
    output_scale: np.ndarray,
    output_bias: np.ndarray | None = None,
    fuse_relu: bool = True,
    signed_output: bool = False,
    channel_axis: int = -1,
) -> np.ndarray:
    """Requantize 16-bit integer partial sums to 8-bit output codes.

    ``output_scale`` and ``output_bias`` play the role of the FP16 per-channel
    scale and bias the paper allocates 32 bits per output channel for
    (Section 5.3).  ReLU is optionally fused into the requantization, which is
    the behaviour the error-budget calculation in Section 4.2.1 relies on.
    """
    psums = np.asarray(psums, dtype=np.float64)
    output_scale = np.atleast_1d(np.asarray(output_scale, dtype=np.float64))
    if np.any(output_scale <= 0):
        raise ValueError("output scales must be positive")
    if output_bias is None:
        output_bias = np.zeros_like(output_scale)
    output_bias = np.atleast_1d(np.asarray(output_bias, dtype=np.float64))
    shape = [1] * psums.ndim
    axis = channel_axis % psums.ndim
    if output_scale.size not in (1, psums.shape[axis]):
        raise ValueError(
            f"output_scale has {output_scale.size} entries but channel axis "
            f"has {psums.shape[axis]}"
        )
    shape[axis] = output_scale.size
    scaled = psums * output_scale.reshape(shape) + output_bias.reshape(shape)
    if fuse_relu:
        scaled = np.maximum(scaled, 0.0)
    lo, hi = QuantizationParams.code_range_static(signed_output)
    return np.clip(np.round(scaled), lo, hi).astype(np.int64)
