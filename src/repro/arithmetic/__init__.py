"""Bit-slicing and quantization substrate.

This subpackage implements the arithmetic building blocks the rest of the
library relies on:

* :mod:`repro.arithmetic.bits` -- bit manipulation: slicing unsigned and signed
  integers into groups of bits, the signed crop ``D(h, l, x)`` from the paper's
  Eq. (2), bit-density statistics, and reassembly of sliced values.
* :mod:`repro.arithmetic.slicing` -- the :class:`Slicing` value type describing
  how an 8-bit operand is partitioned into slices, enumeration of all legal
  slicings, and the named slicings used by RAELLA and the baselines.
* :mod:`repro.arithmetic.quantize` -- 8-bit per-channel affine quantization,
  16-bit partial-sum accumulation and requantization to 8-bit outputs.
"""

from repro.arithmetic.bits import (
    bit_density,
    reassemble_slices,
    signed_crop,
    signed_slices,
    unsigned_slices,
)
from repro.arithmetic.quantize import (
    QuantizationParams,
    dequantize,
    quantize_per_channel,
    quantize_tensor,
    requantize_psums,
)
from repro.arithmetic.slicing import (
    ISAAC_INPUT_SLICING,
    ISAAC_WEIGHT_SLICING,
    RAELLA_RECOVERY_INPUT_SLICING,
    RAELLA_SPECULATIVE_INPUT_SLICING,
    Slicing,
    enumerate_slicings,
)

__all__ = [
    "bit_density",
    "reassemble_slices",
    "signed_crop",
    "signed_slices",
    "unsigned_slices",
    "QuantizationParams",
    "dequantize",
    "quantize_per_channel",
    "quantize_tensor",
    "requantize_psums",
    "Slicing",
    "enumerate_slicings",
    "ISAAC_INPUT_SLICING",
    "ISAAC_WEIGHT_SLICING",
    "RAELLA_SPECULATIVE_INPUT_SLICING",
    "RAELLA_RECOVERY_INPUT_SLICING",
]
