"""Bit-level helpers: slicing operands into groups of bits.

PIM architectures cannot process full 8-bit operands in a single analog step.
Instead they *slice* operands into groups of bits (Section 2.3 of the paper):
weight slices are laid out spatially across crossbar columns and input slices
are fed temporally over multiple cycles.  This module provides the slicing and
reassembly primitives, including the signed crop ``D(h, l, x)`` used by the
Center+Offset optimisation (Eq. 2), and the bit-density statistics behind
Fig. 8 of the paper.

All functions are vectorised over NumPy arrays and operate on integer dtypes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "unsigned_slices",
    "signed_slices",
    "signed_crop",
    "reassemble_slices",
    "bit_density",
    "min_bits_unsigned",
    "min_bits_signed",
]


def _as_int_array(values: np.ndarray | Sequence[int]) -> np.ndarray:
    """Return ``values`` as an int64 NumPy array (copying only if needed)."""
    arr = np.asarray(values)
    if arr.dtype.kind not in ("i", "u"):
        if arr.dtype.kind == "f" and not np.allclose(arr, np.round(arr)):
            raise TypeError("bit operations require integer-valued inputs")
        arr = np.round(arr).astype(np.int64)
    return arr.astype(np.int64, copy=False)


def _validate_widths(
    widths: Sequence[int], total_bits: int | None = None
) -> tuple[int, ...]:
    """Validate a slice-width specification (most-significant slice first)."""
    widths = tuple(int(w) for w in widths)
    if not widths:
        raise ValueError("at least one slice width is required")
    if any(w <= 0 for w in widths):
        raise ValueError(f"slice widths must be positive, got {widths}")
    if total_bits is not None and sum(widths) != total_bits:
        raise ValueError(
            f"slice widths {widths} sum to {sum(widths)}, expected {total_bits}"
        )
    return widths


def slice_shifts(widths: Sequence[int]) -> tuple[int, ...]:
    """Return the LSB bit position of each slice, most-significant slice first.

    For widths ``(4, 2, 2)`` the slices cover bits ``[7..4], [3..2], [1..0]``
    so the shifts are ``(4, 2, 0)``.
    """
    widths = _validate_widths(widths)
    total = sum(widths)
    shifts = []
    consumed = 0
    for width in widths:
        consumed += width
        shifts.append(total - consumed)
    return tuple(shifts)


def unsigned_slices(
    values: np.ndarray | Sequence[int], widths: Sequence[int]
) -> list[np.ndarray]:
    """Slice unsigned integers into bit groups.

    Parameters
    ----------
    values:
        Array of non-negative integers representable in ``sum(widths)`` bits.
    widths:
        Bits per slice, most-significant slice first (e.g. ``(4, 2, 2)``).

    Returns
    -------
    list of arrays, one per slice (most-significant first).  Slice ``i`` holds
    the bits ``[shift_i + width_i - 1 .. shift_i]`` of each value, shifted so
    that its own LSB is bit 0.
    """
    arr = _as_int_array(values)
    widths = _validate_widths(widths)
    total = sum(widths)
    if np.any(arr < 0):
        raise ValueError("unsigned_slices requires non-negative values")
    if np.any(arr >= (1 << total)):
        raise ValueError(f"values exceed {total}-bit unsigned range")
    out = []
    for width, shift in zip(widths, slice_shifts(widths)):
        mask = (1 << width) - 1
        out.append(((arr >> shift) & mask).astype(np.int64))
    return out


def signed_crop(values: np.ndarray | Sequence[int], high: int, low: int) -> np.ndarray:
    """The paper's slicing function ``D(h, l, x)``.

    Crops signed integers to the bits between indices ``high`` and ``low``
    (inclusive, ``high >= low``), shifted so bit ``low`` becomes the LSB, and
    preserves the sign of the original value: ``D(h, l, x) = sign(x) *
    ((|x| >> l) & mask)`` where ``mask`` has ``h - l + 1`` ones.
    """
    if high < low:
        raise ValueError(f"high ({high}) must be >= low ({low})")
    if low < 0:
        raise ValueError(f"low ({low}) must be non-negative")
    arr = _as_int_array(values)
    width = high - low + 1
    mask = (1 << width) - 1
    magnitude = (np.abs(arr) >> low) & mask
    return (np.sign(arr) * magnitude).astype(np.int64)


def signed_slices(
    values: np.ndarray | Sequence[int], widths: Sequence[int]
) -> list[np.ndarray]:
    """Slice signed integers into sign-magnitude bit groups.

    Each slice carries the sign of the original value, which is how RAELLA's
    Center+Offset offsets (``w - phi``) are decomposed before the positive and
    negative parts are programmed into the two devices of a 2T2R cell.
    """
    arr = _as_int_array(values)
    widths = _validate_widths(widths)
    total = sum(widths)
    if np.any(np.abs(arr) >= (1 << total)):
        raise ValueError(f"value magnitudes exceed {total}-bit range")
    out = []
    shifts = slice_shifts(widths)
    for width, shift in zip(widths, shifts):
        out.append(signed_crop(arr, shift + width - 1, shift))
    return out


def reassemble_slices(
    slices: Sequence[np.ndarray], widths: Sequence[int]
) -> np.ndarray:
    """Reassemble sliced values: ``sum_i slice_i << shift_i``.

    Inverse of :func:`unsigned_slices` and :func:`signed_slices` (for values
    whose slices all share the original sign).
    """
    widths = _validate_widths(widths)
    if len(slices) != len(widths):
        raise ValueError(f"got {len(slices)} slices for {len(widths)} widths")
    shifts = slice_shifts(widths)
    total = np.zeros_like(_as_int_array(slices[0]))
    for part, shift in zip(slices, shifts):
        total = total + (_as_int_array(part) << shift)
    return total


def bit_density(values: np.ndarray | Sequence[int], n_bits: int = 8) -> np.ndarray:
    """Per-bit density: probability that each bit position is 1.

    Used to reproduce Fig. 8 of the paper.  Bit position 0 is the LSB.  Signed
    inputs are measured on their magnitudes (sign-magnitude view), matching the
    way offsets are programmed into crossbars.
    """
    if n_bits <= 0:
        raise ValueError("n_bits must be positive")
    arr = np.abs(_as_int_array(values)).ravel()
    if arr.size == 0:
        raise ValueError("bit_density requires at least one value")
    densities = np.empty(n_bits, dtype=np.float64)
    for bit in range(n_bits):
        densities[bit] = np.mean((arr >> bit) & 1)
    return densities


def min_bits_unsigned(values: np.ndarray | Sequence[int]) -> int:
    """Minimum number of bits needed to represent ``values`` unsigned."""
    arr = _as_int_array(values)
    if np.any(arr < 0):
        raise ValueError("values must be non-negative")
    top = int(arr.max(initial=0))
    return max(int(top).bit_length(), 1)


def min_bits_signed(values: np.ndarray | Sequence[int]) -> int:
    """Minimum number of bits for a signed two's-complement representation."""
    arr = _as_int_array(values)
    if arr.size == 0:
        return 1
    lo = int(arr.min())
    hi = int(arr.max())
    bits = 1
    while not (-(1 << (bits - 1)) <= lo and hi < (1 << (bits - 1))):
        bits += 1
    return bits
