"""Vectorized batched execution runtime.

The per-phase :class:`~repro.core.executor.PimLayerExecutor` is exact but
iterates the 11-cycle Dynamic Input Slicing schedule in Python, one slice
extraction and one matmul per phase.  This package rebuilds that hot path as a
batched engine while staying bit-identical to the per-phase reference:

* :mod:`repro.runtime.phases` precomputes every input bit-plane slice of a
  batch in one shot -- a single ``(n_phases, M, rows)`` tensor per crossbar
  chunk instead of ``n_phases`` sequential ``extract_input_slice`` calls.
* :mod:`repro.runtime.vectorized` fuses the per-phase matmuls of a chunk into
  one BLAS GEMM (:class:`VectorizedLayerExecutor`).  Slice and weight values
  are small integers, so the float64 GEMM is exact and the results are
  bit-identical to the integer per-phase path.  An opt-in float32 fast path
  (used by :mod:`repro.serve`) applies wherever
  :func:`float32_gemm_is_exact` proves the accumulation fits float32's
  24-bit mantissa.
* :mod:`repro.runtime.plan` compiles the whole derivation -- slicing extents,
  phase-extraction index tables, GEMM operand views with proven dtypes,
  speculation gather tables, noise-draw layout, micro-batch split points --
  into a pickle-able :class:`ModelPlan` built once per ``(model, config,
  noise, float32)`` and then *executed*: noiseless planned executors collapse
  the per-phase ADC/speculation loop into whole-tensor operations, and
  replica workers boot from the shipped plan without re-encoding weights.
* :mod:`repro.runtime.cache` shares encoded weights across executor instances
  (center optimisation dominates executor construction) and pools executors
  per layer so repeated experiments do not re-program crossbars.
* :mod:`repro.runtime.engine` runs a calibrated
  :class:`~repro.nn.model.QuantizedModel` end-to-end with configurable
  micro-batching (:class:`NetworkEngine`).
* :mod:`repro.runtime.procpool` hosts an engine in worker *processes*,
  sidestepping the GIL for the digital stages; request/response arrays
  travel through shared-memory blocks with a framed header instead of the
  pickler, and results stay bit-identical to the in-process engine.
  :class:`ProcessEngine` fronts a single :class:`EngineWorker`;
  :class:`ReplicaPool` fronts N of them behind one engine interface, with
  least-loaded dispatch, liveness probes and automatic restart of crashed
  replicas (:class:`WorkerHandle` per slot).

Quickstart::

    from repro.nn.zoo import resnet18_like
    from repro.runtime import NetworkEngine

    model = resnet18_like(seed=0)
    engine = NetworkEngine.compile(model)
    outputs = engine.run(inputs, micro_batch=64)
    print(engine.network_statistics().converts_per_mac)
"""

from repro.runtime.cache import (
    GLOBAL_WEIGHT_CACHE,
    EncodedWeightCache,
    ExecutorPool,
    ModelPlanCache,
)
from repro.runtime.engine import NetworkEngine
from repro.runtime.phases import extract_phase_tensor, plan_shift_masks
from repro.runtime.plan import (
    CompiledLayerPlan,
    ModelPlan,
    compile_model_plan,
)
from repro.runtime.procpool import (
    EngineSpec,
    EngineWorker,
    ProcessEngine,
    RemoteEngineError,
    ReplicaPool,
    WorkerClosedError,
    WorkerCrashError,
    WorkerHandle,
    WorkerStartupError,
)
from repro.runtime.vectorized import VectorizedLayerExecutor, float32_gemm_is_exact

__all__ = [
    "CompiledLayerPlan",
    "EncodedWeightCache",
    "EngineSpec",
    "EngineWorker",
    "ExecutorPool",
    "GLOBAL_WEIGHT_CACHE",
    "ModelPlan",
    "ModelPlanCache",
    "NetworkEngine",
    "ProcessEngine",
    "RemoteEngineError",
    "ReplicaPool",
    "VectorizedLayerExecutor",
    "WorkerClosedError",
    "WorkerCrashError",
    "WorkerHandle",
    "WorkerStartupError",
    "compile_model_plan",
    "extract_phase_tensor",
    "float32_gemm_is_exact",
    "plan_shift_masks",
]
