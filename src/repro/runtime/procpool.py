"""Process-based engine workers with a zero-copy shared-memory request path.

The thread-based serving stack (:mod:`repro.serve`) overlaps engine calls of
different models, but the simulator's digital stages -- quantize/dequantize,
phase extraction, statistics -- are Python/NumPy code that holds the GIL for
most of its runtime, so threads only buy concurrency, not parallelism.  This
module moves each engine into its own *process*:

* :class:`EngineWorker` is the transport: it forks/spawns a child process
  that unpickles a model spec, builds a :class:`~repro.runtime.NetworkEngine`
  (its own executor pool, its own weight cache) and serves requests from a
  pipe until told to close.
* Input and output arrays never travel through the pipe or the pickler.
  Arrays move through :class:`multiprocessing.shared_memory` blocks; a
  small framed header at the start of each block carries the array's
  shape/dtype and the request sequence number, and the pipe only moves
  tiny control tuples (block name, flags, timings).  The worker runs the
  engine directly on a mapped view of the input payload (zero consume
  copies), and writes each result into a *pooled* output slot -- one
  worker-owned block per slot -- from which the parent hands callers a
  read-only zero-copy view; the slot returns to the pool when the view is
  garbage collected, so no materialisation copy happens anywhere on the
  round trip.  Blocks grow on demand and the stale block is unlinked once
  the peer has switched to the new name.
* :class:`WorkerHandle` wraps one replica *slot*: the current worker, its
  spec, and restart bookkeeping, so a crashed process can be replaced
  without the surrounding pool losing its place.
* :class:`ReplicaPool` is the :class:`~repro.runtime.NetworkEngine`-shaped
  facade the serving layer hosts: N workers behind one engine interface,
  with least-loaded dispatch, periodic liveness probes, automatic restart
  of crashed replicas (their in-flight batch is requeued onto a sibling),
  and rolling replace so a model stays serveable while it is re-registered.
  :class:`ProcessEngine` remains as the single-worker facade for direct
  use and benchmarking.

Outputs are bit-identical to the in-process engine (same pickled weights,
same seeded noise state, same micro-batching).  Pools hosting a *stateful*
noise model pin all dispatch to one replica so the seeded RNG draw order
matches the single-worker backend exactly.

Each worker pins its BLAS/OpenMP thread pools (``OMP_NUM_THREADS`` /
``OPENBLAS_NUM_THREADS`` / ``MKL_NUM_THREADS``, via
:attr:`EngineSpec.blas_threads`) so N replicas divide the machine instead of
oversubscribing it.
"""

from __future__ import annotations

import itertools
import logging
import os
import pickle
import struct
import sys
import tempfile
import threading
import time
import weakref
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable

import numpy as np

from repro.analog.noise import NoiseModel, NoiselessModel
from repro.core.executor import LayerStatistics, PimLayerConfig
from repro.nn.model import QuantizedModel

__all__ = [
    "EngineSpec",
    "EngineWorker",
    "ProcessEngine",
    "RemoteEngineError",
    "ReplicaPool",
    "WorkerCrashError",
    "WorkerClosedError",
    "WorkerHandle",
    "WorkerStartupError",
]

#: Sentinel mirroring :data:`repro.runtime.engine._USE_DEFAULT` (imported
#: lazily in methods to keep module import light for spawned workers).
_USE_DEFAULT = object()

#: Frame header layout at offset 0 of every shared-memory block:
#: magic u32, sequence u64, flags u8, dtype string (16 bytes, NUL padded),
#: ndim u8, then a fixed 8-slot u64 shape.  The payload starts at a fixed
#: 128-byte offset so the header never aliases array data.
_FRAME = struct.Struct("<IQB16sB8Q")
_FRAME_MAGIC = 0x52504631  # "RPF1"
_MAX_DIMS = 8
_PAYLOAD_OFFSET = 128
_MIN_BLOCK_BYTES = 1 << 16

#: Default startup/shutdown deadlines; per-worker values are constructor
#: arguments (:class:`EngineWorker`, :meth:`ReplicaPool.launch`).
_BOOT_TIMEOUT_S = 120.0
_SHUTDOWN_TIMEOUT_S = 10.0

#: How often a :class:`ReplicaPool`'s prober sweeps its replicas for death.
_PROBE_INTERVAL_S = 0.5

#: Restart backoff bounds for a replica slot whose respawns keep failing.
_RESTART_BACKOFF_MIN_S = 0.5
_RESTART_BACKOFF_MAX_S = 30.0

#: How much of a dead worker's stderr a :class:`WorkerStartupError` carries.
_STDERR_TAIL_BYTES = 4096

#: The environment variables every common BLAS/OpenMP runtime honours.
_BLAS_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS", "MKL_NUM_THREADS")

#: Serialises the parent-side environment staging around ``Process.start()``
#: (spawned children capture ``os.environ`` at exec time).
_BLAS_ENV_LOCK = threading.Lock()

#: Worker-side: keeps threadpoolctl limit contexts alive for process lifetime.
_BLAS_LIMIT_GUARDS: list = []

#: Replica slot states (guarded by the owning pool's condition).
_HEALTHY = "healthy"
_DEAD = "dead"
_RESTARTING = "restarting"
_CLOSED = "closed"


class RemoteEngineError(RuntimeError):
    """An engine failure inside a worker that could not be re-raised as-is.

    Raised when the worker-side exception does not survive pickling; the
    message carries the original type, message and remote traceback text.
    """


class WorkerCrashError(RemoteEngineError):
    """The worker process died (or its pipe broke) mid-conversation.

    A :class:`ReplicaPool` treats this as *retryable*: the batch is requeued
    onto a healthy sibling while the dead replica restarts in the background.
    """


class WorkerClosedError(RemoteEngineError):
    """A request hit a worker (or pool) that has already been shut down."""


class WorkerStartupError(RemoteEngineError):
    """The worker process failed to boot (build error, death, or timeout).

    Carries the child's captured stderr tail in :attr:`stderr_tail` -- the
    import error or hard crash that a bare timeout message would hide.
    """

    def __init__(self, message: str, stderr_tail: str = ""):
        self.stderr_tail = stderr_tail
        if stderr_tail.strip():
            message = f"{message}\n--- worker stderr tail ---\n{stderr_tail}"
        super().__init__(message)


def _write_frame(shm: shared_memory.SharedMemory, seq: int, array: np.ndarray) -> None:
    """Write ``array`` into the block behind a framed header."""
    if array.ndim > _MAX_DIMS:
        raise ValueError(f"arrays beyond {_MAX_DIMS} dimensions are unsupported")
    shape = array.shape + (0,) * (_MAX_DIMS - array.ndim)
    _FRAME.pack_into(
        shm.buf,
        0,
        _FRAME_MAGIC,
        seq,
        0,
        array.dtype.str.encode("ascii"),
        array.ndim,
        *shape,
    )
    destination = np.ndarray(
        array.shape, dtype=array.dtype, buffer=shm.buf, offset=_PAYLOAD_OFFSET
    )
    np.copyto(destination, array)


def _read_frame(shm: shared_memory.SharedMemory, seq: int) -> np.ndarray:
    """A zero-copy array view over the block's framed payload."""
    magic, frame_seq, _flags, dtype_tag, ndim, *shape = _FRAME.unpack_from(shm.buf, 0)
    if magic != _FRAME_MAGIC:
        raise RuntimeError("shared-memory frame is corrupt (bad magic)")
    if frame_seq != seq:
        raise RuntimeError(
            f"shared-memory frame out of sync: expected seq {seq}, found {frame_seq}"
        )
    dtype = np.dtype(dtype_tag.rstrip(b"\x00").decode("ascii"))
    return np.ndarray(
        tuple(shape[:ndim]), dtype=dtype, buffer=shm.buf, offset=_PAYLOAD_OFFSET
    )


class _ArraySender:
    """The owning side of one transport direction: create, grow, unlink."""

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None

    def send(self, seq: int, array: np.ndarray) -> str:
        """Frame ``array`` into the current block (growing it) -> block name."""
        array = np.ascontiguousarray(array)
        needed = _PAYLOAD_OFFSET + array.nbytes
        if self._shm is None or self._shm.size < needed:
            # Grow by replacement: the old block stays mapped (and thus
            # valid) wherever the peer still holds it; unlinking here only
            # removes the name.  The peer drops its stale attachment when
            # the next control message names the new block.
            self.close()
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(needed, _MIN_BLOCK_BYTES)
            )
        _write_frame(self._shm, seq, array)
        return self._shm.name

    def close(self) -> None:
        """Unmap and unlink the owned block (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


class _DeferredUnmap:
    """Unmap a shared-memory block once the last outstanding view dies.

    ``numpy`` views built over ``shm.buf`` hold a raw pointer into the
    mapping without keeping the memoryview's buffer exported, so
    ``shm.close()`` would unmap the pages under a live view and turn the
    next read into a segfault.  Instead, closing a receiver with live views
    hands the block to one of these holders; each view's ``weakref.finalize``
    decrements the count and the last one out performs the real unmap.
    """

    def __init__(self, shm: shared_memory.SharedMemory, count: int) -> None:
        self._shm = shm
        self._count = count
        self._lock = threading.Lock()

    def release(self) -> None:
        with self._lock:
            self._count -= 1
            if self._count > 0:
                return
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - defensive
            pass


class _ArrayReceiver:
    """The attaching side: map blocks by name; the owner usually unlinks."""

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._views: dict[str, list] = {}

    def view(self, name: str, seq: int) -> np.ndarray:
        """A zero-copy view of the named block's framed payload."""
        shm = self._attached.get(name)
        if shm is None:
            # The sender replaced its block: every previous attachment is
            # stale (one live block per direction), so unmap them first.
            # Attaching re-registers the name with the resource tracker,
            # which parent and workers share (its fd travels with both fork
            # and spawn), so the tracker's name set stays deduplicated and
            # only the owner's unlink unregisters it.
            self.close()
            shm = shared_memory.SharedMemory(name=name)
            self._attached[name] = shm
        array = _read_frame(shm, seq)
        refs = self._views.setdefault(name, [])
        refs[:] = [ref for ref in refs if ref() is not None]
        refs.append(weakref.ref(array))
        return array

    def close(self, unlink: bool = False) -> None:
        """Unmap every attachment (live result views defer their block).

        ``unlink=True`` reclaims the blocks too: when the owning worker was
        killed mid-flight its teardown never ran, so the attaching parent is
        the last one standing and must unlink, or the segment is stranded
        until interpreter exit.  Unlinking only removes the *name*; a block
        with zero-copy result views still alive keeps its mapping until the
        last view is garbage collected (see :class:`_DeferredUnmap`).
        """
        for name, shm in self._attached.items():
            if unlink:
                try:
                    shm.unlink()
                except FileNotFoundError:  # owner got there first
                    pass
            live = [
                view
                for ref in self._views.get(name, ())
                if (view := ref()) is not None
            ]
            if live:
                holder = _DeferredUnmap(shm, len(live))
                for view in live:
                    weakref.finalize(view, holder.release)
                continue
            try:
                shm.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        self._attached.clear()
        self._views.clear()


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild a :class:`NetworkEngine`.

    The spec is pickled once at launch; the worker builds its own executor
    pool and weight cache from it, so no parent-side state (and none of the
    parent's locks) is shared.  ``sys_path`` replays the parent's import
    path so spawned workers resolve ``repro`` exactly like the parent did.
    ``blas_threads`` pins the worker's BLAS/OpenMP pools (``None`` leaves
    them unpinned); the default of one thread per worker keeps N replicas
    from oversubscribing the machine.  ``plan`` ships a compiled
    :class:`~repro.runtime.plan.ModelPlan` by value: a worker booting from a
    planned spec seeds its executors with the plan's pre-encoded chunks and
    operand tables instead of re-running weight encoding, so N replicas and
    rolling ``replace()`` pay the compile exactly once, in the parent.
    """

    model: QuantizedModel
    config: PimLayerConfig | None = None
    noise: NoiseModel | None = None
    micro_batch: int | None = None
    float32: bool = False
    sys_path: tuple[str, ...] = field(default_factory=tuple)
    blas_threads: int | None = 1
    plan: object | None = None

    def __post_init__(self) -> None:
        if self.blas_threads is not None and self.blas_threads < 1:
            raise ValueError("blas_threads must be >= 1 (or None to leave unpinned)")


def _build_engine_from_spec(spec: EngineSpec):
    """Worker-side: compile the spec into a private in-process engine."""
    from repro.runtime.cache import EncodedWeightCache, ExecutorPool
    from repro.runtime.engine import NetworkEngine

    pool = ExecutorPool(weight_cache=EncodedWeightCache(), float32=spec.float32)
    return NetworkEngine.build(
        spec.model,
        spec.config,
        noise=spec.noise,
        micro_batch=spec.micro_batch,
        pool=pool,
        float32=spec.float32,
        plan=spec.plan,
    )


def _limit_blas_threads(n: int | None) -> None:
    """Worker bootstrap: pin BLAS/OpenMP pools to ``n`` threads (best effort).

    The environment variables cover spawned workers (BLAS reads them when the
    fresh interpreter first loads it); a forked worker inherits an
    already-initialised BLAS, so when threadpoolctl is available the live
    pools are resized too.
    """
    if n is None:
        return
    for var in _BLAS_ENV_VARS:
        os.environ[var] = str(n)
    try:
        from threadpoolctl import threadpool_limits
    except ImportError:
        return
    try:  # pragma: no cover - depends on optional threadpoolctl
        _BLAS_LIMIT_GUARDS.append(threadpool_limits(limits=n))
    except Exception:
        pass


def _error_message(seq: int, error: BaseException) -> tuple:
    """An ``("err", ...)`` reply: pickled exception plus plain-text fallback."""
    import traceback

    tb_text = "".join(traceback.format_exception(error))
    try:
        payload = pickle.dumps(error)
        pickle.loads(payload)  # some exceptions pickle but refuse to rebuild
    except Exception:
        payload = None
    return ("err", seq, payload, type(error).__name__, str(error), tb_text)


def _raise_remote(message: tuple) -> None:
    """Re-raise a worker-side failure in the caller."""
    _kind, _seq, payload, type_name, text, tb_text = message
    if payload is not None:
        try:
            error = pickle.loads(payload)
        except Exception:
            error = None
        if isinstance(error, BaseException):
            error.remote_traceback = tb_text
            raise error
    raise RemoteEngineError(
        f"{type_name} in engine worker: {text}\n--- worker traceback ---\n{tb_text}"
    )


def _engine_worker_main(
    spec_bytes: bytes, requests, results, stderr_path: str | None = None
) -> None:
    """The worker process: build the engine, then serve the request pipe.

    Replies are ``("ok", seq, block_name_or_None, meta_dict)`` or the
    ``("err", ...)`` tuple of :func:`_error_message`.  A ``run`` reply's meta
    carries the worker-side engine wall time and the engine-run records
    ``[(n_samples, elapsed_s)]`` the parent merges into its telemetry; when
    the request propagated a trace context (a tuple of trace ids), the meta
    additionally ships ``spans`` -- worker-side engine span dicts stamped
    with this process's pid/tid -- for the parent's distributed traces.
    """
    if stderr_path is not None:
        # Redirect fd 2 before anything can fail so build errors, import
        # errors and hard crashes land in the parent-readable tail file.
        try:
            fd = os.open(stderr_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600)
            os.dup2(fd, 2)
            os.close(fd)
            # Forked children inherit the parent's sys.stderr *object*,
            # which may be buffered or patched to write somewhere other
            # than fd 2 (test harnesses do this); rebind it onto the
            # redirected fd so Python-level writes land in the tail too.
            sys.stderr = os.fdopen(2, "w", buffering=1, closefd=False)
        except OSError:  # pragma: no cover - capture is best effort
            pass
    receiver = _ArrayReceiver()
    # One output sender (= one shared block) per parent-assigned output slot:
    # the parent hands results out as zero-copy views and only reuses a slot
    # once its view has been released, so concurrent in-flight results never
    # share a block.  Slots are created lazily as the parent's pool grows.
    senders: dict[int, _ArraySender] = {}
    try:
        try:
            spec: EngineSpec = pickle.loads(spec_bytes)
            for path in reversed(spec.sys_path):
                if path not in sys.path:
                    sys.path.insert(0, path)
            _limit_blas_threads(spec.blas_threads)
            engine = _build_engine_from_spec(spec)
        except BaseException as error:
            results.send(_error_message(0, error))
            return
        results.send(("ok", 0, None, {}))
        while True:
            try:
                message = requests.recv()
            except (EOFError, OSError):  # parent died or closed the pipe
                return
            kind, seq = message[0], message[1]
            if kind == "close":
                return
            try:
                if kind == "run":
                    (
                        _,
                        _,
                        block,
                        return_codes,
                        has_override,
                        micro_batch,
                        trace_ctx,
                        out_slot,
                    ) = message
                    inputs = receiver.view(block, seq)
                    started_at = time.monotonic()
                    start = time.perf_counter()
                    if has_override:
                        outputs = engine.run(
                            inputs, return_codes=return_codes, micro_batch=micro_batch
                        )
                    else:
                        outputs = engine.run(inputs, return_codes=return_codes)
                    elapsed = time.perf_counter() - start
                    slot_sender = senders.get(out_slot)
                    if slot_sender is None:
                        slot_sender = senders[out_slot] = _ArraySender()
                    out_block = slot_sender.send(seq, outputs)
                    meta = {
                        "engine_time_s": elapsed,
                        "records": [(int(inputs.shape[0]), elapsed)],
                    }
                    if trace_ctx is not None:
                        # Propagated trace context: ship one worker-side
                        # engine span (this process's pid/tid, timestamps on
                        # the host-shared monotonic clock) back with the
                        # records so the parent folds it into each sampled
                        # request's trace.
                        meta["spans"] = [
                            {
                                "name": "engine",
                                "start_s": started_at,
                                "end_s": started_at + elapsed,
                                "pid": os.getpid(),
                                "tid": threading.get_ident(),
                                "trace_ids": list(trace_ctx),
                                "n_samples": int(inputs.shape[0]),
                            }
                        ]
                    results.send(("ok", seq, out_block, meta))
                elif kind == "ping":
                    meta = {
                        "pid": os.getpid(),
                        "blas_threads": os.environ.get("OMP_NUM_THREADS"),
                    }
                    results.send(("ok", seq, None, meta))
                elif kind == "layer_stats":
                    stats = engine.layer_statistics()
                    results.send(("ok", seq, None, {"stats": stats}))
                elif kind == "reset_stats":
                    engine.reset_statistics()
                    results.send(("ok", seq, None, {}))
                else:
                    raise ValueError(f"unknown worker request kind {kind!r}")
            except BaseException as error:
                results.send(_error_message(seq, error))
    finally:
        for slot_sender in senders.values():
            slot_sender.close()
        receiver.close()
        requests.close()
        results.close()


def _default_start_method() -> str:
    """``fork`` where available *and* the parent is single-threaded.

    Worker-side state is fork-safe (the worker builds its own pool, cache
    and locks), but forking a multi-threaded parent can duplicate a lock
    some other thread held mid-operation -- e.g. registering a process
    backend while an :class:`~repro.serve.InferenceServer` is already
    running its scheduler/worker threads.  In that case fall back to
    ``spawn``, which starts the worker from a clean interpreter.  Replica
    restarts happen on pool maintenance threads, so they always resolve to
    ``spawn``.
    """
    if "fork" in get_all_start_methods() and threading.active_count() == 1:
        return "fork"
    return "spawn"


def _release_output_slot(
    lock: threading.Lock, free_slots: list[int], slot: int
) -> None:
    """Return an output slot to its worker's free pool (finalizer target).

    A module-level function (not a bound method) so the ``weakref.finalize``
    registered on a handed-out result view holds no reference cycle through
    the :class:`EngineWorker`.
    """
    with lock:
        free_slots.append(slot)


class EngineWorker:
    """Parent-side handle to one engine worker process.

    Owns the request/result pipes and the input shared-memory block (the
    worker owns the output blocks); serialises callers with an internal lock,
    so one worker serves one request at a time -- exactly the per-model
    serialisation the server guarantees anyway.

    Run results come back through a pooled set of worker-owned output blocks
    ("slots"): the parent assigns each run request a free slot, the worker
    writes the result into that slot's block in place, and the parent hands
    the caller a read-only zero-copy view of it -- no materialisation copy on
    the round trip.  The slot returns to the free pool when the view (and
    every sub-view derived from it, e.g. the server's per-request splits) is
    garbage collected; the pool grows on demand, so hoarding results costs
    memory but never deadlocks.  Set :attr:`copy_outputs` to restore the old
    copy-out-and-release-immediately behaviour (the benchmark suite uses this
    to measure what pooling saves).

    ``start_timeout_s`` bounds the boot handshake (a miss raises
    :class:`WorkerStartupError` carrying the child's stderr tail);
    ``shutdown_timeout_s`` bounds each join attempt in :meth:`close`.
    """

    def __init__(
        self,
        spec: EngineSpec,
        start_method: str | None = None,
        name: str | None = None,
        start_timeout_s: float = _BOOT_TIMEOUT_S,
        shutdown_timeout_s: float = _SHUTDOWN_TIMEOUT_S,
    ):
        if start_timeout_s <= 0 or shutdown_timeout_s <= 0:
            raise ValueError("worker timeouts must be positive")
        try:
            spec_bytes = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            raise ValueError(
                "engine spec is not picklable (model, config and noise must "
                f"survive a process boundary): {error!r}"
            ) from error
        self._start_timeout_s = start_timeout_s
        self._shutdown_timeout_s = shutdown_timeout_s
        # Start the shared-memory resource tracker *before* forking so the
        # worker inherits it instead of lazily starting its own: with one
        # shared tracker, create/attach registrations of the same block
        # deduplicate and exactly the owner's unlink unregisters it.  (Spawn
        # always ships the tracker fd in its preparation data.)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        self._stderr_path: str | None = None
        try:
            stderr_fd, self._stderr_path = tempfile.mkstemp(
                prefix="engine-worker-", suffix=".stderr"
            )
            os.close(stderr_fd)
        except OSError:  # pragma: no cover - capture is best effort
            self._stderr_path = None
        context = get_context(start_method or _default_start_method())
        request_read, request_write = context.Pipe(duplex=False)
        result_read, result_write = context.Pipe(duplex=False)
        self._process = context.Process(
            target=_engine_worker_main,
            args=(spec_bytes, request_read, result_write, self._stderr_path),
            name=f"engine-worker-{name or spec.model.name}",
            daemon=True,
        )
        if spec.blas_threads is None:
            self._process.start()
        else:
            # Spawned children capture os.environ at exec time, so staging
            # the pin around start() guarantees the fresh interpreter's BLAS
            # reads it on load.  (Forked children additionally re-apply it
            # in their own bootstrap.)
            with _BLAS_ENV_LOCK:
                saved = {var: os.environ.get(var) for var in _BLAS_ENV_VARS}
                for var in _BLAS_ENV_VARS:
                    os.environ[var] = str(spec.blas_threads)
                try:
                    self._process.start()
                finally:
                    for var, value in saved.items():
                        if value is None:
                            os.environ.pop(var, None)
                        else:
                            os.environ[var] = value
        # Close the child's pipe ends in the parent so EOF propagates when
        # either side goes away.
        request_read.close()
        result_write.close()
        self._requests = request_write
        self._results = result_read
        self._sender = _ArraySender()
        # Output pooling state: one receiver per slot (a slot maps one
        # worker-owned block at a time), a free list guarded by its own lock
        # because slots are released from GC finalizers on arbitrary threads.
        self._slot_receivers: dict[int, _ArrayReceiver] = {}
        self._slots_free: list[int] = []
        self._n_slots = 0
        self._slots_lock = threading.Lock()
        #: Copy results out of shared memory and release the slot immediately
        #: instead of handing out zero-copy views (pre-pooling behaviour).
        self.copy_outputs = False
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._wait_reply(0, timeout=self._start_timeout_s)
        except (WorkerCrashError, TimeoutError) as error:
            tail = self.stderr_tail()
            self.close()
            cause = str(error).split("\n--- worker stderr tail ---", 1)[0]
            raise WorkerStartupError(
                f"engine worker {self._process.name!r} failed to start: {cause}",
                stderr_tail=tail,
            ) from error
        except BaseException:
            # Worker-side build failures arrive as ("err", ...) replies and
            # re-raise with their original type; just reap the worker.
            self.close()
            raise

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or the launch failed)."""
        return self._closed

    @property
    def pid(self) -> int | None:
        """The worker process id (``None`` once closed)."""
        return None if self._closed else self._process.pid

    @property
    def is_alive(self) -> bool:
        """Whether the worker process is currently running."""
        return not self._closed and self._process.is_alive()

    def stderr_tail(self, max_bytes: int = _STDERR_TAIL_BYTES) -> str:
        """The last ``max_bytes`` of the worker's captured stderr."""
        if self._stderr_path is None:
            return ""
        try:
            with open(self._stderr_path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - max_bytes))
                return handle.read().decode("utf-8", errors="replace")
        except OSError:
            return ""

    def _remove_stderr_file(self) -> None:
        if self._stderr_path is not None:
            try:
                os.unlink(self._stderr_path)
            except OSError:  # pragma: no cover - already gone
                pass
            self._stderr_path = None

    def _wait_reply(self, seq: int, timeout: float | None = None) -> tuple:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._results.poll(0.05):
            if not self._process.is_alive():
                raise WorkerCrashError(
                    "engine worker died without replying "
                    f"(exit code {self._process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("engine worker did not reply in time")
        try:
            message = self._results.recv()
        except (EOFError, OSError) as error:
            # A dying peer makes poll() return True with nothing to read.
            raise WorkerCrashError(
                "engine worker died mid-reply "
                f"(exit code {self._process.exitcode})"
            ) from error
        if message[0] == "err":
            _raise_remote(message)
        if message[1] != seq:
            raise WorkerCrashError(
                f"engine worker replied out of sync: expected {seq}, got {message[1]}"
            )
        return message

    def _acquire_output_slot(self) -> int:
        """Take a free output slot, growing the pool when none is available."""
        with self._slots_lock:
            if self._slots_free:
                return self._slots_free.pop()
            slot = self._n_slots
            self._n_slots += 1
            return slot

    def request(
        self, kind: str, array: np.ndarray | None = None, extra: tuple = ()
    ) -> tuple[np.ndarray | None, dict]:
        """One request/reply round trip -> ``(output array or None, meta)``.

        A ``run`` result is a *read-only zero-copy view* of the pooled
        worker-owned output slot assigned to the request; the slot (and with
        it the underlying block) is reused only after the view and all its
        descendants are garbage collected.  With :attr:`copy_outputs` set the
        result is materialised and the slot released before returning.
        """
        with self._lock:
            if self._closed:
                raise WorkerClosedError("engine worker is closed")
            seq = next(self._seq)
            out_slot = self._acquire_output_slot() if kind == "run" else None
            try:
                block = None if array is None else self._sender.send(seq, array)
                payload = (kind, seq, block, *extra)
                if out_slot is not None:
                    payload = payload + (out_slot,)
                try:
                    self._requests.send(payload)
                except (BrokenPipeError, OSError) as error:
                    raise WorkerCrashError(
                        "engine worker died before the request could be sent "
                        f"(exit code {self._process.exitcode})"
                    ) from error
                message = self._wait_reply(seq)
            except BaseException:
                if out_slot is not None:
                    _release_output_slot(self._slots_lock, self._slots_free, out_slot)
                raise
            out_block, meta = message[2], message[3]
            if out_block is None:
                if out_slot is not None:
                    _release_output_slot(self._slots_lock, self._slots_free, out_slot)
                return None, meta
            receiver = self._slot_receivers.get(out_slot)
            if receiver is None:
                receiver = self._slot_receivers[out_slot] = _ArrayReceiver()
            view = receiver.view(out_block, seq)
            if self.copy_outputs:
                outputs = np.array(view, copy=True)
                _release_output_slot(self._slots_lock, self._slots_free, out_slot)
                return outputs, meta
            view.setflags(write=False)
            weakref.finalize(
                view, _release_output_slot, self._slots_lock, self._slots_free, out_slot
            )
            return view, meta

    def ping(self) -> dict:
        """A liveness round trip -> the worker's ``{"pid", "blas_threads"}``."""
        _none, meta = self.request("ping")
        return meta

    def close(self, join_timeout: float | None = None) -> None:
        """Shut the worker down (idempotent): close request pipe, join, reap.

        A worker that exited cleanly unlinked its own output block on the
        way out; a killed or crashed worker never got there, so the parent
        reclaims any block it is still attached to -- otherwise a close
        racing a dispatch strands the shared-memory segment.
        """
        timeout = self._shutdown_timeout_s if join_timeout is None else join_timeout
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._requests.send(("close", next(self._seq), None))
            except (BrokenPipeError, OSError):  # worker already gone
                pass
            self._requests.close()
            self._results.close()
            self._process.join(timeout=timeout)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout=timeout)
                if self._process.is_alive():
                    self._process.kill()
                    self._process.join(timeout=timeout)
            abnormal = self._process.exitcode != 0
            if not self._process.is_alive():
                self._process.close()
            self._sender.close()
            for receiver in self._slot_receivers.values():
                receiver.close(unlink=abnormal)
            self._slot_receivers.clear()
            self._remove_stderr_file()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"pid={self._process.pid}"
        return f"EngineWorker({state})"


def _notify_completion(callbacks: list[Callable[[dict], None]], event: dict) -> None:
    """Fire batch-completion callbacks; observers must not break dispatch.

    The event dict carries ``model`` (name), ``n_samples`` (batch size),
    ``engine_time_s`` (worker-measured engine seconds), ``replica`` (the
    slot index that executed the batch, or ``None`` for a single worker)
    and ``requeues`` (crash-retries before the batch succeeded).  Callback
    exceptions are logged and swallowed, same contract as
    :meth:`InferenceFuture.add_done_callback
    <repro.serve.scheduler.InferenceFuture.add_done_callback>`.
    """
    for callback in list(callbacks):
        try:
            callback(dict(event))
        except Exception:
            logging.getLogger(__name__).exception("engine completion callback raised")


class ProcessEngine:
    """A :class:`NetworkEngine`-shaped facade over one :class:`EngineWorker`.

    Built via :meth:`launch`; bit-identical to the in-process engine the
    worker hosts (same pickled weights and calibration, same seeded noise
    state, same micro-batching).  ``worker_owns_state`` tells the serving
    layer that all mutable engine state lives worker-side, so no executor
    locks are needed -- per-model request serialisation happens on the
    worker's pipe instead.
    """

    #: Serving-layer contract: every executor/noise object lives in the
    #: worker process, so dispatch must not (and cannot) take executor locks.
    worker_owns_state = True

    def __init__(self, model: QuantizedModel, worker: EngineWorker):
        self.model = model
        self.worker = worker
        self._run_probes: list[Callable[[int, float], None]] = []
        self._completion_callbacks: list[Callable[[dict], None]] = []

    @classmethod
    def launch(
        cls,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        float32: bool = False,
        start_method: str | None = None,
        blas_threads: int | None = 1,
        start_timeout_s: float = _BOOT_TIMEOUT_S,
        shutdown_timeout_s: float = _SHUTDOWN_TIMEOUT_S,
        plan=None,
    ) -> "ProcessEngine":
        """Start a worker process hosting this model and wait until ready.

        ``plan`` ships a compiled :class:`~repro.runtime.plan.ModelPlan` to
        the worker, which then boots its executors from the plan's
        pre-encoded chunks instead of re-encoding weights.

        Raises :class:`ValueError` when the spec does not pickle, and
        re-raises worker-side build failures (e.g. an uncalibrated model)
        in the caller.
        """
        if not model.is_calibrated:
            raise ValueError(f"model {model.name!r} must be calibrated first")
        spec = EngineSpec(
            model=model,
            config=config,
            noise=noise,
            micro_batch=micro_batch,
            float32=float32,
            sys_path=tuple(sys.path),
            blas_threads=blas_threads,
            plan=plan,
        )
        worker = EngineWorker(
            spec,
            start_method=start_method,
            start_timeout_s=start_timeout_s,
            shutdown_timeout_s=shutdown_timeout_s,
        )
        return cls(model, worker)

    @property
    def closed(self) -> bool:
        """Whether the worker has been shut down."""
        return self.worker.closed

    # -- execution ------------------------------------------------------------

    def run_timed(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
        *,
        trace_ctx: tuple | None = None,
        span_sink: list | None = None,
    ) -> tuple[np.ndarray, float, list[tuple[int, float]]]:
        """Run remotely -> ``(outputs, worker engine seconds, run records)``.

        The timing and the ``(n_samples, elapsed_s)`` records are measured
        *inside* the worker around the engine call, so telemetry calibration
        sees pure engine time, never pipe/shared-memory overhead.

        ``trace_ctx`` (a tuple of trace ids) propagates distributed-trace
        context into the worker; with it set, ``span_sink`` (a plain list)
        receives span dicts for this call: a parent-side ``worker_ipc`` span
        wrapping the round trip and the worker-side ``engine`` span shipped
        back in the reply meta.  Both default to off and cost nothing.
        """
        batch = np.asarray(inputs, dtype=np.float64)
        has_override = micro_batch is not _USE_DEFAULT
        ipc_start = time.monotonic()
        outputs, meta = self.worker.request(
            "run",
            array=batch,
            extra=(
                return_codes,
                has_override,
                micro_batch if has_override else None,
                trace_ctx,
            ),
        )
        if span_sink is not None:
            span_sink.append(
                {
                    "name": "worker_ipc",
                    "start_s": ipc_start,
                    "end_s": time.monotonic(),
                    "replica": None,
                    "status": "ok",
                }
            )
            span_sink.extend(
                {**span, "replica": None, "status": "ok"}
                for span in meta.get("spans", ())
            )
        for n_samples, elapsed_s in meta["records"]:
            for probe in list(self._run_probes):
                probe(n_samples, elapsed_s)
        _notify_completion(
            self._completion_callbacks,
            {
                "model": self.model.name,
                "n_samples": int(batch.shape[0]),
                "engine_time_s": float(meta["engine_time_s"]),
                "replica": None,
                "requeues": 0,
            },
        )
        return outputs, meta["engine_time_s"], list(meta["records"])

    def run(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> np.ndarray:
        """Run the integer path end-to-end in the worker process."""
        outputs, _elapsed, _records = self.run_timed(
            inputs, return_codes=return_codes, micro_batch=micro_batch
        )
        return outputs

    def predict(
        self, inputs: np.ndarray, micro_batch: int | None = _USE_DEFAULT
    ) -> np.ndarray:
        """Class predictions from the worker-hosted integer path."""
        return np.argmax(self.run(inputs, micro_batch=micro_batch), axis=-1)

    # -- probes / statistics ---------------------------------------------------

    def add_run_probe(
        self, probe: Callable[[int, float], None]
    ) -> Callable[[int, float], None]:
        """Attach a ``probe(n_samples, worker_elapsed_s)`` run callback."""
        self._run_probes.append(probe)
        return probe

    def remove_run_probe(self, probe: Callable[[int, float], None]) -> None:
        """Detach a probe previously added with :meth:`add_run_probe`."""
        self._run_probes.remove(probe)

    def add_completion_callback(
        self, callback: Callable[[dict], None]
    ) -> Callable[[dict], None]:
        """Attach a batch-completion callback (see :func:`_notify_completion`).

        Fired once per successful ``run``/``run_timed`` on the calling
        thread, with a dict carrying ``model``, ``n_samples``,
        ``engine_time_s``, ``replica`` (always ``None`` for a single
        worker) and ``requeues`` (always ``0``).  This is the hook the
        asyncio front door's observers and the fault-injection tests use to
        watch batch completions without wrapping the engine.
        """
        self._completion_callbacks.append(callback)
        return callback

    def remove_completion_callback(self, callback: Callable[[dict], None]) -> None:
        """Detach a callback added with :meth:`add_completion_callback`."""
        self._completion_callbacks.remove(callback)

    def layer_statistics(self) -> dict[str, LayerStatistics]:
        """Per-layer statistics accumulated by the worker-side executors."""
        _none, meta = self.worker.request("layer_stats")
        return meta["stats"]

    def network_statistics(self) -> LayerStatistics:
        """Network-wide totals (crossbar/column counts sum across layers)."""
        total = LayerStatistics(layer_name=self.model.name)
        for stats in self.layer_statistics().values():
            total.merge_layers(stats)
        return total

    def reset_statistics(self) -> None:
        """Clear accumulated statistics on every worker-side executor."""
        self.worker.request("reset_stats")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker process down (idempotent)."""
        self.worker.close()

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessEngine(model={self.model.name!r}, worker={self.worker!r})"


def _needs_pinning(noise: NoiseModel | None) -> bool:
    """Whether pool dispatch must stay on one replica for bit-identity.

    A stateful noise model draws from its own RNG stream, so the order of
    draws across batches is part of the bit-identity contract; fanning
    batches out over replicas (each holding its own unpickled copy of the
    stream) would diverge from the single-worker backend.
    """
    return noise is not None and not isinstance(noise, NoiselessModel)


class WorkerHandle:
    """One replica slot of a :class:`ReplicaPool`.

    Couples the slot's current :class:`EngineWorker` with the spec used to
    (re)build it and the crash/restart bookkeeping.  The handle itself is
    not thread-safe: ``state``/``inflight``/``worker`` transitions are
    guarded by the owning pool's condition variable.
    """

    def __init__(
        self,
        spec: EngineSpec,
        index: int = 0,
        name: str | None = None,
        start_method: str | None = None,
        start_timeout_s: float = _BOOT_TIMEOUT_S,
        shutdown_timeout_s: float = _SHUTDOWN_TIMEOUT_S,
    ):
        self.spec = spec
        self.index = index
        self.name = f"{name or spec.model.name}:r{index}"
        self.start_method = start_method
        self.start_timeout_s = start_timeout_s
        self.shutdown_timeout_s = shutdown_timeout_s
        self.worker: EngineWorker | None = None
        self.state = _DEAD
        self.inflight = 0
        self.restarts = 0
        self.restart_backoff_s = 0.0
        self.next_restart_at = 0.0

    def spawn(self) -> EngineWorker:
        """Start a fresh worker for the current spec (no state transition)."""
        return EngineWorker(
            self.spec,
            start_method=self.start_method,
            name=self.name,
            start_timeout_s=self.start_timeout_s,
            shutdown_timeout_s=self.shutdown_timeout_s,
        )

    def start(self) -> None:
        """Spawn and adopt the slot's initial worker."""
        self.worker = self.spawn()
        self.state = _HEALTHY

    @property
    def alive(self) -> bool:
        """Whether the slot currently holds a running worker process."""
        return self.worker is not None and self.worker.is_alive

    @property
    def pid(self) -> int | None:
        """The current worker's process id (``None`` when empty/closed)."""
        return None if self.worker is None else self.worker.pid

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkerHandle({self.name!r}, state={self.state!r})"


class ReplicaPool:
    """An engine-shaped facade over N self-healing :class:`EngineWorker`\\ s.

    Built via :meth:`launch`.  Dispatch picks the least-loaded healthy
    replica; a replica that dies mid-batch has its batch requeued onto a
    sibling while a maintenance thread restarts the dead slot, and a
    background prober sweeps for silently-died idle replicas.  Re-registering
    a model rolls the new spec through the slots one at a time
    (:meth:`replace`), so the model never becomes unserveable.

    Bit-identity: every replica hosts the same pickled spec, so outputs
    match the single-worker backend exactly.  Pools hosting a *stateful*
    noise model pin all dispatch to one replica (``dispatch_width == 1``)
    so the seeded RNG draw order is preserved too.
    """

    #: Serving-layer contract, same as :class:`ProcessEngine`: all mutable
    #: engine state lives worker-side; dispatch takes no executor locks.
    worker_owns_state = True

    def __init__(
        self,
        model: QuantizedModel,
        spec: EngineSpec,
        replicas: int = 2,
        start_method: str | None = None,
        probe_interval_s: float = _PROBE_INTERVAL_S,
        start_timeout_s: float = _BOOT_TIMEOUT_S,
        shutdown_timeout_s: float = _SHUTDOWN_TIMEOUT_S,
    ):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if probe_interval_s <= 0:
            raise ValueError("probe_interval_s must be positive")
        self.model = model
        self._name = model.name
        self._spec = spec
        self._pinned = _needs_pinning(spec.noise)
        self._start_method = start_method
        self._probe_interval_s = probe_interval_s
        self._start_timeout_s = start_timeout_s
        self._shutdown_timeout_s = shutdown_timeout_s
        self._cond = threading.Condition()
        self._replace_lock = threading.Lock()
        self._threads_lock = threading.Lock()
        self._restart_threads: list[threading.Thread] = []
        self._handles: list[WorkerHandle] = []
        self._restart_total = 0
        self._closed = False
        self._run_probes: list[Callable[[int, float], None]] = []
        self._completion_callbacks: list[Callable[[dict], None]] = []
        # Optional lifecycle observer (set_lifecycle_observer): receives one
        # dict per replica crash / restart / failed restart.  The serving
        # layer points this at the tracing flight recorder.
        self._lifecycle_observer: Callable[[dict], None] | None = None
        self._prober: threading.Thread | None = None
        try:
            for index in range(replicas):
                handle = self._new_handle(spec, index)
                handle.start()
                self._handles.append(handle)
        except BaseException:
            for handle in self._handles:
                handle.state = _CLOSED
                if handle.worker is not None:
                    handle.worker.close()
            raise
        self._prober = threading.Thread(
            target=self._probe_loop,
            name=f"replica-prober-{self._name}",
            daemon=True,
        )
        self._prober.start()

    @classmethod
    def launch(
        cls,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        float32: bool = False,
        replicas: int = 2,
        start_method: str | None = None,
        blas_threads: int | None = 1,
        probe_interval_s: float = _PROBE_INTERVAL_S,
        start_timeout_s: float = _BOOT_TIMEOUT_S,
        shutdown_timeout_s: float = _SHUTDOWN_TIMEOUT_S,
        plan=None,
    ) -> "ReplicaPool":
        """Start ``replicas`` worker processes hosting ``model``.

        ``plan`` ships one compiled :class:`~repro.runtime.plan.ModelPlan`
        inside the spec every replica (and every crash-restart and rolling
        ``replace``) boots from, so N workers re-encode weights zero times.

        Raises :class:`ValueError` when the spec does not pickle, re-raises
        worker-side build failures in the caller, and tears down every
        already-started replica when a later one fails to boot.
        """
        if not model.is_calibrated:
            raise ValueError(f"model {model.name!r} must be calibrated first")
        spec = EngineSpec(
            model=model,
            config=config,
            noise=noise,
            micro_batch=micro_batch,
            float32=float32,
            sys_path=tuple(sys.path),
            blas_threads=blas_threads,
            plan=plan,
        )
        return cls(
            model,
            spec,
            replicas=replicas,
            start_method=start_method,
            probe_interval_s=probe_interval_s,
            start_timeout_s=start_timeout_s,
            shutdown_timeout_s=shutdown_timeout_s,
        )

    def _new_handle(self, spec: EngineSpec, index: int) -> WorkerHandle:
        return WorkerHandle(
            spec,
            index=index,
            name=self._name,
            start_method=self._start_method,
            start_timeout_s=self._start_timeout_s,
            shutdown_timeout_s=self._shutdown_timeout_s,
        )

    # -- introspection ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    @property
    def replicas(self) -> int:
        """The number of replica slots (healthy or not)."""
        with self._cond:
            return len(self._handles)

    @property
    def healthy_replicas(self) -> int:
        """How many replicas can currently take a batch."""
        with self._cond:
            return sum(1 for h in self._handles if h.state == _HEALTHY)

    @property
    def restart_count(self) -> int:
        """Total replica restarts over the pool's lifetime."""
        with self._cond:
            return self._restart_total

    @property
    def dispatch_width(self) -> int:
        """How many batches may usefully run concurrently (>= 1).

        Pinned pools (stateful noise) always report 1; otherwise the healthy
        replica count, floored at 1 so schedulers never starve a pool whose
        replicas are all mid-restart.
        """
        if self._pinned:
            return 1
        return max(1, self.healthy_replicas)

    def pool_health(self) -> dict[str, int]:
        """A telemetry snapshot: healthy/total replicas and restart total."""
        with self._cond:
            return {
                "healthy": sum(1 for h in self._handles if h.state == _HEALTHY),
                "replicas": len(self._handles),
                "restarts": self._restart_total,
            }

    def replica_pids(self) -> list[int | None]:
        """The live process id of each replica slot, in slot order."""
        with self._cond:
            return [h.pid for h in self._handles]

    # -- dispatch --------------------------------------------------------------

    def _acquire(self) -> tuple[WorkerHandle, EngineWorker]:
        """Claim the least-loaded healthy replica (waits through restarts)."""
        deadline = time.monotonic() + self._start_timeout_s
        with self._cond:
            while True:
                if self._closed:
                    raise WorkerClosedError("replica pool is closed")
                candidates = [h for h in self._handles if h.state == _HEALTHY]
                if self._pinned:
                    # Stateful noise: serialise onto the first healthy
                    # replica so the RNG draw order stays single-stream.
                    candidates = candidates[:1]
                    if candidates and candidates[0].inflight > 0:
                        candidates = []
                if candidates:
                    handle = min(candidates, key=lambda h: (h.inflight, h.index))
                    handle.inflight += 1
                    return handle, handle.worker
                if time.monotonic() > deadline:
                    raise RemoteEngineError(
                        f"no healthy replica of {self._name!r} became available "
                        f"within {self._start_timeout_s:.0f}s"
                    )
                self._cond.wait(timeout=0.05)

    def _release(self, handle: WorkerHandle) -> None:
        with self._cond:
            handle.inflight -= 1
            self._cond.notify_all()

    def _acquire_all_healthy(self) -> list[tuple[WorkerHandle, EngineWorker]]:
        """Claim every healthy replica at once (for statistics sweeps)."""
        with self._cond:
            if self._closed:
                raise WorkerClosedError("replica pool is closed")
            claimed = [(h, h.worker) for h in self._handles if h.state == _HEALTHY]
            for handle, _worker in claimed:
                handle.inflight += 1
            return claimed

    def run_timed(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
        *,
        trace_ctx: tuple | None = None,
        span_sink: list | None = None,
    ) -> tuple[np.ndarray, float, list[tuple[int, float, str]]]:
        """Run on a healthy replica -> ``(outputs, engine seconds, records)``.

        A replica that dies mid-batch surfaces here as a requeue: the batch
        is retried on a sibling (the dead slot restarts in the background)
        and only fails once every slot has rejected it.  Records are
        ``(n_samples, elapsed_s, replica)`` so telemetry can attribute
        engine time per replica.

        With ``trace_ctx``/``span_sink`` set (see
        :meth:`ProcessEngine.run_timed`), every *attempt* leaves a span in
        the sink: a crashed attempt contributes an ``engine`` span with
        ``status="crashed"`` attributed to the dead replica (timed
        parent-side -- the worker never replied), and the successful attempt
        contributes its ``worker_ipc`` span plus the worker-side ``engine``
        span attributed to the sibling that actually served it.  That is how
        a SIGKILL mid-batch stays visible in the request's trace.
        """
        batch = np.asarray(inputs, dtype=np.float64)
        has_override = micro_batch is not _USE_DEFAULT
        extra = (
            return_codes,
            has_override,
            micro_batch if has_override else None,
            trace_ctx,
        )
        attempts = 0
        max_attempts = max(2, len(self._handles) + 1)
        while True:
            handle, worker = self._acquire()
            replica, pid = str(handle.index), handle.pid
            attempt_start = time.monotonic()
            try:
                outputs, meta = worker.request("run", array=batch, extra=extra)
            except (WorkerCrashError, WorkerClosedError) as error:
                if span_sink is not None:
                    span_sink.append(
                        {
                            "name": "engine",
                            "start_s": attempt_start,
                            "end_s": time.monotonic(),
                            "pid": pid,
                            "replica": replica,
                            "status": "crashed",
                            "error": type(error).__name__,
                        }
                    )
                self._on_crash(handle, worker)
                attempts += 1
                if attempts >= max_attempts:
                    raise RemoteEngineError(
                        f"batch failed on {attempts} replicas of "
                        f"{self._name!r}: {error}"
                    ) from error
                continue
            finally:
                self._release(handle)
            break
        if span_sink is not None:
            span_sink.append(
                {
                    "name": "worker_ipc",
                    "start_s": attempt_start,
                    "end_s": time.monotonic(),
                    "replica": replica,
                    "status": "ok",
                    "requeues": attempts,
                }
            )
            span_sink.extend(
                {**span, "replica": replica, "status": "ok"}
                for span in meta.get("spans", ())
            )
        records = [
            (int(n), float(elapsed), str(handle.index))
            for n, elapsed in meta["records"]
        ]
        for n_samples, elapsed_s, _replica in records:
            for probe in list(self._run_probes):
                probe(n_samples, elapsed_s)
        _notify_completion(
            self._completion_callbacks,
            {
                "model": self._name,
                "n_samples": int(batch.shape[0]),
                "engine_time_s": float(meta["engine_time_s"]),
                "replica": str(handle.index),
                "requeues": attempts,
            },
        )
        return outputs, meta["engine_time_s"], records

    def run(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> np.ndarray:
        """Run the integer path end-to-end on a healthy replica."""
        outputs, _elapsed, _records = self.run_timed(
            inputs, return_codes=return_codes, micro_batch=micro_batch
        )
        return outputs

    def predict(
        self, inputs: np.ndarray, micro_batch: int | None = _USE_DEFAULT
    ) -> np.ndarray:
        """Class predictions from the pool-hosted integer path."""
        return np.argmax(self.run(inputs, micro_batch=micro_batch), axis=-1)

    # -- self-healing ----------------------------------------------------------

    def set_lifecycle_observer(self, observer: Callable[[dict], None] | None) -> None:
        """Attach (or clear) the pool's single lifecycle-event observer.

        The observer receives one dict per event -- ``{"event":
        "replica_crash" | "replica_restart" | "replica_restart_failed",
        "model": name, "replica": slot index, ...}`` -- from whatever thread
        detected the event (dispatch, restart or prober threads).  Observer
        exceptions are logged and swallowed; assignment is idempotent, so
        the serving layer may re-wire on every registry generation change.
        """
        self._lifecycle_observer = observer

    def _emit_lifecycle(self, event: dict) -> None:
        observer = self._lifecycle_observer
        if observer is None:
            return
        try:
            observer(event)
        except Exception:
            logging.getLogger(__name__).exception("pool lifecycle observer raised")

    def _on_crash(self, handle: WorkerHandle, worker: EngineWorker | None) -> None:
        """Mark a replica dead (once) and schedule its background restart."""
        with self._cond:
            if self._closed or handle.state != _HEALTHY:
                return
            if worker is not None and handle.worker is not worker:
                return  # the slot already moved on to a fresh worker
            handle.state = _DEAD
            self._cond.notify_all()
        self._emit_lifecycle(
            {
                "event": "replica_crash",
                "model": self._name,
                "replica": handle.index,
                "pid": handle.pid,
            }
        )
        self._spawn_restart(handle)

    def _spawn_restart(self, handle: WorkerHandle) -> None:
        thread = threading.Thread(
            target=self._restart,
            args=(handle,),
            name=f"replica-restart-{handle.name}",
            daemon=True,
        )
        with self._threads_lock:
            self._restart_threads = [t for t in self._restart_threads if t.is_alive()]
            self._restart_threads.append(thread)
        thread.start()

    def _restart(self, handle: WorkerHandle) -> None:
        """Replace a dead slot's worker with a fresh one (one claimant wins)."""
        with self._cond:
            if self._closed or handle.state != _DEAD:
                return
            handle.state = _RESTARTING
            handle.spec = self._spec
        old = handle.worker
        if old is not None:
            old.close()  # reap the corpse; reclaims its shared-memory blocks
        try:
            worker = handle.spawn()
        except BaseException:
            with self._cond:
                if handle.state == _RESTARTING:
                    # The prober retries after a growing backoff, so a
                    # persistent boot failure cannot become a hot spawn loop.
                    handle.restart_backoff_s = min(
                        max(_RESTART_BACKOFF_MIN_S, handle.restart_backoff_s * 2),
                        _RESTART_BACKOFF_MAX_S,
                    )
                    handle.next_restart_at = (
                        time.monotonic() + handle.restart_backoff_s
                    )
                    handle.state = _DEAD
                self._cond.notify_all()
            self._emit_lifecycle(
                {
                    "event": "replica_restart_failed",
                    "model": self._name,
                    "replica": handle.index,
                    "retry_backoff_s": handle.restart_backoff_s,
                }
            )
            return
        restarted = False
        with self._cond:
            if self._closed or handle.state != _RESTARTING:
                discard = worker
            else:
                handle.worker = worker
                handle.state = _HEALTHY
                handle.restarts += 1
                handle.restart_backoff_s = 0.0
                handle.next_restart_at = 0.0
                self._restart_total += 1
                discard = None
                restarted = True
                self._cond.notify_all()
        if discard is not None:
            discard.close()
        if restarted:
            self._emit_lifecycle(
                {
                    "event": "replica_restart",
                    "model": self._name,
                    "replica": handle.index,
                    "pid": handle.pid,
                    "restarts": handle.restarts,
                }
            )

    def _probe_loop(self) -> None:
        """Periodic liveness sweep: restart dead and silently-died replicas."""
        while True:
            with self._cond:
                if self._closed:
                    return
                self._cond.wait(timeout=self._probe_interval_s)
                if self._closed:
                    return
                snapshot = [(h, h.worker, h.state) for h in self._handles]
            for handle, worker, state in snapshot:
                if state == _DEAD:
                    if time.monotonic() >= handle.next_restart_at:
                        self._spawn_restart(handle)  # an earlier restart failed
                elif state == _HEALTHY and (worker is None or not worker.is_alive):
                    self._on_crash(handle, worker)

    # -- probes / statistics ---------------------------------------------------

    def add_run_probe(
        self, probe: Callable[[int, float], None]
    ) -> Callable[[int, float], None]:
        """Attach a ``probe(n_samples, worker_elapsed_s)`` run callback."""
        self._run_probes.append(probe)
        return probe

    def remove_run_probe(self, probe: Callable[[int, float], None]) -> None:
        """Detach a probe previously added with :meth:`add_run_probe`."""
        self._run_probes.remove(probe)

    def add_completion_callback(
        self, callback: Callable[[dict], None]
    ) -> Callable[[dict], None]:
        """Attach a batch-completion callback (see :func:`_notify_completion`).

        Fired once per batch that ultimately *succeeded*, after any
        crash-requeues: ``replica`` is the slot index that executed the
        batch and ``requeues`` counts how many dead siblings rejected it
        first -- so an observer (e.g. the async fault-injection tests) can
        assert that a SIGKILL mid-batch cost a requeue but lost nothing.
        """
        self._completion_callbacks.append(callback)
        return callback

    def remove_completion_callback(self, callback: Callable[[dict], None]) -> None:
        """Detach a callback added with :meth:`add_completion_callback`."""
        self._completion_callbacks.remove(callback)

    def layer_statistics(self) -> dict[str, LayerStatistics]:
        """Per-layer statistics merged across every healthy replica."""
        merged: dict[str, LayerStatistics] = {}
        for handle, worker in self._acquire_all_healthy():
            try:
                _none, meta = worker.request("layer_stats")
            except (WorkerCrashError, WorkerClosedError):
                self._on_crash(handle, worker)
                continue
            finally:
                self._release(handle)
            for layer_name, stats in meta["stats"].items():
                if layer_name in merged:
                    merged[layer_name].merge_runs(stats)
                else:
                    merged[layer_name] = stats
        return merged

    def network_statistics(self) -> LayerStatistics:
        """Network-wide totals (crossbar/column counts sum across layers)."""
        total = LayerStatistics(layer_name=self._name)
        for stats in self.layer_statistics().values():
            total.merge_layers(stats)
        return total

    def reset_statistics(self) -> None:
        """Clear accumulated statistics on every healthy replica."""
        for handle, worker in self._acquire_all_healthy():
            try:
                worker.request("reset_stats")
            except (WorkerCrashError, WorkerClosedError):
                self._on_crash(handle, worker)
            finally:
                self._release(handle)

    # -- rolling replace -------------------------------------------------------

    def replace(
        self,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        float32: bool = False,
        blas_threads: int | None = 1,
        replicas: int | None = None,
        plan=None,
    ) -> None:
        """Roll a new spec through the pool, one replica at a time.

        Each slot's fresh worker is booted *before* its old one is retired,
        so at every instant at least ``replicas - 1`` slots serve traffic
        and the model never becomes unserveable.  ``replicas`` resizes the
        pool as part of the roll (``None`` keeps the current width).
        ``plan`` ships the new spec's compiled
        :class:`~repro.runtime.plan.ModelPlan`, so each freshly booted
        replacement boots from pre-encoded chunks instead of re-planning.
        """
        if not model.is_calibrated:
            raise ValueError(f"model {model.name!r} must be calibrated first")
        spec = EngineSpec(
            model=model,
            config=config,
            noise=noise,
            micro_batch=micro_batch,
            float32=float32,
            sys_path=tuple(sys.path),
            blas_threads=blas_threads,
            plan=plan,
        )
        try:
            pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            raise ValueError(
                "engine spec is not picklable (model, config and noise must "
                f"survive a process boundary): {error!r}"
            ) from error
        with self._replace_lock:
            with self._cond:
                if self._closed:
                    raise WorkerClosedError("replica pool is closed")
                target = len(self._handles) if replicas is None else int(replicas)
                if target < 1:
                    raise ValueError("replicas must be >= 1")
                self._spec = spec
                self.model = model
                self._name = model.name
                self._pinned = _needs_pinning(spec.noise)
                current = list(self._handles)
            for handle in current[:target]:
                self._swap_handle(handle, spec)
            self._resize_to(target, spec)

    def _swap_handle(self, handle: WorkerHandle, spec: EngineSpec) -> None:
        """Boot a fresh worker for one slot, then retire its old worker."""
        with self._cond:
            if self._closed or handle.state == _CLOSED:
                return
            handle.spec = spec
        worker = handle.spawn()  # slow; the old replica keeps serving meanwhile
        with self._cond:
            deadline = time.monotonic() + self._start_timeout_s
            while (
                not self._closed
                and handle.state != _CLOSED
                and (handle.inflight > 0 or handle.state == _RESTARTING)
                and time.monotonic() < deadline
            ):
                self._cond.wait(timeout=0.05)
            if self._closed or handle.state == _CLOSED:
                old, fresh = None, worker
            else:
                old, fresh = handle.worker, None
                handle.worker = worker
                handle.state = _HEALTHY
                self._cond.notify_all()
        if fresh is not None:
            fresh.close()  # the pool went away mid-swap
        elif old is not None:
            old.close()

    def _resize_to(self, target: int, spec: EngineSpec) -> None:
        """Grow or shrink the pool to ``target`` slots (replace_lock held)."""
        while True:
            with self._cond:
                if self._closed or len(self._handles) >= target:
                    break
                index = len(self._handles)
            handle = self._new_handle(spec, index)
            handle.start()
            with self._cond:
                if self._closed:
                    handle.state = _CLOSED
                    stray = handle.worker
                else:
                    self._handles.append(handle)
                    self._cond.notify_all()
                    stray = None
            if stray is not None:
                stray.close()
                break
        victims: list[WorkerHandle] = []
        with self._cond:
            while len(self._handles) > target:
                victims.append(self._handles.pop())
        for handle in victims:
            with self._cond:
                deadline = time.monotonic() + self._shutdown_timeout_s
                while (
                    handle.inflight > 0
                    and not self._closed
                    and time.monotonic() < deadline
                ):
                    self._cond.wait(timeout=0.05)
                handle.state = _CLOSED
            if handle.worker is not None:
                handle.worker.close()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain and shut down every replica (idempotent).

        In-flight batches are given ``shutdown_timeout_s`` to drain, the
        prober and any restart threads are joined, then every worker is
        closed -- so no child process and no shared-memory block outlives
        the pool.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
            handles = list(self._handles)
            deadline = time.monotonic() + self._shutdown_timeout_s
            while any(h.inflight > 0 for h in handles):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(timeout=min(remaining, 0.05))
            for handle in handles:
                handle.state = _CLOSED
        if self._prober is not None:
            self._prober.join(timeout=self._shutdown_timeout_s)
        with self._threads_lock:
            restarts = list(self._restart_threads)
            self._restart_threads = []
        for thread in restarts:
            thread.join(timeout=self._start_timeout_s)
        for handle in handles:
            if handle.worker is not None:
                handle.worker.close()

    def __enter__(self) -> "ReplicaPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        health = self.pool_health()
        return (
            f"ReplicaPool(model={self._name!r}, "
            f"healthy={health['healthy']}/{health['replicas']}, "
            f"restarts={health['restarts']})"
        )
