"""Process-based engine workers with a zero-copy shared-memory request path.

The thread-based serving stack (:mod:`repro.serve`) overlaps engine calls of
different models, but the simulator's digital stages -- quantize/dequantize,
phase extraction, statistics -- are Python/NumPy code that holds the GIL for
most of its runtime, so threads only buy concurrency, not parallelism.  This
module moves each engine into its own *process*:

* :class:`EngineWorker` is the transport: it forks/spawns a child process
  that unpickles a model spec, builds a :class:`~repro.runtime.NetworkEngine`
  (its own executor pool, its own weight cache) and serves requests from a
  pipe until told to close.
* Input and output arrays never travel through the pipe or the pickler.
  Each direction has a dedicated :class:`multiprocessing.shared_memory`
  block; a small framed header at the start of the block carries the
  array's shape/dtype and the request sequence number, and the pipe only
  moves tiny control tuples (block name, flags, timings).  The worker runs
  the engine directly on a mapped view of the input payload (zero consume
  copies); the parent materialises each output out of the shared block
  once, because the block is reused by the very next request.  Blocks grow
  on demand and the stale block is unlinked once the peer has switched to
  the new name.
* :class:`ProcessEngine` is the :class:`~repro.runtime.NetworkEngine`-shaped
  facade over one worker: ``run()`` / ``layer_statistics()`` /
  ``add_run_probe()`` behave like the in-process engine, outputs are
  bit-identical (same pickled weights, same seeded noise state, same
  micro-batching), and run probes fire with *worker-side* engine timings so
  telemetry calibration never charges IPC overhead to the model.

The serving layer hosts one worker per process-backed model
(``ModelRegistry.register(..., backend="process")``); because the worker owns
all mutable engine state, the server dispatches to it without any executor
locks, and two process-backed models execute truly in parallel on separate
cores.
"""

from __future__ import annotations

import itertools
import pickle
import struct
import sys
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context, shared_memory
from typing import Callable

import numpy as np

from repro.analog.noise import NoiseModel
from repro.core.executor import LayerStatistics, PimLayerConfig
from repro.nn.model import QuantizedModel

__all__ = ["EngineSpec", "EngineWorker", "ProcessEngine", "RemoteEngineError"]

#: Sentinel mirroring :data:`repro.runtime.engine._USE_DEFAULT` (imported
#: lazily in methods to keep module import light for spawned workers).
_USE_DEFAULT = object()

#: Frame header layout at offset 0 of every shared-memory block:
#: magic u32, sequence u64, flags u8, dtype string (16 bytes, NUL padded),
#: ndim u8, then a fixed 8-slot u64 shape.  The payload starts at a fixed
#: 128-byte offset so the header never aliases array data.
_FRAME = struct.Struct("<IQB16sB8Q")
_FRAME_MAGIC = 0x52504631  # "RPF1"
_MAX_DIMS = 8
_PAYLOAD_OFFSET = 128
_MIN_BLOCK_BYTES = 1 << 16

#: How long :meth:`EngineWorker.start` waits for the child to build its
#: engine before declaring the launch failed.
_BOOT_TIMEOUT_S = 120.0


class RemoteEngineError(RuntimeError):
    """An engine failure inside a worker that could not be re-raised as-is.

    Raised when the worker-side exception does not survive pickling; the
    message carries the original type, message and remote traceback text.
    """


def _write_frame(shm: shared_memory.SharedMemory, seq: int, array: np.ndarray) -> None:
    """Write ``array`` into the block behind a framed header."""
    if array.ndim > _MAX_DIMS:
        raise ValueError(f"arrays beyond {_MAX_DIMS} dimensions are unsupported")
    shape = array.shape + (0,) * (_MAX_DIMS - array.ndim)
    _FRAME.pack_into(
        shm.buf,
        0,
        _FRAME_MAGIC,
        seq,
        0,
        array.dtype.str.encode("ascii"),
        array.ndim,
        *shape,
    )
    destination = np.ndarray(
        array.shape, dtype=array.dtype, buffer=shm.buf, offset=_PAYLOAD_OFFSET
    )
    np.copyto(destination, array)


def _read_frame(shm: shared_memory.SharedMemory, seq: int) -> np.ndarray:
    """A zero-copy array view over the block's framed payload."""
    magic, frame_seq, _flags, dtype_tag, ndim, *shape = _FRAME.unpack_from(shm.buf, 0)
    if magic != _FRAME_MAGIC:
        raise RuntimeError("shared-memory frame is corrupt (bad magic)")
    if frame_seq != seq:
        raise RuntimeError(
            f"shared-memory frame out of sync: expected seq {seq}, found {frame_seq}"
        )
    dtype = np.dtype(dtype_tag.rstrip(b"\x00").decode("ascii"))
    return np.ndarray(
        tuple(shape[:ndim]), dtype=dtype, buffer=shm.buf, offset=_PAYLOAD_OFFSET
    )


class _ArraySender:
    """The owning side of one transport direction: create, grow, unlink."""

    def __init__(self) -> None:
        self._shm: shared_memory.SharedMemory | None = None

    def send(self, seq: int, array: np.ndarray) -> str:
        """Frame ``array`` into the current block (growing it) -> block name."""
        array = np.ascontiguousarray(array)
        needed = _PAYLOAD_OFFSET + array.nbytes
        if self._shm is None or self._shm.size < needed:
            # Grow by replacement: the old block stays mapped (and thus
            # valid) wherever the peer still holds it; unlinking here only
            # removes the name.  The peer drops its stale attachment when
            # the next control message names the new block.
            self.close()
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(needed, _MIN_BLOCK_BYTES)
            )
        _write_frame(self._shm, seq, array)
        return self._shm.name

    def close(self) -> None:
        """Unmap and unlink the owned block (idempotent)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None


class _ArrayReceiver:
    """The attaching side: map blocks by name, never unlink them."""

    def __init__(self) -> None:
        self._attached: dict[str, shared_memory.SharedMemory] = {}

    def view(self, name: str, seq: int) -> np.ndarray:
        """A zero-copy view of the named block's framed payload."""
        shm = self._attached.get(name)
        if shm is None:
            # The sender replaced its block: every previous attachment is
            # stale (one live block per direction), so unmap them first.
            # Attaching re-registers the name with the resource tracker,
            # which parent and workers share (its fd travels with both fork
            # and spawn), so the tracker's name set stays deduplicated and
            # only the owner's unlink unregisters it.
            self.close()
            shm = shared_memory.SharedMemory(name=name)
            self._attached[name] = shm
        return _read_frame(shm, seq)

    def close(self) -> None:
        """Unmap every attachment (the owner unlinks)."""
        for shm in self._attached.values():
            shm.close()
        self._attached.clear()


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to rebuild a :class:`NetworkEngine`.

    The spec is pickled once at launch; the worker builds its own executor
    pool and weight cache from it, so no parent-side state (and none of the
    parent's locks) is shared.  ``sys_path`` replays the parent's import
    path so spawned workers resolve ``repro`` exactly like the parent did.
    """

    model: QuantizedModel
    config: PimLayerConfig | None = None
    noise: NoiseModel | None = None
    micro_batch: int | None = None
    float32: bool = False
    sys_path: tuple[str, ...] = field(default_factory=tuple)


def _build_engine_from_spec(spec: EngineSpec):
    """Worker-side: compile the spec into a private in-process engine."""
    from repro.runtime.cache import EncodedWeightCache, ExecutorPool
    from repro.runtime.engine import NetworkEngine

    pool = ExecutorPool(weight_cache=EncodedWeightCache(), float32=spec.float32)
    return NetworkEngine.build(
        spec.model,
        spec.config,
        noise=spec.noise,
        micro_batch=spec.micro_batch,
        pool=pool,
        float32=spec.float32,
    )


def _error_message(seq: int, error: BaseException) -> tuple:
    """An ``("err", ...)`` reply: pickled exception plus plain-text fallback."""
    import traceback

    tb_text = "".join(traceback.format_exception(error))
    try:
        payload = pickle.dumps(error)
        pickle.loads(payload)  # some exceptions pickle but refuse to rebuild
    except Exception:
        payload = None
    return ("err", seq, payload, type(error).__name__, str(error), tb_text)


def _raise_remote(message: tuple) -> None:
    """Re-raise a worker-side failure in the caller."""
    _kind, _seq, payload, type_name, text, tb_text = message
    if payload is not None:
        try:
            error = pickle.loads(payload)
        except Exception:
            error = None
        if isinstance(error, BaseException):
            error.remote_traceback = tb_text
            raise error
    raise RemoteEngineError(
        f"{type_name} in engine worker: {text}\n--- worker traceback ---\n{tb_text}"
    )


def _engine_worker_main(spec_bytes: bytes, requests, results) -> None:
    """The worker process: build the engine, then serve the request pipe.

    Replies are ``("ok", seq, block_name_or_None, meta_dict)`` or the
    ``("err", ...)`` tuple of :func:`_error_message`.  A ``run`` reply's meta
    carries the worker-side engine wall time and the engine-run records
    ``[(n_samples, elapsed_s)]`` the parent merges into its telemetry.
    """
    receiver = _ArrayReceiver()
    sender = _ArraySender()
    try:
        try:
            spec: EngineSpec = pickle.loads(spec_bytes)
            for path in reversed(spec.sys_path):
                if path not in sys.path:
                    sys.path.insert(0, path)
            engine = _build_engine_from_spec(spec)
        except BaseException as error:
            results.send(_error_message(0, error))
            return
        results.send(("ok", 0, None, {}))
        while True:
            try:
                message = requests.recv()
            except (EOFError, OSError):  # parent died or closed the pipe
                return
            kind, seq = message[0], message[1]
            if kind == "close":
                return
            try:
                if kind == "run":
                    _, _, block, return_codes, has_override, micro_batch = message
                    inputs = receiver.view(block, seq)
                    start = time.perf_counter()
                    if has_override:
                        outputs = engine.run(
                            inputs, return_codes=return_codes, micro_batch=micro_batch
                        )
                    else:
                        outputs = engine.run(inputs, return_codes=return_codes)
                    elapsed = time.perf_counter() - start
                    out_block = sender.send(seq, outputs)
                    meta = {
                        "engine_time_s": elapsed,
                        "records": [(int(inputs.shape[0]), elapsed)],
                    }
                    results.send(("ok", seq, out_block, meta))
                elif kind == "layer_stats":
                    stats = engine.layer_statistics()
                    results.send(("ok", seq, None, {"stats": stats}))
                elif kind == "reset_stats":
                    engine.reset_statistics()
                    results.send(("ok", seq, None, {}))
                else:
                    raise ValueError(f"unknown worker request kind {kind!r}")
            except BaseException as error:
                results.send(_error_message(seq, error))
    finally:
        sender.close()
        receiver.close()
        requests.close()
        results.close()


def _default_start_method() -> str:
    """``fork`` where available *and* the parent is single-threaded.

    Worker-side state is fork-safe (the worker builds its own pool, cache
    and locks), but forking a multi-threaded parent can duplicate a lock
    some other thread held mid-operation -- e.g. registering a process
    backend while an :class:`~repro.serve.InferenceServer` is already
    running its scheduler/worker threads.  In that case fall back to
    ``spawn``, which starts the worker from a clean interpreter.
    """
    if "fork" in get_all_start_methods() and threading.active_count() == 1:
        return "fork"
    return "spawn"


class EngineWorker:
    """Parent-side handle to one engine worker process.

    Owns the request/result pipes and the input shared-memory block (the
    worker owns the output block); serialises callers with an internal lock,
    so one worker serves one request at a time -- exactly the per-model
    serialisation the server guarantees anyway.
    """

    def __init__(
        self,
        spec: EngineSpec,
        start_method: str | None = None,
        name: str | None = None,
    ):
        try:
            spec_bytes = pickle.dumps(spec, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:
            raise ValueError(
                "engine spec is not picklable (model, config and noise must "
                f"survive a process boundary): {error!r}"
            ) from error
        # Start the shared-memory resource tracker *before* forking so the
        # worker inherits it instead of lazily starting its own: with one
        # shared tracker, create/attach registrations of the same block
        # deduplicate and exactly the owner's unlink unregisters it.  (Spawn
        # always ships the tracker fd in its preparation data.)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:  # pragma: no cover - tracker internals vary
            pass
        context = get_context(start_method or _default_start_method())
        request_read, request_write = context.Pipe(duplex=False)
        result_read, result_write = context.Pipe(duplex=False)
        self._process = context.Process(
            target=_engine_worker_main,
            args=(spec_bytes, request_read, result_write),
            name=f"engine-worker-{name or spec.model.name}",
            daemon=True,
        )
        self._process.start()
        # Close the child's pipe ends in the parent so EOF propagates when
        # either side goes away.
        request_read.close()
        result_write.close()
        self._requests = request_write
        self._results = result_read
        self._sender = _ArraySender()
        self._receiver = _ArrayReceiver()
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._closed = False
        try:
            self._wait_reply(0, timeout=_BOOT_TIMEOUT_S)
        except BaseException:
            self.close()
            raise

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or the launch failed)."""
        return self._closed

    @property
    def pid(self) -> int | None:
        """The worker process id (``None`` once closed)."""
        return None if self._closed else self._process.pid

    def _wait_reply(self, seq: int, timeout: float | None = None) -> tuple:
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._results.poll(0.05):
            if not self._process.is_alive():
                raise RemoteEngineError(
                    "engine worker died without replying "
                    f"(exit code {self._process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("engine worker did not reply in time")
        message = self._results.recv()
        if message[0] == "err":
            _raise_remote(message)
        if message[1] != seq:
            raise RemoteEngineError(
                f"engine worker replied out of sync: expected {seq}, got {message[1]}"
            )
        return message

    def request(
        self, kind: str, array: np.ndarray | None = None, extra: tuple = ()
    ) -> tuple[np.ndarray | None, dict]:
        """One request/reply round trip -> ``(output array or None, meta)``.

        The output array is copied out of the worker's shared block before
        the lock is released: the block is reused by the very next request,
        so views must never escape this method.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("engine worker is closed")
            seq = next(self._seq)
            block = None if array is None else self._sender.send(seq, array)
            try:
                self._requests.send((kind, seq, block, *extra))
            except (BrokenPipeError, OSError) as error:
                raise RemoteEngineError(
                    "engine worker died before the request could be sent "
                    f"(exit code {self._process.exitcode})"
                ) from error
            message = self._wait_reply(seq)
            out_block, meta = message[2], message[3]
            if out_block is None:
                return None, meta
            return np.array(self._receiver.view(out_block, seq), copy=True), meta

    def close(self, join_timeout: float = 10.0) -> None:
        """Shut the worker down (idempotent): close request pipe, join, reap."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._requests.send(("close", next(self._seq), None))
            except (BrokenPipeError, OSError):  # worker already gone
                pass
            self._requests.close()
            self._results.close()
            self._process.join(timeout=join_timeout)
            if self._process.is_alive():  # pragma: no cover - stuck worker
                self._process.terminate()
                self._process.join(timeout=join_timeout)
            self._process.close()
            self._sender.close()
            self._receiver.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"pid={self._process.pid}"
        return f"EngineWorker({state})"


class ProcessEngine:
    """A :class:`NetworkEngine`-shaped facade over one :class:`EngineWorker`.

    Built via :meth:`launch`; bit-identical to the in-process engine the
    worker hosts (same pickled weights and calibration, same seeded noise
    state, same micro-batching).  ``worker_owns_state`` tells the serving
    layer that all mutable engine state lives worker-side, so no executor
    locks are needed -- per-model request serialisation happens on the
    worker's pipe instead.
    """

    #: Serving-layer contract: every executor/noise object lives in the
    #: worker process, so dispatch must not (and cannot) take executor locks.
    worker_owns_state = True

    def __init__(self, model: QuantizedModel, worker: EngineWorker):
        self.model = model
        self.worker = worker
        self._run_probes: list[Callable[[int, float], None]] = []

    @classmethod
    def launch(
        cls,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        float32: bool = False,
        start_method: str | None = None,
    ) -> "ProcessEngine":
        """Start a worker process hosting this model and wait until ready.

        Raises :class:`ValueError` when the spec does not pickle, and
        re-raises worker-side build failures (e.g. an uncalibrated model)
        in the caller.
        """
        if not model.is_calibrated:
            raise ValueError(f"model {model.name!r} must be calibrated first")
        spec = EngineSpec(
            model=model,
            config=config,
            noise=noise,
            micro_batch=micro_batch,
            float32=float32,
            sys_path=tuple(sys.path),
        )
        return cls(model, EngineWorker(spec, start_method=start_method))

    @property
    def closed(self) -> bool:
        """Whether the worker has been shut down."""
        return self.worker.closed

    # -- execution ------------------------------------------------------------

    def run_timed(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> tuple[np.ndarray, float, list[tuple[int, float]]]:
        """Run remotely -> ``(outputs, worker engine seconds, run records)``.

        The timing and the ``(n_samples, elapsed_s)`` records are measured
        *inside* the worker around the engine call, so telemetry calibration
        sees pure engine time, never pipe/shared-memory overhead.
        """
        batch = np.asarray(inputs, dtype=np.float64)
        has_override = micro_batch is not _USE_DEFAULT
        outputs, meta = self.worker.request(
            "run",
            array=batch,
            extra=(return_codes, has_override, micro_batch if has_override else None),
        )
        for n_samples, elapsed_s in meta["records"]:
            for probe in list(self._run_probes):
                probe(n_samples, elapsed_s)
        return outputs, meta["engine_time_s"], list(meta["records"])

    def run(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> np.ndarray:
        """Run the integer path end-to-end in the worker process."""
        outputs, _elapsed, _records = self.run_timed(
            inputs, return_codes=return_codes, micro_batch=micro_batch
        )
        return outputs

    def predict(
        self, inputs: np.ndarray, micro_batch: int | None = _USE_DEFAULT
    ) -> np.ndarray:
        """Class predictions from the worker-hosted integer path."""
        return np.argmax(self.run(inputs, micro_batch=micro_batch), axis=-1)

    # -- probes / statistics ---------------------------------------------------

    def add_run_probe(
        self, probe: Callable[[int, float], None]
    ) -> Callable[[int, float], None]:
        """Attach a ``probe(n_samples, worker_elapsed_s)`` run callback."""
        self._run_probes.append(probe)
        return probe

    def remove_run_probe(self, probe: Callable[[int, float], None]) -> None:
        """Detach a probe previously added with :meth:`add_run_probe`."""
        self._run_probes.remove(probe)

    def layer_statistics(self) -> dict[str, LayerStatistics]:
        """Per-layer statistics accumulated by the worker-side executors."""
        _none, meta = self.worker.request("layer_stats")
        return meta["stats"]

    def network_statistics(self) -> LayerStatistics:
        """Network-wide totals (crossbar/column counts sum across layers)."""
        total = LayerStatistics(layer_name=self.model.name)
        for stats in self.layer_statistics().values():
            total.merge_layers(stats)
        return total

    def reset_statistics(self) -> None:
        """Clear accumulated statistics on every worker-side executor."""
        self.worker.request("reset_stats")

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker process down (idempotent)."""
        self.worker.close()

    def __enter__(self) -> "ProcessEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessEngine(model={self.model.name!r}, worker={self.worker!r})"
