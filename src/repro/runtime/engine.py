"""End-to-end batched network execution.

:class:`NetworkEngine` runs a calibrated
:class:`~repro.nn.model.QuantizedModel` through per-layer PIM executors with
configurable micro-batching.  It is the batched-inference front end the
experiment harnesses use: compile once (adaptive slicing, center selection,
weight encoding -- all cached), then stream arbitrarily large input batches
through the vectorized executors without blowing up the working set.

Three construction paths:

* :meth:`NetworkEngine.compile` -- full RAELLA compilation (adaptive weight
  slicing per layer) with vectorized executors.
* :meth:`NetworkEngine.build` -- one uniform :class:`PimLayerConfig` for all
  layers, executors served from an :class:`~repro.runtime.cache.ExecutorPool`
  so repeated experiments reuse programmed crossbars.
* :meth:`NetworkEngine.from_program` -- wrap an existing compiled
  :class:`~repro.core.compiler.RaellaProgram`.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.analog.noise import NoiseModel
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig, RaellaProgram
from repro.core.executor import LayerStatistics, PimLayerConfig, PimLayerExecutor
from repro.nn.layers import MatmulLayer
from repro.nn.model import QuantizedModel
from repro.runtime.cache import ExecutorPool
from repro.runtime.vectorized import VectorizedLayerExecutor

__all__ = ["NetworkEngine"]

#: Sentinel distinguishing "use the engine default" from an explicit ``None``
#: (= one full-batch pass) in per-call ``micro_batch`` overrides.
_USE_DEFAULT = object()


class NetworkEngine:
    """Batched inference over a calibrated model's per-layer PIM executors.

    Parameters
    ----------
    model:
        The calibrated quantized model.
    executors:
        One executor per crossbar-mapped layer, keyed by layer name.
    micro_batch:
        Default number of input samples pushed through the network at a time;
        ``None`` runs the whole batch in one pass (bit-identical to calling
        the executors directly).
    """

    def __init__(
        self,
        model: QuantizedModel,
        executors: dict[str, PimLayerExecutor],
        micro_batch: int | None = None,
    ):
        missing = [
            layer.name
            for layer in model.matmul_layers()
            if layer.name not in executors
        ]
        if missing:
            raise ValueError(f"no executor for layers {missing}")
        self.model = model
        self.executors = dict(executors)
        self.micro_batch = micro_batch
        #: The compiled :class:`~repro.runtime.plan.ModelPlan` this engine was
        #: built against (``None`` for unplanned construction paths).
        self.model_plan = None
        # Telemetry hooks: (n_samples, elapsed_s) callbacks fired after every
        # run().  The list is empty by default and run() does not even start a
        # timer then, so unmetered execution pays nothing.
        self._run_probes: list[Callable[[int, float], None]] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def compile(
        cls,
        model: QuantizedModel,
        config: RaellaCompilerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        test_inputs: np.ndarray | None = None,
        seed: int = 0,
        executor_factory: type[PimLayerExecutor] | None = None,
    ) -> "NetworkEngine":
        """Compile with per-layer adaptive slicing and vectorized executors."""
        compiler = RaellaCompiler(
            config,
            noise=noise,
            executor_factory=executor_factory or VectorizedLayerExecutor,
        )
        program = compiler.compile(model, test_inputs=test_inputs, seed=seed)
        return cls.from_program(program, micro_batch=micro_batch)

    @classmethod
    def build(
        cls,
        model: QuantizedModel,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        micro_batch: int | None = None,
        pool: ExecutorPool | None = None,
        float32: bool | None = None,
        plan=None,
    ) -> "NetworkEngine":
        """Build with one uniform config per layer, executors from a pool.

        ``float32`` requests the vectorized executors' opt-in float32 GEMM
        fast path (bit-identical; applied per chunk only where provably
        exact); ``None`` defers to the pool's default.

        ``plan`` (a compiled :class:`~repro.runtime.plan.ModelPlan`) seeds
        each pooled executor with its layer's
        :class:`~repro.runtime.plan.CompiledLayerPlan`: newly built executors
        boot from the plan's pre-encoded chunks (no weight encoding at all --
        this is how replica workers start from a pickled spec), already-pooled
        ones adopt it, switching onto the planned fast path.  When the plan
        carries a micro-batch policy and no explicit ``micro_batch`` is
        given, the plan's applies.
        """
        # Not ``pool or ExecutorPool()``: an empty pool is falsy (__len__) and
        # a shared pool passed in before first use must still be used.
        pool = pool if pool is not None else ExecutorPool()
        executors = {
            layer.name: pool.get(
                layer,
                config,
                noise=noise,
                float32=float32,
                plan=plan.layer_plan(layer.name) if plan is not None else None,
            )
            for layer in model.matmul_layers()
        }
        if micro_batch is None and plan is not None:
            micro_batch = plan.micro_batch
        engine = cls(model, executors, micro_batch=micro_batch)
        engine.model_plan = plan
        return engine

    @classmethod
    def from_program(
        cls, program: RaellaProgram, micro_batch: int | None = None
    ) -> "NetworkEngine":
        """Wrap the executors of an already-compiled RAELLA program."""
        executors = {
            name: compiled.executor for name, compiled in program.layers.items()
        }
        return cls(program.model, executors, micro_batch=micro_batch)

    # -- execution ------------------------------------------------------------

    def pim_matmul(self, input_codes: np.ndarray, layer: MatmulLayer) -> np.ndarray:
        """PIM mat-mul hook dispatching to the layer's executor."""
        executor = self.executors.get(layer.name)
        if executor is None:
            raise KeyError(f"layer {layer.name!r} has no executor")
        return executor.matmul(input_codes)

    def run(
        self,
        inputs: np.ndarray,
        return_codes: bool = False,
        micro_batch: int | None = _USE_DEFAULT,
    ) -> np.ndarray:
        """Run the integer path end-to-end through the PIM executors.

        ``micro_batch`` overrides the engine default for this call; pass an
        explicit ``None`` to force one full-batch pass.
        """
        resolved = self.micro_batch if micro_batch is _USE_DEFAULT else micro_batch
        if not self._run_probes:
            return self.model.forward_quantized(
                inputs,
                pim_matmul=self.pim_matmul,
                return_codes=return_codes,
                micro_batch=resolved,
            )
        start = time.perf_counter()
        outputs = self.model.forward_quantized(
            inputs,
            pim_matmul=self.pim_matmul,
            return_codes=return_codes,
            micro_batch=resolved,
        )
        elapsed = time.perf_counter() - start
        self._notify_run_probes(int(np.asarray(inputs).shape[0]), elapsed)
        return outputs

    def _notify_run_probes(self, n_samples: int, elapsed_s: float) -> None:
        """Fire every attached run probe (subclasses with their own run paths
        call this too)."""
        for probe in list(self._run_probes):
            probe(n_samples, elapsed_s)

    def add_run_probe(
        self, probe: Callable[[int, float], None]
    ) -> Callable[[int, float], None]:
        """Attach a telemetry probe called as ``probe(n_samples, elapsed_s)``
        after every :meth:`run` (e.g.
        ``TelemetryCollector.engine_probe(model_name)``).  Returns the probe
        so callers can keep the handle for :meth:`remove_run_probe`.
        """
        self._run_probes.append(probe)
        return probe

    def remove_run_probe(self, probe: Callable[[int, float], None]) -> None:
        """Detach a probe previously added with :meth:`add_run_probe`."""
        self._run_probes.remove(probe)

    def predict(
        self, inputs: np.ndarray, micro_batch: int | None = _USE_DEFAULT
    ) -> np.ndarray:
        """Class predictions from the PIM integer path."""
        logits = self.run(inputs, micro_batch=micro_batch)
        return np.argmax(logits, axis=-1)

    # -- statistics -----------------------------------------------------------

    def layer_statistics(self) -> dict[str, LayerStatistics]:
        """Per-layer accumulated statistics."""
        return {name: executor.stats for name, executor in self.executors.items()}

    def network_statistics(self) -> LayerStatistics:
        """Network-wide totals (crossbar/column counts sum across layers)."""
        total = LayerStatistics(layer_name=self.model.name)
        for executor in self.executors.values():
            total.merge_layers(executor.stats)
        return total

    def reset_statistics(self) -> None:
        """Clear accumulated statistics on every executor."""
        for executor in self.executors.values():
            executor.reset_stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NetworkEngine(model={self.model.name!r}, "
            f"layers={len(self.executors)}, micro_batch={self.micro_batch})"
        )
