"""Compile-once execution plans: derive the hot path once, execute it forever.

Profiling the serving stack at small batch sizes (M <= 4, the dispatch-storm
regime the micro-batching scheduler actually produces under latency SLOs)
shows the per-batch cost is no longer the GEMM: it is the per-phase Python
loop around it -- eleven ADC round/clip/saturate passes, speculation masking,
statistics bookkeeping and operand lookups, all re-derived from the layer
configuration on every batch.  None of that depends on the inputs; all of it
is a pure function of ``(model, config, noise-lessness, float32)``.

This module hoists that work into two pickle-able artifacts:

* :class:`CompiledLayerPlan` -- one layer's frozen execution recipe: the
  encoded weight chunks, positional GEMM operand views with their *proven*
  dtypes (:func:`float32_gemm_is_exact`), the phase-extraction shift/mask
  index tables, the pre-broadcast ``(P, 1, S, 1)`` phase x weight-slice scale
  tensor, the speculation-group gather tables, and the noise-draw layout
  contract.
* :class:`ModelPlan` -- the per-layer plans of a whole model plus the
  micro-batch split policy, compiled once by
  :func:`compile_model_plan` (the registry does this at ``register`` time and
  caches it next to the encoded-weight cache) and then *executed* by
  :class:`~repro.runtime.vectorized.VectorizedLayerExecutor` /
  :class:`~repro.runtime.engine.NetworkEngine`, shipped by value inside
  :class:`~repro.runtime.procpool.EngineSpec` so replica workers and rolling
  ``replace()`` never re-encode weights or re-derive schedules.

Bit-identity of the planned fast path is an arithmetic argument, not a hope:
in the noiseless pipeline every column sum, ADC-converted value, scale factor
(a power of two) and digital-centers term is an exact integer represented in
float64 far below ``2**53``, so *any* regrouping of the additions -- batching
the ADC conversion over all phases at once, folding the masked scale-sum into
one tensor contraction -- produces bit-identical outputs and (integer)
statistics counters.  Seeded noise draws are order-sensitive, so noisy
executors keep the reference per-phase loop (the plan still supplies the
extraction tables and operands); :attr:`CompiledLayerPlan.noise_draw_layout`
records the draw-order contract the executor preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.analog.noise import NoiseModel, NoiselessModel
from repro.core.dynamic_input import InputSlicePlan, SpeculationMode
from repro.core.executor import PimLayerConfig, _EncodedChunk

__all__ = [
    "CompiledLayerPlan",
    "ModelPlan",
    "compile_model_plan",
    "float32_gemm_is_exact",
]

#: Largest contiguous integer range float32 represents exactly (24-bit mantissa).
_FLOAT32_EXACT_LIMIT = 1 << 24


def float32_gemm_is_exact(max_slice_value: int, weights: np.ndarray) -> bool:
    """Whether a slice-value x ``weights`` GEMM is provably exact in float32.

    Every product and running partial sum of the GEMM is an integer bounded in
    magnitude by ``max_slice_value * max_c(sum_r |weights[r, c]|)`` (slice
    values are non-negative, so partial sums cannot overshoot this bound
    mid-accumulation either).  If that bound stays below ``2**24`` each
    intermediate is exactly representable in float32, making the float32 GEMM
    bit-identical to the float64 one regardless of BLAS summation order.
    """
    if weights.size == 0:
        return True
    column_abs_sum = np.abs(weights).astype(np.float64).sum(axis=0).max()
    return max_slice_value * column_abs_sum < _FLOAT32_EXACT_LIMIT


class _ChunkOperands:
    """Float GEMM operands of one encoded chunk, prepared once per plan."""

    def __init__(
        self,
        chunk: _EncodedChunk,
        noiseless: bool,
        float32: bool,
        max_slice_value: int,
    ):
        if noiseless:
            # Noiseless sums only need W+ - W-; activity has a closed form.
            weights = chunk.diff_flat
            self.sum_flat_rowsum = chunk.sum_flat.sum(axis=1)
        else:
            # Noise models need both N+ - N- and N+ + N-: stack the weight
            # operands so one GEMM produces both column-sum families.
            weights = np.hstack([chunk.diff_flat, chunk.sum_flat])
            self.sum_flat_rowsum = None
        self.dtype = (
            np.float32
            if float32 and float32_gemm_is_exact(max_slice_value, weights)
            else np.float64
        )
        self.weights = weights.astype(self.dtype)
        self.n_columns = chunk.diff_flat.shape[1]


@dataclass(frozen=True)
class CompiledLayerPlan:
    """One layer's frozen execution recipe (see module docstring).

    Instances are immutable, shareable across executors/threads, and
    pickle-able (the positional ``chunks``/``operands`` tuples replaced the
    old ``id()``-keyed operand dict precisely so plans survive the trip into
    worker processes).  ``phase_shifts``/``phase_masks`` are the explicit
    index tables behind :meth:`extract_phases`; ``scales`` is the
    pre-broadcast ``(n_phases, 1, n_slices, 1)`` tensor of
    ``2**(phase_shift + weight_shift)`` factors; the ``spec_*``/``rec_*``
    arrays are the speculation-group gather tables that let the planned fast
    path build every phase's conversion mask with two fancy-index reads.
    """

    layer_name: str
    weight_fingerprint: str
    config: PimLayerConfig
    input_plan: InputSlicePlan
    noiseless: bool
    float32: bool
    n_slices: int
    n_filters: int
    phase_shifts: np.ndarray
    phase_masks: np.ndarray
    scales: np.ndarray
    is_spec: np.ndarray
    group_of: np.ndarray
    spec_indices: np.ndarray
    rec_indices: np.ndarray
    chunks: tuple[_EncodedChunk, ...] = field(repr=False)
    operands: tuple[_ChunkOperands, ...] = field(repr=False)

    @property
    def n_phases(self) -> int:
        """Crossbar cycles per full input presentation (11 with speculation)."""
        return len(self.input_plan.phases)

    @property
    def mode(self) -> SpeculationMode:
        """The input slicing mode the plan was compiled for."""
        return self.input_plan.mode

    @property
    def fast_path_eligible(self) -> bool:
        """Whether the batched noiseless fast path may execute this plan.

        Noise draws are order-sensitive (seeded RNG state advances per
        phase) and column-sum collection subsamples in per-phase order, so
        both force the reference per-phase loop; everything else is exact
        integer arithmetic and may be re-grouped freely.
        """
        return self.noiseless and not self.config.collect_column_sums

    @property
    def noise_draw_layout(self) -> tuple[tuple[int, int, int], ...]:
        """The seeded noise-draw contract: ``(chunk, phase, draw_size)`` order.

        A noisy executor draws once per (chunk, phase) pair in exactly this
        order, each draw covering ``M * n_slices * n_filters`` values -- the
        layout is part of the bit-identity contract, which is why the planned
        fast path never runs for noisy configurations.  Empty for noiseless
        plans (no draws at all).
        """
        if self.noiseless:
            return ()
        per_phase = self.n_slices * self.n_filters
        return tuple(
            (chunk_index, phase_index, per_phase)
            for chunk_index in range(len(self.chunks))
            for phase_index in range(self.n_phases)
        )

    def extract_phases(self, codes: np.ndarray) -> np.ndarray:
        """All input slices of a batch via the precomputed index tables.

        Element-for-element identical to
        :func:`repro.runtime.phases.extract_phase_tensor` (property-tested),
        shaped ``(n_phases, M, rows)``.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if np.any(codes < 0):
            raise ValueError(
                "input codes must be non-negative; signed inputs are split "
                "into positive/negative magnitudes before slicing"
            )
        shifts = self.phase_shifts[:, np.newaxis, np.newaxis]
        return (codes[np.newaxis, :, :] >> shifts) & (
            self.phase_masks[:, np.newaxis, np.newaxis]
        )

    @classmethod
    def from_executor(cls, executor) -> "CompiledLayerPlan":
        """Harvest a plan from a live vectorized executor's derived state."""
        input_plan: InputSlicePlan = executor.plan
        phases = input_plan.phases
        chunks = tuple(executor._chunks)
        operands = tuple(executor._operands)
        slicing = (
            chunks[0].encoded.slicing if chunks else executor.config.weight_slicing
        )
        weight_shifts = np.array(slicing.shifts, dtype=np.int64)
        phase_shifts = np.array([phase.shift for phase in phases], dtype=np.int64)
        phase_masks = np.array(
            [(1 << phase.width) - 1 for phase in phases], dtype=np.int64
        )
        scales = 2.0 ** (
            phase_shifts[:, np.newaxis, np.newaxis, np.newaxis]
            + weight_shifts[np.newaxis, np.newaxis, :, np.newaxis]
        )
        is_spec = np.array([phase.kind == "speculative" for phase in phases])
        group_of = np.zeros(len(phases), dtype=np.int64)
        spec_indices, rec_indices = [], []
        group = -1
        for index, phase in enumerate(phases):
            if phase.kind == "speculative":
                group += 1
                spec_indices.append(index)
            elif phase.kind == "recovery":
                rec_indices.append(index)
            group_of[index] = max(group, 0)
        for array in (phase_shifts, phase_masks, scales, is_spec, group_of):
            array.setflags(write=False)
        return cls(
            layer_name=executor.layer.name,
            weight_fingerprint=executor.layer.weight_fingerprint,
            config=executor.config,
            input_plan=input_plan,
            noiseless=isinstance(executor.noise, NoiselessModel),
            float32=bool(executor.float32),
            n_slices=slicing.n_slices,
            n_filters=executor.layer.out_features,
            phase_shifts=phase_shifts,
            phase_masks=phase_masks,
            scales=scales,
            is_spec=is_spec,
            group_of=group_of,
            spec_indices=np.array(spec_indices, dtype=np.int64),
            rec_indices=np.array(rec_indices, dtype=np.int64),
            chunks=chunks,
            operands=operands,
        )

    def matches(self, layer, config: PimLayerConfig) -> bool:
        """Whether this plan was compiled for ``layer`` under ``config``."""
        return (
            self.layer_name == layer.name
            and self.weight_fingerprint == layer.weight_fingerprint
            and self.config == config
        )


@dataclass(frozen=True)
class ModelPlan:
    """A whole model's compiled execution plan (one entry per matmul layer).

    Compiled once per ``(model weights, config, noise-lessness, float32,
    micro_batch)`` by :func:`compile_model_plan`, cached by the registry's
    :class:`~repro.runtime.cache.ModelPlanCache`, threaded through
    :meth:`NetworkEngine.build <repro.runtime.engine.NetworkEngine.build>`
    and pickled inside :class:`~repro.runtime.procpool.EngineSpec` so every
    replica worker boots from the already-encoded artifact.
    """

    model_name: str
    config: PimLayerConfig
    noiseless: bool
    float32: bool
    micro_batch: int | None
    layers: Mapping[str, CompiledLayerPlan] = field(repr=False)

    def layer_plan(self, layer_name: str) -> CompiledLayerPlan | None:
        """The compiled plan of one layer (``None`` for unknown names)."""
        return self.layers.get(layer_name)

    def split_points(self, n_samples: int) -> tuple[int, ...]:
        """Micro-batch split boundaries for an ``n_samples`` batch.

        Empty when the plan carries no micro-batch limit or the batch fits
        in one slice; otherwise the cut offsets ``np.split`` would use.
        """
        if not self.micro_batch or n_samples <= self.micro_batch:
            return ()
        return tuple(range(self.micro_batch, n_samples, self.micro_batch))

    @staticmethod
    def cache_key(
        model,
        config: PimLayerConfig,
        noise: NoiseModel | None,
        float32: bool,
        micro_batch: int | None,
    ) -> tuple:
        """The identity a compiled plan depends on (and nothing else).

        Mirrors the encoded-weight cache's keying discipline: weight
        *fingerprints* rather than object identity, the full frozen config,
        and the noise-lessness flag (a plan never holds RNG state, so two
        different seeded noise models share one plan).
        """
        noiseless = noise is None or isinstance(noise, NoiselessModel)
        return (
            model.name,
            tuple(
                (layer.name, layer.weight_fingerprint)
                for layer in model.matmul_layers()
            ),
            config,
            noiseless,
            bool(float32),
            micro_batch,
        )


def compile_model_plan(
    model,
    config: PimLayerConfig | None = None,
    noise: NoiseModel | None = None,
    *,
    float32: bool | None = None,
    micro_batch: int | None = None,
    pool=None,
) -> ModelPlan:
    """Compile a :class:`ModelPlan` for ``model`` under one configuration.

    Builds (or reuses) one vectorized executor per matmul layer through
    ``pool`` -- sharing the pool's encoded-weight cache, so compilation costs
    one weight encoding at most -- and harvests each executor's
    :class:`CompiledLayerPlan`.  The executors themselves adopt the plans
    they produced, so a registry compiling through its own pool leaves the
    serving executors already on the planned fast path.
    """
    from repro.runtime.cache import ExecutorPool

    config = config if config is not None else PimLayerConfig()
    pool = pool if pool is not None else ExecutorPool()
    layers = {}
    for layer in model.matmul_layers():
        executor = pool.get(layer, config, noise=noise, float32=float32)
        layers[layer.name] = executor.compile_layer_plan()
    noiseless = noise is None or isinstance(noise, NoiselessModel)
    # The pool normalises the float32 request (``None`` -> pool default,
    # forced off for non-vectorized factories); read the resolved value back
    # from the harvested plans so the ModelPlan records what actually runs.
    resolved_float32 = any(plan.float32 for plan in layers.values())
    return ModelPlan(
        model_name=model.name,
        config=config,
        noiseless=noiseless,
        float32=resolved_float32,
        micro_batch=micro_batch,
        layers=layers,
    )
