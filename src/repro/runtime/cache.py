"""Encoded-weight caching and executor pooling.

Building a :class:`~repro.core.executor.PimLayerExecutor` re-runs center
optimisation and weight slicing (the dominant construction cost) even when the
same layer is executed again with the same configuration -- which is exactly
what repeated experiments (encoding ablations, noise sweeps, accuracy
evaluations) do.  :class:`EncodedWeightCache` keys the encoded crossbar chunks
by the layer's weight fingerprint and the encoding-relevant configuration
fields so executor instances share one encoding.  :class:`ExecutorPool` goes
one step further and reuses whole executors per ``(layer, config, noise)``.

Both caches are safe to share across threads: the multi-tenant serving layer
(:mod:`repro.serve`) builds engines for several hosted models concurrently
against one pool and one weight cache.  A coarse re-entrant lock guards each
structure; encoding a layer holds the lock, which serialises construction but
guarantees each entry is built exactly once.  Cached entries are read-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.analog.noise import NoiseModel
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import MatmulLayer

__all__ = [
    "EncodedWeightCache",
    "ExecutorPool",
    "GLOBAL_WEIGHT_CACHE",
    "ModelPlanCache",
]


def _encoding_key(layer: MatmulLayer, config: PimLayerConfig) -> Hashable:
    """Cache key covering every input of the weight-encoding pipeline."""
    return (
        layer.weight_fingerprint,
        config.crossbar_rows,
        config.weight_slicing.widths,
        config.weight_encoding,
        config.center_power,
    )


@dataclass
class EncodedWeightCache:
    """LRU cache of encoded crossbar chunks, shared across executors.

    Parameters
    ----------
    max_entries:
        Number of distinct (layer, encoding-config) entries kept; one entry
        holds all row chunks of one layer.
    """

    max_entries: int = 128
    hits: int = 0
    misses: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def encoded_chunks(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig,
        builder: Callable[[], list],
    ) -> list:
        """Return the layer's encoded chunks, building them on first use.

        Thread-safe: the builder runs under the cache lock, so concurrent
        lookups of the same key encode once and share the result.
        """
        key = _encoding_key(layer, config)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
            chunks = builder()
            self._entries[key] = chunks
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return chunks

    def clear(self) -> None:
        """Drop all cached encodings (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: Process-wide encoding cache used by the vectorized executor by default.
GLOBAL_WEIGHT_CACHE = EncodedWeightCache()


class ExecutorPool:
    """Reuses one executor per ``(layer, config, noise, float32)`` combination.

    A pooled executor keeps its crossbars programmed and its statistics
    accumulating across uses; call ``get(..., reset_stats=True)`` to start a
    fresh measurement on reuse.  The pool holds strong references to its
    executors, which keeps the identity-based keys valid.

    ``get`` is thread-safe; concurrent lookups of the same key build one
    executor and share it.  Note that the pooled *executors* themselves are
    not thread-safe (statistics accumulate unguarded) -- callers that share a
    pool across threads must serialise calls into any one executor, as
    :class:`repro.serve.InferenceServer` does with its per-executor locks.

    Parameters
    ----------
    executor_factory:
        Executor class to instantiate (the vectorized one by default).
    weight_cache:
        Encoded-weight cache handed to vectorized executors.
    float32:
        Default for ``get``'s ``float32`` flag: request the opt-in float32
        GEMM fast path (applied per chunk only where provably exact; see
        :class:`~repro.runtime.vectorized.VectorizedLayerExecutor`).
    """

    def __init__(
        self,
        executor_factory: type[PimLayerExecutor] | None = None,
        weight_cache: EncodedWeightCache | None = GLOBAL_WEIGHT_CACHE,
        float32: bool = False,
    ):
        if executor_factory is None:
            from repro.runtime.vectorized import VectorizedLayerExecutor

            executor_factory = VectorizedLayerExecutor
        self.executor_factory = executor_factory
        self.weight_cache = weight_cache
        self.float32 = float32
        self._executors: dict[Hashable, PimLayerExecutor] = {}
        self._lock = threading.RLock()

    def get(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        reset_stats: bool = False,
        float32: bool | None = None,
        plan=None,
    ) -> PimLayerExecutor:
        """Return a pooled executor for the layer, building one on first use.

        ``float32`` overrides the pool default for this lookup; it is part of
        the pool key, so float32 and float64 executors for the same layer
        coexist.  The flag is ignored (normalised to off) for executor
        factories without a float32 fast path.

        ``plan`` (a :class:`~repro.runtime.plan.CompiledLayerPlan`) seeds a
        newly built vectorized executor with its precompiled chunks and
        operand tables -- skipping weight encoding entirely, which is what
        lets replica workers boot from a pickled
        :class:`~repro.runtime.plan.ModelPlan`.  An already-pooled executor
        *adopts* the plan instead (activating the planned fast path); plan
        adoption is bit-identical either way, so planned and unplanned
        callers may share one pooled executor.
        """
        from repro.runtime.vectorized import VectorizedLayerExecutor

        config = config or PimLayerConfig()
        vectorized = issubclass(self.executor_factory, VectorizedLayerExecutor)
        use_float32 = (self.float32 if float32 is None else float32) and vectorized
        if not vectorized:
            plan = None
        key = (
            id(layer),
            config,
            id(noise) if noise is not None else None,
            use_float32,
        )
        with self._lock:
            executor = self._executors.get(key)
            if executor is None:
                kwargs = {}
                if vectorized:
                    kwargs["weight_cache"] = self.weight_cache
                    kwargs["float32"] = use_float32
                    kwargs["plan"] = plan
                executor = self.executor_factory(layer, config, noise=noise, **kwargs)
                self._executors[key] = executor
            else:
                if plan is not None and executor.layer_plan is None:
                    executor.adopt_plan(plan)
                if reset_stats:
                    executor.reset_stats()
            return executor

    def clear(self) -> None:
        """Drop every pooled executor."""
        with self._lock:
            self._executors.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._executors)


class ModelPlanCache:
    """LRU cache of compiled :class:`~repro.runtime.plan.ModelPlan` artifacts.

    Keyed by :meth:`ModelPlan.cache_key
    <repro.runtime.plan.ModelPlan.cache_key>` -- weight fingerprints plus the
    full frozen config, the same fingerprint-not-identity discipline as
    :class:`EncodedWeightCache`, so re-registering a model with unchanged
    weights and configuration reuses the exact plan object (tests assert
    identity) while any config or weight change compiles a fresh one.
    Thread-safe; the builder runs under the lock so concurrent registrations
    of the same key compile once.
    """

    def __init__(self, max_entries: int = 64):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.RLock()

    def get_or_compile(self, key: Hashable, builder: Callable[[], object]):
        """Return the cached plan for ``key``, compiling it on first use."""
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return cached
            self.misses += 1
            plan = builder()
            self._entries[key] = plan
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return plan

    def clear(self) -> None:
        """Drop all cached plans (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
