"""Encoded-weight caching and executor pooling.

Building a :class:`~repro.core.executor.PimLayerExecutor` re-runs center
optimisation and weight slicing (the dominant construction cost) even when the
same layer is executed again with the same configuration -- which is exactly
what repeated experiments (encoding ablations, noise sweeps, accuracy
evaluations) do.  :class:`EncodedWeightCache` keys the encoded crossbar chunks
by the layer's weight fingerprint and the encoding-relevant configuration
fields so executor instances share one encoding.  :class:`ExecutorPool` goes
one step further and reuses whole executors per ``(layer, config, noise)``.

Both caches are plain in-process dictionaries intended for single-threaded
experiment drivers; entries hold the encoded arrays read-only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.analog.noise import NoiseModel
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import MatmulLayer

__all__ = ["EncodedWeightCache", "ExecutorPool", "GLOBAL_WEIGHT_CACHE"]


def _encoding_key(layer: MatmulLayer, config: PimLayerConfig) -> Hashable:
    """Cache key covering every input of the weight-encoding pipeline."""
    return (
        layer.weight_fingerprint,
        config.crossbar_rows,
        config.weight_slicing.widths,
        config.weight_encoding,
        config.center_power,
    )


@dataclass
class EncodedWeightCache:
    """LRU cache of encoded crossbar chunks, shared across executors.

    Parameters
    ----------
    max_entries:
        Number of distinct (layer, encoding-config) entries kept; one entry
        holds all row chunks of one layer.
    """

    max_entries: int = 128
    hits: int = 0
    misses: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def encoded_chunks(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig,
        builder: Callable[[], list],
    ) -> list:
        """Return the layer's encoded chunks, building them on first use."""
        key = _encoding_key(layer, config)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        chunks = builder()
        self._entries[key] = chunks
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return chunks

    def clear(self) -> None:
        """Drop all cached encodings (counters are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


#: Process-wide encoding cache used by the vectorized executor by default.
GLOBAL_WEIGHT_CACHE = EncodedWeightCache()


class ExecutorPool:
    """Reuses one executor per ``(layer, config, noise)`` combination.

    A pooled executor keeps its crossbars programmed and its statistics
    accumulating across uses; call ``get(..., reset_stats=True)`` to start a
    fresh measurement on reuse.  The pool holds strong references to its
    executors, which keeps the identity-based keys valid.
    """

    def __init__(
        self,
        executor_factory: type[PimLayerExecutor] | None = None,
        weight_cache: EncodedWeightCache | None = GLOBAL_WEIGHT_CACHE,
    ):
        if executor_factory is None:
            from repro.runtime.vectorized import VectorizedLayerExecutor

            executor_factory = VectorizedLayerExecutor
        self.executor_factory = executor_factory
        self.weight_cache = weight_cache
        self._executors: dict[Hashable, PimLayerExecutor] = {}

    def get(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        reset_stats: bool = False,
    ) -> PimLayerExecutor:
        """Return a pooled executor for the layer, building one on first use."""
        config = config or PimLayerConfig()
        key = (id(layer), config, id(noise) if noise is not None else None)
        executor = self._executors.get(key)
        if executor is None:
            from repro.runtime.vectorized import VectorizedLayerExecutor

            kwargs = {}
            if issubclass(self.executor_factory, VectorizedLayerExecutor):
                kwargs["weight_cache"] = self.weight_cache
            executor = self.executor_factory(layer, config, noise=noise, **kwargs)
            self._executors[key] = executor
        elif reset_stats:
            executor.reset_stats()
        return executor

    def clear(self) -> None:
        """Drop every pooled executor."""
        self._executors.clear()

    def __len__(self) -> int:
        return len(self._executors)
