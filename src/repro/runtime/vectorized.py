"""Vectorized PIM layer executor: batched phases, fused GEMMs, cached weights.

:class:`VectorizedLayerExecutor` is a drop-in replacement for
:class:`~repro.core.executor.PimLayerExecutor` that replaces the per-phase
Python loop of the hot path with batched tensor operations:

* every input bit-plane slice of a chunk is extracted in one shot
  (:func:`repro.runtime.phases.extract_phase_tensor`), and
* the ``n_phases`` per-phase matmuls are fused into a single float64 BLAS
  GEMM over a ``(n_phases * M, rows)`` operand.

Bit-identity with the per-phase reference is by construction, not by luck:

* slice values (< 2**4) and weight-slice values (< 2**device_bits) are tiny
  integers, so every product and partial sum in the GEMM is an integer far
  below 2**53 -- float64 arithmetic is exact and matches the reference's
  int64 matmuls digit for digit;
* the ADC conversion, speculation/recovery masking, statistics accumulation
  and noise application still run through the *same* inherited per-phase code
  path (via the ``_phase_sums`` provider hook), in the same order and on
  arrays of the same shape, so seeded noise draws and all
  :class:`~repro.core.executor.LayerStatistics` counters are identical too.

The same argument admits an opt-in **float32 fast path** (``float32=True``):
when every partial sum of a chunk's GEMM is provably below float32's 24-bit
integer-exact range (:func:`float32_gemm_is_exact`), the GEMM runs in float32
(roughly twice the BLAS throughput, half the operand memory traffic) and the
products -- still exact integers -- are widened back to float64 before the
ADC/noise stages, keeping outputs and statistics bit-identical to the float64
path.  Chunks that cannot be proven safe silently stay on float64, so the
flag is always safe to set.  The multi-tenant serving layer
(:mod:`repro.serve`) enables it by default.

A :class:`~repro.runtime.plan.CompiledLayerPlan` takes the argument one step
further.  In the noiseless case every post-GEMM stage -- ADC round/clip,
saturation masking, speculation recovery, the phase x weight-slice scale-sum
-- is also exact integer arithmetic, so the eleven per-phase Python
iterations can be collapsed into a handful of whole-tensor operations over
the ``(n_phases, M, n_slices, n_filters)`` block without moving a single
bit of the result (:meth:`_planned_chunk_matmul`).  Seeded noise draws *are*
order-sensitive, so noisy executors keep the per-phase loop; the plan still
supplies their extraction tables and GEMM operands.  Plans are compiled once
(:meth:`compile_layer_plan`), adopted by pooled executors
(:meth:`adopt_plan`), and pickled to worker processes so replicas never
re-encode weights.

Weight encoding (center optimisation dominates construction time) is shared
across executor instances through :mod:`repro.runtime.cache`.
"""

from __future__ import annotations

import numpy as np

from repro.analog.noise import NoiseModel, NoiselessModel
from repro.core.dynamic_input import InputPhase
from repro.core.executor import PimLayerConfig, PimLayerExecutor, _EncodedChunk
from repro.nn.layers import MatmulLayer
from repro.runtime.cache import GLOBAL_WEIGHT_CACHE, EncodedWeightCache
from repro.runtime.phases import extract_phase_tensor
from repro.runtime.plan import (
    CompiledLayerPlan,
    _ChunkOperands,
    float32_gemm_is_exact,
)

__all__ = ["VectorizedLayerExecutor", "float32_gemm_is_exact"]


class VectorizedLayerExecutor(PimLayerExecutor):
    """Batched-phase executor, bit-identical to the per-phase reference.

    Parameters
    ----------
    layer, config, noise:
        As for :class:`~repro.core.executor.PimLayerExecutor`.
    weight_cache:
        Encoded-weight cache shared across executor instances; pass ``None``
        to encode privately.  Defaults to the process-wide cache.
    float32:
        Opt into the float32 GEMM fast path.  Applied per chunk only where
        :func:`float32_gemm_is_exact` proves the accumulation fits float32's
        24-bit mantissa; other chunks keep float64.  Results are bit-identical
        either way.
    plan:
        A :class:`~repro.runtime.plan.CompiledLayerPlan` compiled for exactly
        this (layer, config, noise-lessness, float32) combination.  When
        given, the executor boots from the plan's pre-encoded chunks and
        operand tables -- no weight encoding at all -- and (noiseless
        configurations only) runs batches through the planned fast path.

    Memory note: each chunk's batched phase tensor holds
    ``n_phases * M * rows`` values; for very large batches run through
    :class:`~repro.runtime.engine.NetworkEngine` micro-batching.
    """

    def __init__(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        weight_cache: EncodedWeightCache | None = GLOBAL_WEIGHT_CACHE,
        float32: bool = False,
        plan: CompiledLayerPlan | None = None,
    ):
        self._weight_cache = weight_cache
        self.float32 = float32
        # Set before super().__init__: _build_encoded_chunks runs inside it
        # and serves the plan's chunks when present.
        self._plan_chunks = None if plan is None else plan.chunks
        super().__init__(layer, config, noise=noise)
        noiseless = isinstance(self.noise, NoiselessModel)
        if plan is not None:
            # Positional operand views travel with the plan; reusing them
            # shares the (possibly float32) GEMM operands across every
            # executor running the same plan.
            self._operands: list[_ChunkOperands] = list(plan.operands)
        else:
            max_slice = max((1 << phase.width) - 1 for phase in self.plan.phases)
            self._operands = [
                _ChunkOperands(chunk, noiseless, float32, max_slice)
                for chunk in self._chunks
            ]
        self._phase_sums_cache: list[np.ndarray] | None = None
        self._layer_plan: CompiledLayerPlan | None = None
        self._fast_plan: CompiledLayerPlan | None = None
        if plan is not None:
            self.adopt_plan(plan)

    @property
    def gemm_dtypes(self) -> list[type]:
        """The GEMM dtype chosen for each row chunk, in chunk order."""
        return [operands.dtype for operands in self._operands]

    @property
    def layer_plan(self) -> CompiledLayerPlan | None:
        """The adopted compiled plan (``None`` until compiled or adopted)."""
        return self._layer_plan

    def _build_encoded_chunks(self) -> list[_EncodedChunk]:
        if self._plan_chunks is not None:
            return list(self._plan_chunks)
        if self._weight_cache is None:
            return super()._build_encoded_chunks()
        return self._weight_cache.encoded_chunks(
            self.layer, self.config, super()._build_encoded_chunks
        )

    # -- compiled plans ----------------------------------------------------------

    def compile_layer_plan(self) -> CompiledLayerPlan:
        """Compile (once) and adopt this executor's execution plan.

        Harvests the executor's already-derived state -- encoded chunks,
        operand views with proven dtypes, phase tables -- into an immutable
        :class:`~repro.runtime.plan.CompiledLayerPlan`; subsequent calls
        return the same object.  Compiling also *adopts* the plan, switching
        noiseless executors onto the planned fast path.
        """
        if self._layer_plan is None:
            self.adopt_plan(CompiledLayerPlan.from_executor(self))
        return self._layer_plan

    def adopt_plan(self, plan: CompiledLayerPlan) -> None:
        """Execute future batches against ``plan`` (validated, bit-identical).

        Adoption is safe mid-stream: the planned fast path only re-groups
        exact integer arithmetic, so outputs and statistics are bit-identical
        whether a batch (or even an individual chunk of one) runs before or
        after adoption.
        """
        if not plan.matches(self.layer, self.config):
            raise ValueError(
                f"plan compiled for layer {plan.layer_name!r} "
                f"(fingerprint {plan.weight_fingerprint[:12]}...) does not "
                f"match executor for {self.layer.name!r}"
            )
        noiseless = isinstance(self.noise, NoiselessModel)
        if plan.noiseless != noiseless or plan.float32 != bool(self.float32):
            raise ValueError(
                "plan noiseless/float32 flags "
                f"({plan.noiseless}/{plan.float32}) do not match executor "
                f"({noiseless}/{bool(self.float32)})"
            )
        self._layer_plan = plan
        self._fast_plan = plan if plan.fast_path_eligible else None

    # -- batched hot path -------------------------------------------------------

    def _chunk_matmul(
        self, codes: np.ndarray, chunk: _EncodedChunk, chunk_index: int = 0
    ) -> np.ndarray:
        if self._fast_plan is not None:
            return self._planned_chunk_matmul(codes, chunk, chunk_index)
        self._phase_sums_cache = self._batched_phase_sums(codes, chunk_index)
        try:
            return super()._chunk_matmul(codes, chunk, chunk_index)
        finally:
            self._phase_sums_cache = None

    def _phase_sums(
        self, codes: np.ndarray, chunk: _EncodedChunk, phase: InputPhase, index: int
    ) -> np.ndarray:
        return self._phase_sums_cache[index]

    def _planned_chunk_matmul(
        self, codes: np.ndarray, chunk: _EncodedChunk, chunk_index: int
    ) -> np.ndarray:
        """One chunk through the compiled noiseless fast path.

        Replaces the inherited per-phase ADC/speculation loop with
        whole-tensor operations over the ``(P, M, S, F)`` product block:
        one round/clip/saturate pass, two fancy-index gathers to build every
        phase's conversion mask from the speculation-group tables, and one
        masked scale-sum.  Every intermediate is an exact integer in float64
        (scales are powers of two), so regrouping the additions is
        bit-identical to the reference loop -- including every statistics
        counter, which are integer totals and order-free.
        """
        plan = self._fast_plan
        operands = self._operands[chunk_index]
        stats = self.stats
        config = self.config
        m = codes.shape[0]

        phase_tensor = extract_phase_tensor(codes, self.plan)  # (P, M, rows)
        flat = phase_tensor.reshape(plan.n_phases * m, -1).astype(operands.dtype)
        products = np.asarray(flat @ operands.weights, dtype=np.float64).reshape(
            plan.n_phases, m, plan.n_slices, plan.n_filters
        )
        stats.input_pulses += int(phase_tensor.sum())
        stats.crossbar_activity += float(
            (phase_tensor.sum(axis=1) @ operands.sum_flat_rowsum).sum()
        )

        # One ADC pass over every phase at once (the reference does this
        # per phase; identical values, identical saturation decisions).
        rounded = np.round(products)
        clipped = np.clip(rounded, config.adc_min, config.adc_max)
        saturated = (rounded < config.adc_min) | (rounded > config.adc_max)

        if plan.spec_indices.size:
            spec_saturated = saturated[plan.spec_indices]  # (G, M, S, F)
            stats.adc_converts_speculative += spec_saturated.size
            stats.speculation_slots += spec_saturated.size
            stats.speculation_failures += int(spec_saturated.sum())
            # gathered[p] = the saturation mask of phase p's speculation
            # group; a speculative phase keeps its non-saturated columns,
            # its recovery phases replay exactly the saturated ones.
            gathered = spec_saturated[plan.group_of]  # (P, M, S, F)
            mask = np.where(
                plan.is_spec[:, np.newaxis, np.newaxis, np.newaxis],
                ~gathered,
                gathered,
            )
            needed = gathered[plan.rec_indices]
            total_needed = int(needed.sum())
            stats.adc_converts_recovery += total_needed
            stats.fidelity_loss_opportunities += total_needed
            stats.fidelity_loss_events += int(
                (saturated[plan.rec_indices] & needed).sum()
            )
            analog = (np.where(mask, clipped, 0.0) * plan.scales).sum(axis=(0, 2))
        else:  # bit-serial: every column converts in every phase
            stats.adc_converts_serial += clipped.size
            stats.fidelity_loss_events += int(saturated.sum())
            stats.fidelity_loss_opportunities += clipped.size
            analog = (clipped * plan.scales).sum(axis=(0, 2))

        encoded = chunk.encoded
        if encoded.encoding.uses_centers:
            analog = analog + encoded.centers[np.newaxis, :].astype(
                np.float64
            ) * codes.sum(axis=1, keepdims=True)
        return analog

    def _batched_phase_sums(
        self, codes: np.ndarray, chunk_index: int
    ) -> list[np.ndarray]:
        """All phases' analog column sums for one chunk, one GEMM.

        Returns one ``(M, n_slices, filters)`` array per phase and performs
        the per-phase statistics / noise bookkeeping in plan order, exactly
        as the per-phase reference does.
        """
        chunk = self._chunks[chunk_index]
        operands = self._operands[chunk_index]
        n_phases = self.plan.n_cycles
        m = codes.shape[0]
        n_slices = chunk.encoded.slicing.n_slices
        n_filters = chunk.encoded.n_filters
        n_cols = operands.n_columns

        phase_tensor = extract_phase_tensor(codes, self.plan)  # (P, M, rows)
        flat = phase_tensor.reshape(n_phases * m, -1).astype(operands.dtype)
        products = (flat @ operands.weights).reshape(n_phases, m, -1)
        if operands.dtype is not np.float64:
            # Fast-path products are exact integers within float32's mantissa;
            # widening is lossless and keeps all downstream stages (ADC,
            # noise, statistics) on the reference float64 arrays.
            products = products.astype(np.float64)

        # Per-phase input pulses: integer counters, batched then accumulated.
        pulses = phase_tensor.sum(axis=(1, 2))
        sums: list[np.ndarray] = []
        if operands.sum_flat_rowsum is not None:
            # Noiseless path: the products *are* the column sums; analog
            # activity has the reference's closed form per phase.
            activities = phase_tensor.sum(axis=1) @ operands.sum_flat_rowsum
            for index in range(n_phases):
                self.stats.crossbar_activity += float(activities[index])
                self.stats.input_pulses += int(pulses[index])
                sums.append(products[index].reshape(m, n_slices, n_filters))
        else:
            diff = products[:, :, :n_cols]
            total = products[:, :, n_cols:]
            for index in range(n_phases):
                positive = 0.5 * (total[index] + diff[index])
                negative = 0.5 * (total[index] - diff[index])
                self.stats.crossbar_activity += float(total[index].sum())
                self.stats.input_pulses += int(pulses[index])
                noisy = self.noise.apply(positive, negative)
                sums.append(noisy.reshape(m, n_slices, n_filters))
        return sums
