"""Vectorized PIM layer executor: batched phases, fused GEMMs, cached weights.

:class:`VectorizedLayerExecutor` is a drop-in replacement for
:class:`~repro.core.executor.PimLayerExecutor` that replaces the per-phase
Python loop of the hot path with batched tensor operations:

* every input bit-plane slice of a chunk is extracted in one shot
  (:func:`repro.runtime.phases.extract_phase_tensor`), and
* the ``n_phases`` per-phase matmuls are fused into a single float64 BLAS
  GEMM over a ``(n_phases * M, rows)`` operand.

Bit-identity with the per-phase reference is by construction, not by luck:

* slice values (< 2**4) and weight-slice values (< 2**device_bits) are tiny
  integers, so every product and partial sum in the GEMM is an integer far
  below 2**53 -- float64 arithmetic is exact and matches the reference's
  int64 matmuls digit for digit;
* the ADC conversion, speculation/recovery masking, statistics accumulation
  and noise application still run through the *same* inherited per-phase code
  path (via the ``_phase_sums`` provider hook), in the same order and on
  arrays of the same shape, so seeded noise draws and all
  :class:`~repro.core.executor.LayerStatistics` counters are identical too.

The same argument admits an opt-in **float32 fast path** (``float32=True``):
when every partial sum of a chunk's GEMM is provably below float32's 24-bit
integer-exact range (:func:`float32_gemm_is_exact`), the GEMM runs in float32
(roughly twice the BLAS throughput, half the operand memory traffic) and the
products -- still exact integers -- are widened back to float64 before the
ADC/noise stages, keeping outputs and statistics bit-identical to the float64
path.  Chunks that cannot be proven safe silently stay on float64, so the
flag is always safe to set.  The multi-tenant serving layer
(:mod:`repro.serve`) enables it by default.

Weight encoding (center optimisation dominates construction time) is shared
across executor instances through :mod:`repro.runtime.cache`.
"""

from __future__ import annotations

import numpy as np

from repro.analog.noise import NoiseModel, NoiselessModel
from repro.core.dynamic_input import InputPhase
from repro.core.executor import PimLayerConfig, PimLayerExecutor, _EncodedChunk
from repro.nn.layers import MatmulLayer
from repro.runtime.cache import GLOBAL_WEIGHT_CACHE, EncodedWeightCache
from repro.runtime.phases import extract_phase_tensor

__all__ = ["VectorizedLayerExecutor", "float32_gemm_is_exact"]

#: Largest contiguous integer range float32 represents exactly (24-bit mantissa).
_FLOAT32_EXACT_LIMIT = 1 << 24


def float32_gemm_is_exact(max_slice_value: int, weights: np.ndarray) -> bool:
    """Whether a slice-value x ``weights`` GEMM is provably exact in float32.

    Every product and running partial sum of the GEMM is an integer bounded in
    magnitude by ``max_slice_value * max_c(sum_r |weights[r, c]|)`` (slice
    values are non-negative, so partial sums cannot overshoot this bound
    mid-accumulation either).  If that bound stays below ``2**24`` each
    intermediate is exactly representable in float32, making the float32 GEMM
    bit-identical to the float64 one regardless of BLAS summation order.
    """
    if weights.size == 0:
        return True
    column_abs_sum = np.abs(weights).astype(np.float64).sum(axis=0).max()
    return max_slice_value * column_abs_sum < _FLOAT32_EXACT_LIMIT


class _ChunkOperands:
    """Float GEMM operands of one encoded chunk, prepared once per executor."""

    def __init__(
        self,
        chunk: _EncodedChunk,
        noiseless: bool,
        float32: bool,
        max_slice_value: int,
    ):
        if noiseless:
            # Noiseless sums only need W+ - W-; activity has a closed form.
            weights = chunk.diff_flat
            self.sum_flat_rowsum = chunk.sum_flat.sum(axis=1)
        else:
            # Noise models need both N+ - N- and N+ + N-: stack the weight
            # operands so one GEMM produces both column-sum families.
            weights = np.hstack([chunk.diff_flat, chunk.sum_flat])
            self.sum_flat_rowsum = None
        self.dtype = (
            np.float32
            if float32 and float32_gemm_is_exact(max_slice_value, weights)
            else np.float64
        )
        self.weights = weights.astype(self.dtype)
        self.n_columns = chunk.diff_flat.shape[1]


class VectorizedLayerExecutor(PimLayerExecutor):
    """Batched-phase executor, bit-identical to the per-phase reference.

    Parameters
    ----------
    layer, config, noise:
        As for :class:`~repro.core.executor.PimLayerExecutor`.
    weight_cache:
        Encoded-weight cache shared across executor instances; pass ``None``
        to encode privately.  Defaults to the process-wide cache.
    float32:
        Opt into the float32 GEMM fast path.  Applied per chunk only where
        :func:`float32_gemm_is_exact` proves the accumulation fits float32's
        24-bit mantissa; other chunks keep float64.  Results are bit-identical
        either way.

    Memory note: each chunk's batched phase tensor holds
    ``n_phases * M * rows`` values; for very large batches run through
    :class:`~repro.runtime.engine.NetworkEngine` micro-batching.
    """

    def __init__(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
        weight_cache: EncodedWeightCache | None = GLOBAL_WEIGHT_CACHE,
        float32: bool = False,
    ):
        self._weight_cache = weight_cache
        self.float32 = float32
        super().__init__(layer, config, noise=noise)
        noiseless = isinstance(self.noise, NoiselessModel)
        max_slice = max((1 << phase.width) - 1 for phase in self.plan.phases)
        self._operands = {
            id(chunk): _ChunkOperands(chunk, noiseless, float32, max_slice)
            for chunk in self._chunks
        }
        self._phase_sums_cache: list[np.ndarray] | None = None

    @property
    def gemm_dtypes(self) -> list[type]:
        """The GEMM dtype chosen for each row chunk, in chunk order."""
        return [self._operands[id(chunk)].dtype for chunk in self._chunks]

    def _build_encoded_chunks(self) -> list[_EncodedChunk]:
        if self._weight_cache is None:
            return super()._build_encoded_chunks()
        return self._weight_cache.encoded_chunks(
            self.layer, self.config, super()._build_encoded_chunks
        )

    # -- batched hot path -------------------------------------------------------

    def _chunk_matmul(self, codes: np.ndarray, chunk: _EncodedChunk) -> np.ndarray:
        self._phase_sums_cache = self._batched_phase_sums(codes, chunk)
        try:
            return super()._chunk_matmul(codes, chunk)
        finally:
            self._phase_sums_cache = None

    def _phase_sums(
        self, codes: np.ndarray, chunk: _EncodedChunk, phase: InputPhase, index: int
    ) -> np.ndarray:
        return self._phase_sums_cache[index]

    def _batched_phase_sums(
        self, codes: np.ndarray, chunk: _EncodedChunk
    ) -> list[np.ndarray]:
        """All phases' analog column sums for one chunk, one GEMM.

        Returns one ``(M, n_slices, filters)`` array per phase and performs
        the per-phase statistics / noise bookkeeping in plan order, exactly
        as the per-phase reference does.
        """
        operands = self._operands[id(chunk)]
        n_phases = self.plan.n_cycles
        m = codes.shape[0]
        n_slices = chunk.encoded.slicing.n_slices
        n_filters = chunk.encoded.n_filters
        n_cols = operands.n_columns

        phase_tensor = extract_phase_tensor(codes, self.plan)  # (P, M, rows)
        flat = phase_tensor.reshape(n_phases * m, -1).astype(operands.dtype)
        products = (flat @ operands.weights).reshape(n_phases, m, -1)
        if operands.dtype is not np.float64:
            # Fast-path products are exact integers within float32's mantissa;
            # widening is lossless and keeps all downstream stages (ADC,
            # noise, statistics) on the reference float64 arrays.
            products = products.astype(np.float64)

        # Per-phase input pulses: integer counters, batched then accumulated.
        pulses = phase_tensor.sum(axis=(1, 2))
        sums: list[np.ndarray] = []
        if operands.sum_flat_rowsum is not None:
            # Noiseless path: the products *are* the column sums; analog
            # activity has the reference's closed form per phase.
            activities = phase_tensor.sum(axis=1) @ operands.sum_flat_rowsum
            for index in range(n_phases):
                self.stats.crossbar_activity += float(activities[index])
                self.stats.input_pulses += int(pulses[index])
                sums.append(products[index].reshape(m, n_slices, n_filters))
        else:
            diff = products[:, :, :n_cols]
            total = products[:, :, n_cols:]
            for index in range(n_phases):
                positive = 0.5 * (total[index] + diff[index])
                negative = 0.5 * (total[index] - diff[index])
                self.stats.crossbar_activity += float(total[index].sum())
                self.stats.input_pulses += int(pulses[index])
                noisy = self.noise.apply(positive, negative)
                sums.append(noisy.reshape(m, n_slices, n_filters))
        return sums
