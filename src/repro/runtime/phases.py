"""Batched input-phase slice extraction.

The per-phase executor calls
:func:`repro.core.dynamic_input.extract_input_slice` once per phase (11 times
per chunk with RAELLA's speculative schedule).  Here the whole schedule is
materialised at once: broadcasting the plan's shift and mask vectors over the
input codes yields the ``(n_phases, M, rows)`` tensor of every bit-plane slice
in a single NumPy expression.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.dynamic_input import InputSlicePlan

__all__ = ["plan_shift_masks", "extract_phase_tensor"]


@lru_cache(maxsize=None)
def plan_shift_masks(plan: InputSlicePlan) -> tuple[np.ndarray, np.ndarray]:
    """Per-phase shift and mask vectors of a plan (treat as read-only)."""
    shifts = np.array([phase.shift for phase in plan.phases], dtype=np.int64)
    masks = np.array([(1 << phase.width) - 1 for phase in plan.phases], dtype=np.int64)
    shifts.setflags(write=False)
    masks.setflags(write=False)
    return shifts, masks


def extract_phase_tensor(codes: np.ndarray, plan: InputSlicePlan) -> np.ndarray:
    """All input slices of a batch in one shot: ``(n_phases, M, rows)``.

    ``codes`` is the non-negative ``(M, rows)`` input-code matrix; entry
    ``[p, i, r]`` is the value phase ``p`` feeds to the DAC of row ``r`` for
    input ``i``.  Identical to stacking ``extract_input_slice`` over the
    plan's phases.
    """
    codes = np.asarray(codes, dtype=np.int64)
    if np.any(codes < 0):
        raise ValueError(
            "input codes must be non-negative; signed inputs are split into "
            "positive/negative magnitudes before slicing"
        )
    shifts, masks = plan_shift_masks(plan)
    return (codes[np.newaxis, :, :] >> shifts[:, np.newaxis, np.newaxis]) & (
        masks[:, np.newaxis, np.newaxis]
    )
