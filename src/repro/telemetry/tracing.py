"""Per-request distributed tracing and the serving flight recorder.

The collector in :mod:`repro.telemetry.collector` answers *how much* -- total
energy, mean queue wait, counters.  This module answers *where did one
request's time go*: a :class:`Tracer` hands the serving stack one
:class:`TraceHandle` per sampled request, the stack appends
:class:`SpanRecord`\\ s covering every stage of the request's life (admission
decision, queue wait, batch formation, dispatch, worker IPC, worker-side
engine execution, completion), and finished traces land in a bounded
:class:`FlightRecorder` ring buffer together with lifecycle events (replica
crashes/restarts, overload transitions, sheds).  The recorder dumps
everything as Chrome trace-event JSON, loadable in Perfetto or
``chrome://tracing``.

Layering: this module imports nothing from :mod:`repro.serve` or
:mod:`repro.runtime`.  The serving stack passes spans in as plain floats and
dicts; worker processes ship their spans back as dicts over the result pipe
(see ``meta["spans"]`` in :mod:`repro.runtime.procpool`), so a worker-side
engine span carries the *worker's* pid/tid while parent-side spans carry the
server's -- which is exactly what makes the Perfetto view show the process
hop.

Cost model: a disabled or absent tracer costs one attribute check per
request.  An enabled tracer with ``sample_rate < 1`` pays the handle
allocation only for sampled requests; span recording is monotonic-clock
reads plus list appends, and the ring buffer is a bounded ``deque`` append
under a lock.  ``benchmarks/bench_tracing.py`` holds the whole path to a
<= 5% throughput overhead at ``sample_rate=1.0``.

Quickstart::

    from repro.serve import InferenceServer, ModelRegistry
    from repro.telemetry import Tracer

    tracer = Tracer(sample_rate=1.0)
    with InferenceServer(registry, tracer=tracer) as server:
        decision = server.submit("mlp", inputs)
        decision.result(timeout=30)
    print(decision.trace_id)
    open("trace.json", "w").write(tracer.recorder.to_chrome_trace())
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import deque

__all__ = ["FlightRecorder", "SpanRecord", "TraceHandle", "Tracer"]

#: Span names the serving stack emits, in causal order.  Kept here (not in
#: repro.serve) so trace consumers can rely on the vocabulary without
#: importing the serving layer.
REQUEST_SPAN = "request"
SERVE_SPANS = (
    "admission",
    "queue_wait",
    "dispatch_wait",
    "execute",
    "worker_ipc",
    "engine",
    "complete",
    "loop_complete",
)


class SpanRecord:
    """One completed span: a named, attributed ``[start_s, end_s]`` interval.

    Timestamps are ``time.monotonic()`` seconds.  ``pid``/``tid`` identify
    the process/thread that *executed* the span -- worker-side engine spans
    carry the worker process's ids, everything else the server's.  ``attrs``
    is small JSON-ready metadata (batch size, replica label, status).

    A hand-rolled ``__slots__`` class rather than a dataclass: the serving
    stack buffers spans as plain field tuples on the hot path and only
    materialises ``SpanRecord`` objects when a trace is actually read, so
    construction stays off the per-request critical path entirely.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "end_s",
        "pid",
        "tid",
        "category",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        start_s: float,
        end_s: float,
        pid: int,
        tid: int,
        category: str = "serve",
        attrs: dict | None = None,
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = start_s
        self.end_s = end_s
        self.pid = pid
        self.tid = tid
        self.category = category
        self.attrs = {} if attrs is None else attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpanRecord({self.name!r}, trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, start_s={self.start_s}, "
            f"end_s={self.end_s})"
        )

    @property
    def duration_s(self) -> float:
        """Span length in seconds (never negative)."""
        return max(0.0, self.end_s - self.start_s)

    def as_dict(self) -> dict:
        """JSON-ready representation (what ``RequestTrace.spans`` carries)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "category": self.category,
            "attrs": dict(self.attrs),
        }

    def to_chrome_event(self) -> dict:
        """This span as one Chrome trace-event (``ph="X"``, microsecond ts)."""
        args = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }
        args.update(self.attrs)
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start_s * 1e6,
            "dur": self.duration_s * 1e6,
            "pid": self.pid,
            "tid": self.tid,
            "args": args,
        }


class FlightRecorder:
    """A bounded, thread-safe ring buffer of spans and lifecycle events.

    Keeps the last ``capacity`` events (completed :class:`SpanRecord`\\ s
    plus instant lifecycle events such as replica crashes, restarts,
    overload transitions and sheds) -- old entries fall off the front, so a
    long-running server can always dump the recent past without unbounded
    memory.  :meth:`to_chrome_trace` renders the buffer as Chrome
    trace-event JSON (Perfetto-loadable).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def record_span(self, span: SpanRecord) -> None:
        """Append one completed span to the ring."""
        with self._lock:
            self._events.append(span)

    def record_raw_spans(self, raws) -> None:
        """Append a batch of raw span field tuples (one ring slot each).

        The hot path (``TraceHandle.finish``) ships a whole trace with one
        lock acquisition and zero per-span conversion; tuples are rendered
        into Chrome events lazily when the buffer is read.
        """
        with self._lock:
            self._events.extend(raws)

    def record_instant(
        self, name: str, category: str = "lifecycle", args: dict | None = None
    ) -> None:
        """Append one instant lifecycle event (``ph="i"``) stamped *now*."""
        event = {
            "name": name,
            "cat": category,
            "ph": "i",
            "ts": time.monotonic() * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "s": "g",  # global scope: lifecycle events concern the whole stack
            "args": dict(args) if args else {},
        }
        with self._lock:
            self._events.append(event)

    @staticmethod
    def _as_event(entry) -> dict:
        """Render one ring slot (raw tuple, span, or instant dict)."""
        if type(entry) is tuple:
            return SpanRecord(*entry).to_chrome_event()
        if isinstance(entry, SpanRecord):
            return entry.to_chrome_event()
        return dict(entry)

    def events(self, category: str | None = None) -> list[dict]:
        """A snapshot of the buffered events (optionally one category's)."""
        with self._lock:
            entries = list(self._events)
        events = [self._as_event(entry) for entry in entries]
        if category is not None:
            events = [event for event in events if event["cat"] == category]
        return events

    def trace_events(self, trace_id: str) -> list[dict]:
        """The buffered span events belonging to one trace, by ``ts``."""
        events = [
            event
            for event in self.events()
            if event.get("args", {}).get("trace_id") == trace_id
        ]
        return sorted(events, key=lambda event: event["ts"])

    def to_chrome_trace(self, indent: int | None = None) -> str:
        """The buffer as Chrome trace-event JSON (load in Perfetto).

        Events are sorted by timestamp, and ``displayTimeUnit`` is set so
        viewers show milliseconds.  The ``ts`` origin is this host's
        monotonic clock, shared by parent- and worker-side spans.
        """
        events = sorted(self.events(), key=lambda event: event["ts"])
        return json.dumps(
            {"traceEvents": events, "displayTimeUnit": "ms"}, indent=indent
        )

    def clear(self) -> None:
        """Drop every buffered event."""
        with self._lock:
            self._events.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlightRecorder(events={len(self)}, capacity={self.capacity})"


class TraceHandle:
    """The in-flight trace of one sampled request.

    Created by :meth:`Tracer.begin` at submit time; the serving stack
    appends child spans as the request moves through its stages, and
    :meth:`finish` closes the root ``request`` span, ships everything to the
    :class:`FlightRecorder` and freezes the span list.  ``add_span`` may be
    called from any thread (submit thread, dispatch workers); ``finish`` is
    called exactly once by whoever completes the request.
    """

    __slots__ = (
        "trace_id",
        "model_name",
        "request_id",
        "start_s",
        "_tracer",
        "_root_id",
        "_pid",
        "_spans",
        "_finished",
        "_records",
        "_lock",
    )

    def __init__(
        self, tracer: "Tracer", trace_id: str, model_name: str, request_id: int
    ):
        self.trace_id = trace_id
        self.model_name = model_name
        self.request_id = request_id
        self.start_s = time.monotonic()
        self._tracer = tracer
        self._root_id = tracer.next_span_id()
        self._pid = tracer._pid
        # Open spans buffer as raw SpanRecord field tuples -- materialised
        # into SpanRecord objects only when the finished trace is read.
        self._spans: list[tuple] = []
        self._finished: tuple[tuple, ...] | None = None
        self._records: tuple[SpanRecord, ...] | None = None
        self._lock = threading.Lock()

    @property
    def root_span_id(self) -> str:
        """Span id of the root ``request`` span (parent of every stage)."""
        return self._root_id

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        *,
        category: str = "serve",
        pid: int | None = None,
        tid: int | None = None,
        **attrs,
    ) -> None:
        """Record one completed child span of this request.

        ``pid``/``tid`` default to the calling process/thread; worker-shipped
        spans pass the worker's ids explicitly.  Extra keyword arguments
        become the span's ``attrs``.  Costs one tuple append: the
        ``SpanRecord`` itself is built lazily when the trace is read.
        """
        raw = (
            name,
            self.trace_id,
            self._tracer.next_span_id(),
            self._root_id,
            start_s,
            end_s,
            self._pid if pid is None else int(pid),
            threading.get_ident() if tid is None else int(tid),
            category,
            attrs,
        )
        with self._lock:
            if self._finished is None:
                self._spans.append(raw)

    def add_span_dicts(self, spans, *, clamp: tuple[float, float] | None = None):
        """Fold in spans shipped as plain dicts (worker-side / sink spans).

        Each dict needs ``name``/``start_s``/``end_s`` and may carry
        ``pid``/``tid`` plus arbitrary attribute keys.  ``clamp`` bounds the
        timestamps into a parent-side window -- worker clocks share Linux's
        ``CLOCK_MONOTONIC`` so this is normally a no-op, but it guarantees
        spans never escape their enclosing IPC window on other platforms.
        """
        for span in spans:
            extra = {
                key: value
                for key, value in span.items()
                if key not in ("name", "start_s", "end_s", "pid", "tid")
            }
            start_s, end_s = float(span["start_s"]), float(span["end_s"])
            if clamp is not None:
                low, high = clamp
                start_s = min(max(start_s, low), high)
                end_s = min(max(end_s, low), high)
            self.add_span(
                str(span["name"]),
                start_s,
                end_s,
                pid=span.get("pid"),
                tid=span.get("tid"),
                **extra,
            )

    def finish(self, end_s: float | None = None, **attrs) -> None:
        """Close the root span, ship everything to the recorder, freeze.

        The frozen spans (root last) are readable via :meth:`spans`.
        Idempotent: a second call neither re-records nor reopens the trace.
        """
        root = (
            REQUEST_SPAN,
            self.trace_id,
            self._root_id,
            None,
            self.start_s,
            time.monotonic() if end_s is None else end_s,
            self._pid,
            threading.get_ident(),
            "serve",
            {"model": self.model_name, "request_id": self.request_id, **attrs},
        )
        with self._lock:
            if self._finished is not None:
                return
            self._finished = (*self._spans, root)
            self._spans = []
        recorder = self._tracer.recorder
        if recorder is not None:
            recorder.record_raw_spans(self._finished)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has run."""
        with self._lock:
            return self._finished is not None

    def spans(self) -> tuple[SpanRecord, ...]:
        """The frozen spans (empty tuple while the trace is still open).

        Materialised from the raw buffer on first read and cached, so
        repeated reads return the identical tuple.
        """
        with self._lock:
            if self._finished is None:
                return ()
            if self._records is None:
                self._records = tuple(SpanRecord(*raw) for raw in self._finished)
            return self._records

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "open"
        return f"TraceHandle({self.trace_id!r}, {self.model_name!r}, {state})"


class Tracer:
    """Sampling-gated trace factory feeding one :class:`FlightRecorder`.

    Parameters
    ----------
    sample_rate:
        Fraction of requests to trace, in ``[0, 1]``.  Sampling is
        deterministic (every ``round(1/rate)``-th request), so a rate of
        ``0.01`` traces exactly one request in a hundred rather than
        approximately -- reproducible overhead and reproducible tests.
    recorder:
        The ring buffer finished traces land in (a fresh
        :class:`FlightRecorder` by default).
    enabled:
        Master switch; a disabled tracer never samples.  Flip
        :attr:`enabled` at runtime to turn tracing on or off without
        rebuilding the server.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        recorder: FlightRecorder | None = None,
        enabled: bool = True,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError("sample_rate must be within [0, 1]")
        self.sample_rate = sample_rate
        self.recorder = FlightRecorder() if recorder is None else recorder
        self.enabled = enabled
        # Deterministic 1-in-N sampling; N = round(1/rate).  rate=0 never
        # samples (the modulus is never hit because _interval is 0).
        self._interval = 0 if sample_rate == 0.0 else max(1, round(1.0 / sample_rate))
        self._counter = itertools.count()
        self._span_ids = itertools.count(1)
        self._pid = os.getpid()
        self._id_prefix = f"{self._pid:x}-"

    def next_span_id(self) -> str:
        """A process-unique span id (cheap: pid + a counter, hex)."""
        return self._id_prefix + format(next(self._span_ids), "x")

    def begin(self, model_name: str, request_id: int) -> TraceHandle | None:
        """Start the trace of one request, or ``None`` when sampled out."""
        if not self.enabled or self._interval == 0:
            return None
        if next(self._counter) % self._interval != 0:
            return None
        trace_id = f"{self._pid:x}-{request_id:x}-{next(self._span_ids):x}"
        return TraceHandle(self, trace_id, model_name, request_id)

    def record_span(
        self,
        name: str,
        trace_id: str,
        start_s: float,
        end_s: float,
        *,
        category: str = "serve",
        parent_id: str | None = None,
        **attrs,
    ) -> SpanRecord:
        """Record one standalone span straight into the recorder.

        For spans that outlive their request's :class:`TraceHandle` -- the
        asyncio facade's loop-side completion bridge finishes *after* the
        sync trace closed, so it attaches its span to the same ``trace_id``
        through this path.
        """
        span = SpanRecord(
            name=name,
            trace_id=trace_id,
            span_id=self.next_span_id(),
            parent_id=parent_id,
            start_s=start_s,
            end_s=end_s,
            pid=os.getpid(),
            tid=threading.get_ident(),
            category=category,
            attrs=attrs,
        )
        if self.recorder is not None:
            self.recorder.record_span(span)
        return span

    def record_event(self, name: str, **args) -> None:
        """Record one lifecycle instant (no-op when disabled)."""
        if self.enabled and self.recorder is not None:
            self.recorder.record_instant(name, args=args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer(sample_rate={self.sample_rate}, enabled={self.enabled}, "
            f"recorder={self.recorder!r})"
        )
