"""Thread-safe serve-time telemetry: request traces and rolling aggregates.

:class:`TelemetryCollector` is the account book of the serving stack.  The
:class:`~repro.serve.server.InferenceServer` feeds it one
:class:`RequestTrace` per completed request (queue wait, coalesced batch
size, engine wall time, modeled energy/latency from the request's
:class:`~repro.telemetry.cost.CostModel`) plus one engine-run record per
coalesced batch; :meth:`NetworkEngine.add_run_probe
<repro.runtime.engine.NetworkEngine.add_run_probe>` feeds the same engine-run
records for direct engine use outside the server.  Everything is exportable
as JSON (:meth:`export_json`) and Prometheus text format
(:meth:`to_prometheus`).

Each hosted model name is a tenant, so the per-model aggregates double as the
per-tenant accounting the multi-tenant registry needs.

The collector also bridges *modeled* time to *wall* time: the cost model
predicts batch latency in simulated-hardware microseconds, while deadlines at
the serving layer live on the wall clock of this NumPy simulator.  An
exponential moving average of ``observed engine seconds / modeled batch
seconds`` per model calibrates :meth:`predicted_batch_latency_s`, which the
SLO-aware scheduler subtracts from request deadlines to compute slack.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry.cost import CostModel

__all__ = [
    "FleetAggregate",
    "LatencyHistogram",
    "RequestTrace",
    "ModelAggregate",
    "TelemetryCollector",
]

#: EMA smoothing for the wall-time-per-modeled-time calibration factor.
_CALIBRATION_ALPHA = 0.2

#: Default log-bucketed histogram bounds: powers of two from ~1 microsecond
#: (2**-20 s) to 64 seconds.  27 buckets span six decades of latency with a
#: constant ~41% relative resolution, which is what makes p99 readings
#: meaningful from microsecond queue waits to multi-second engine runs.
_DEFAULT_BOUNDS = tuple(2.0**exponent for exponent in range(-20, 7))


class LatencyHistogram:
    """A log-bucketed latency histogram with quantile estimation.

    Buckets follow the Prometheus convention: bucket ``i`` counts
    observations ``<= bounds[i]``, plus one implicit ``+Inf`` bucket, so
    :meth:`cumulative_counts` maps one-to-one onto ``_bucket{le=...}``
    samples.  Not thread-safe on its own -- the owning
    :class:`TelemetryCollector` serialises access under its lock.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...] = _DEFAULT_BOUNDS):
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("histogram bounds must be positive")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation (negative values clamp into the first bucket)."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per bound plus the final ``+Inf`` bucket."""
        cumulative, running = [], 0
        for count in self.counts:
            running += count
            cumulative.append(running)
        return cumulative

    def quantile(self, p: float) -> float | None:
        """Estimated ``p``-quantile via linear interpolation within a bucket.

        Mirrors PromQL's ``histogram_quantile``: the target rank is located
        in the cumulative distribution and interpolated between the bucket's
        bounds (the first bucket interpolates from zero; ranks landing in
        the ``+Inf`` bucket return the highest finite bound).  ``None``
        before any observation.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError("quantile p must be within [0, 1]")
        if self.count == 0:
            return None
        rank = p * self.count
        cumulative_before = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative = cumulative_before + bucket_count
            if cumulative >= rank and bucket_count > 0:
                if index >= len(self.bounds):  # +Inf bucket
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - cumulative_before) / bucket_count
                return lower + (upper - lower) * max(0.0, min(1.0, fraction))
            cumulative_before = cumulative
        return self.bounds[-1]  # pragma: no cover - rank <= count always hits

    def as_dict(self) -> dict:
        """JSON-ready summary: count, sum and headline quantiles."""
        return {
            "count": self.count,
            "sum_s": self.sum,
            "p50_s": self.quantile(0.50),
            "p90_s": self.quantile(0.90),
            "p99_s": self.quantile(0.99),
        }

    def snapshot(self) -> "LatencyHistogram":
        """An independent copy (the collector hands these out under lock)."""
        copy = LatencyHistogram(self.bounds)
        copy.counts = list(self.counts)
        copy.count = self.count
        copy.sum = self.sum
        return copy


@dataclass(frozen=True)
class RequestTrace:
    """The full serving record of one completed request.

    Timestamps are ``time.monotonic()`` values; ``engine_time_s`` is the wall
    time of the *whole coalesced batch* the request rode in (use
    :attr:`engine_share_s` for a per-request attribution).
    ``modeled_energy_pj`` is the accelerator energy of the request's own
    samples, and ``modeled_energy_components_pj`` its DAC/ADC/crossbar/digital
    split (:meth:`CostModel.energy_split_pj
    <repro.telemetry.cost.CostModel.energy_split_pj>`; the buckets sum back
    to the total to float round-off).  ``modeled_latency_us`` is the
    request's sample-weighted share of its batch's modeled latency (the
    pipeline fill is paid once per batch, so per-request shares sum to the
    batch total).  Modeled fields are ``None`` when the request's model has
    no attached cost model.

    ``trace_id`` / ``spans`` tie the record to the distributed trace of the
    same request (:mod:`repro.telemetry.tracing`): ``spans`` holds the
    JSON-ready span dicts (:meth:`SpanRecord.as_dict
    <repro.telemetry.tracing.SpanRecord.as_dict>`), so ``export_json``
    consumers see the same per-stage timings the flight recorder dumps.
    Both stay empty for unsampled requests or servers without a tracer.
    """

    request_id: int
    model_name: str
    n_samples: int
    priority: int
    deadline_s: float | None
    enqueued_at: float
    dispatched_at: float
    completed_at: float
    batch_size: int
    engine_time_s: float
    modeled_energy_pj: float | None = None
    modeled_latency_us: float | None = None
    modeled_energy_components_pj: dict[str, float] | None = None
    trace_id: str | None = None
    spans: tuple[dict, ...] = ()

    @property
    def queue_wait_s(self) -> float:
        """Time the request waited for co-batching before dispatch."""
        return self.dispatched_at - self.enqueued_at

    @property
    def latency_s(self) -> float:
        """End-to-end serving latency (enqueue to completion)."""
        return self.completed_at - self.enqueued_at

    @property
    def engine_share_s(self) -> float:
        """The request's sample-weighted share of its batch's engine time."""
        if self.batch_size <= 0:
            return 0.0
        return self.engine_time_s * self.n_samples / self.batch_size

    @property
    def deadline_missed(self) -> bool:
        """Whether the request completed after its deadline (False if none)."""
        return self.deadline_s is not None and self.completed_at > self.deadline_s

    def as_dict(self) -> dict:
        """JSON-ready representation including the derived fields."""
        return {
            "request_id": self.request_id,
            "model": self.model_name,
            "n_samples": self.n_samples,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "queue_wait_s": self.queue_wait_s,
            "latency_s": self.latency_s,
            "batch_size": self.batch_size,
            "engine_time_s": self.engine_time_s,
            "engine_share_s": self.engine_share_s,
            "modeled_energy_pj": self.modeled_energy_pj,
            "modeled_energy_components_pj": self.modeled_energy_components_pj,
            "modeled_latency_us": self.modeled_latency_us,
            "deadline_missed": self.deadline_missed,
            "trace_id": self.trace_id,
            "spans": [dict(span) for span in self.spans],
        }


@dataclass
class ModelAggregate:
    """Rolling per-model (= per-tenant) serving totals.

    ``admitted_requests`` / ``downgraded_requests`` / ``shed_requests`` count
    admission-control outcomes (recorded at *submit* time, so they lead the
    completion counters); ``modeled_energy_components_pj`` accumulates the
    per-request DAC/ADC/crossbar/digital attribution.

    Models hosted on a :class:`~repro.runtime.ReplicaPool` additionally
    report replica health: ``replicas_healthy`` / ``replicas_total`` are the
    latest pool snapshot, ``worker_restarts`` the pool's lifetime restart
    total, and ``replica_engine_runs`` maps each replica label to its own
    ``{"runs", "samples", "seconds"}`` engine-run totals (all zero/empty for
    single-engine models).
    """

    model_name: str
    requests: int = 0
    samples: int = 0
    queue_wait_s: float = 0.0
    engine_share_s: float = 0.0
    modeled_energy_pj: float = 0.0
    modeled_latency_us: float = 0.0
    modeled_energy_components_pj: dict[str, float] = field(default_factory=dict)
    max_batch_size: int = 0
    deadline_requests: int = 0
    deadline_misses: int = 0
    engine_runs: int = 0
    engine_run_samples: int = 0
    engine_run_s: float = 0.0
    admitted_requests: int = 0
    downgraded_requests: int = 0
    shed_requests: int = 0
    worker_restarts: int = 0
    replicas_healthy: int = 0
    replicas_total: int = 0
    replica_engine_runs: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def mean_queue_wait_s(self) -> float:
        """Average co-batching wait per request."""
        return self.queue_wait_s / self.requests if self.requests else 0.0

    @property
    def modeled_energy_uj(self) -> float:
        """Total modeled energy attributed to this model (uJ)."""
        return self.modeled_energy_pj / 1e6

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying requests that missed."""
        if self.deadline_requests == 0:
            return 0.0
        return self.deadline_misses / self.deadline_requests

    def as_dict(self) -> dict:
        """JSON-ready representation including the derived fields."""
        return {
            "model": self.model_name,
            "requests": self.requests,
            "samples": self.samples,
            "queue_wait_s": self.queue_wait_s,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "engine_share_s": self.engine_share_s,
            "modeled_energy_pj": self.modeled_energy_pj,
            "modeled_energy_uj": self.modeled_energy_uj,
            "modeled_energy_components_pj": dict(self.modeled_energy_components_pj),
            "modeled_latency_us": self.modeled_latency_us,
            "max_batch_size": self.max_batch_size,
            "deadline_requests": self.deadline_requests,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "engine_runs": self.engine_runs,
            "engine_run_samples": self.engine_run_samples,
            "engine_run_s": self.engine_run_s,
            "admitted_requests": self.admitted_requests,
            "downgraded_requests": self.downgraded_requests,
            "shed_requests": self.shed_requests,
            "worker_restarts": self.worker_restarts,
            "replicas_healthy": self.replicas_healthy,
            "replicas_total": self.replicas_total,
            "replica_engine_runs": {
                replica: dict(totals)
                for replica, totals in self.replica_engine_runs.items()
            },
        }


@dataclass
class FleetAggregate:
    """Cumulative routing totals for one heterogeneous fleet.

    Fed by the server's :class:`~repro.serve.fleet.FleetRouter` decisions
    (duck-typed ``RouteDecision`` objects -- the serve layer imports
    telemetry, not the other way around).  ``batches_routed`` /
    ``samples_routed`` count decisions at batch formation;
    ``executed_batches_by_variant`` / ``executed_samples_by_variant`` count
    where batches actually ran (they differ from ``decisions_by_variant``
    only when a variant was unregistered mid-flight and its batches were
    re-routed -- counted in ``reroutes``).

    The energy figures compare the chosen placements against the
    always-fastest baseline variant of each decision: ``predicted_*`` sums
    decision-time modeled energy, ``realised_*`` sums the same figures for
    the placement that finally executed, so predicted-vs-realised savings
    diverge exactly when re-routing (or a baseline shift) moved work after
    the decision.
    """

    fleet: str
    batches_routed: int = 0
    samples_routed: int = 0
    reroutes: int = 0
    decisions_by_variant: dict[str, int] = field(default_factory=dict)
    executed_batches_by_variant: dict[str, int] = field(default_factory=dict)
    executed_samples_by_variant: dict[str, int] = field(default_factory=dict)
    predicted_energy_pj: float = 0.0
    predicted_baseline_pj: float = 0.0
    realised_energy_pj: float = 0.0
    realised_baseline_pj: float = 0.0

    @property
    def predicted_saved_pj(self) -> float:
        """Decision-time modeled energy saved vs always-fastest placement."""
        return self.predicted_baseline_pj - self.predicted_energy_pj

    @property
    def realised_saved_pj(self) -> float:
        """Modeled energy saved by the placements that actually executed."""
        return self.realised_baseline_pj - self.realised_energy_pj

    @property
    def realised_saved_fraction(self) -> float:
        """Realised savings as a fraction of the always-fastest baseline."""
        if self.realised_baseline_pj <= 0.0:
            return 0.0
        return self.realised_saved_pj / self.realised_baseline_pj

    def as_dict(self) -> dict:
        """JSON-ready representation including the derived fields."""
        return {
            "fleet": self.fleet,
            "batches_routed": self.batches_routed,
            "samples_routed": self.samples_routed,
            "reroutes": self.reroutes,
            "decisions_by_variant": dict(self.decisions_by_variant),
            "executed_batches_by_variant": dict(self.executed_batches_by_variant),
            "executed_samples_by_variant": dict(self.executed_samples_by_variant),
            "predicted_energy_pj": self.predicted_energy_pj,
            "predicted_baseline_pj": self.predicted_baseline_pj,
            "predicted_saved_pj": self.predicted_saved_pj,
            "realised_energy_pj": self.realised_energy_pj,
            "realised_baseline_pj": self.realised_baseline_pj,
            "realised_saved_pj": self.realised_saved_pj,
            "realised_saved_fraction": self.realised_saved_fraction,
        }


#: (metric suffix, help text, ModelAggregate attribute) for the text export.
#: Content-Type a scrape endpoint must declare when serving
#: :meth:`TelemetryCollector.to_prometheus` output (the Prometheus text
#: exposition format, version 0.0.4 -- what prometheus scrapers negotiate).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PROMETHEUS_GAUGES = (
    ("requests_total", "Completed requests per model.", "requests"),
    ("samples_total", "Input samples served per model.", "samples"),
    ("queue_wait_seconds_total", "Cumulative co-batching wait.", "queue_wait_s"),
    (
        "engine_seconds_total",
        "Cumulative attributed engine wall time.",
        "engine_share_s",
    ),
    (
        "modeled_energy_picojoules_total",
        "Cumulative modeled accelerator energy.",
        "modeled_energy_pj",
    ),
    (
        "deadline_requests_total",
        "Requests that carried a deadline.",
        "deadline_requests",
    ),
    (
        "deadline_misses_total",
        "Requests completed after their deadline.",
        "deadline_misses",
    ),
    ("engine_runs_total", "Engine batch executions observed.", "engine_runs"),
    (
        "admission_admitted_total",
        "Requests admitted by admission control.",
        "admitted_requests",
    ),
    (
        "admission_downgraded_total",
        "Requests downgraded to best-effort at admission.",
        "downgraded_requests",
    ),
    ("admission_shed_total", "Requests shed by admission control.", "shed_requests"),
    (
        "worker_restarts_total",
        "Replica worker processes restarted after a crash.",
        "worker_restarts",
    ),
)

#: (metric suffix, help text, histogram key) for the text export.  Each is a
#: per-model Prometheus *histogram* family: ``<name>_bucket{le=...}`` with a
#: ``+Inf`` bucket, plus ``<name>_sum`` / ``<name>_count``.
_PROMETHEUS_HISTOGRAMS = (
    (
        "request_latency_seconds",
        "End-to-end request latency (enqueue to completion).",
        "latency",
    ),
    (
        "request_queue_wait_seconds",
        "Time requests waited for co-batching before dispatch.",
        "queue_wait",
    ),
    (
        "engine_run_seconds",
        "Engine wall time per coalesced batch execution.",
        "engine",
    ),
)

#: Valid ``metric`` arguments of :meth:`TelemetryCollector.quantile`.
_HISTOGRAM_KEYS = tuple(key for _suffix, _help, key in _PROMETHEUS_HISTOGRAMS)

#: Overload state string -> numeric gauge level for the Prometheus export.
#: Mirrors OverloadState.severity in repro.serve.admission (the serve layer
#: imports telemetry, so telemetry cannot import the enum back).
_OVERLOAD_SEVERITY = {
    "accepting": 0,
    "shed_best_effort": 1,
    "shed_all_but_top": 2,
}


class TelemetryCollector:
    """Thread-safe request traces, per-model aggregates and exports.

    Parameters
    ----------
    max_traces:
        Size of the rolling per-request trace window (aggregates are
        cumulative and unaffected by trace eviction).
    """

    def __init__(self, max_traces: int = 1024):
        if max_traces < 1:
            raise ValueError("max_traces must be positive")
        self._traces: deque[RequestTrace] = deque(maxlen=max_traces)
        self._aggregates: dict[str, ModelAggregate] = {}
        self._fleets: dict[str, FleetAggregate] = {}
        # Per-(model, metric) log-bucketed histograms; metric is one of
        # _HISTOGRAM_KEYS ("latency"/"queue_wait" fed by record(), "engine"
        # by record_engine_run()).
        self._histograms: dict[tuple[str, str], LatencyHistogram] = {}
        self._cost_models: dict[str, CostModel] = {}
        self._wall_per_modeled: dict[str, float] = {}
        # Per-model queue-wait EMA (seconds), updated from every completed
        # request's trace.  This is the cross-model contention signal:
        # co-hosted tenants inflate each other's queue waits even when their
        # own backlog is empty, and admission opts into seeing that via
        # ``predicted_batch_latency_s(..., include_queue_wait=True)``.
        self._queue_wait_ema: dict[str, float] = {}
        # Latest admission-control overload state string (None until a
        # decision is recorded); see repro.serve.admission.OverloadState.
        self._overload_state: str | None = None
        self._lock = threading.Lock()

    # -- cost-model wiring -----------------------------------------------------

    def attach_cost_model(self, model_name: str, cost_model: CostModel) -> None:
        """Attach the cost tables used to attribute ``model_name`` requests."""
        with self._lock:
            self._cost_models[model_name] = cost_model

    def cost_model(self, model_name: str) -> CostModel | None:
        """The attached cost model for ``model_name`` (``None`` if absent)."""
        with self._lock:
            return self._cost_models.get(model_name)

    def predicted_batch_latency_s(
        self, model_name: str, n_samples: int, include_queue_wait: bool = False
    ) -> float | None:
        """Predicted wall-clock latency of a batch, for SLO slack computation.

        Starts from the cost model's modeled batch latency and scales it by
        the observed wall-per-modeled calibration EMA once engine runs have
        been recorded.  ``None`` when ``model_name`` has no cost model (the
        scheduler then treats predicted latency as zero).

        ``include_queue_wait=True`` adds the model's observed queue-wait EMA
        (:meth:`queue_wait_ema_s`) on top: the admission controller uses
        this variant so its deadline feasibility check prices *cross-model
        worker contention* -- time batches of co-hosted tenants spend ahead
        of this model's -- not just the modeled execution time.  The
        scheduler's own slack estimator deliberately does **not** opt in
        (a queued request's remaining wait is already measured directly;
        adding the EMA there would double-count it).
        """
        with self._lock:
            cost = self._cost_models.get(model_name)
            if cost is None:
                return None
            scale = self._wall_per_modeled.get(model_name, 1.0)
            queue_wait = (
                self._queue_wait_ema.get(model_name, 0.0)
                if include_queue_wait
                else 0.0
            )
        return cost.batch_latency_s(n_samples) * scale + queue_wait

    def queue_wait_ema_s(self, model_name: str) -> float:
        """The model's smoothed observed queue wait (0.0 before any trace)."""
        with self._lock:
            return self._queue_wait_ema.get(model_name, 0.0)

    # -- recording -------------------------------------------------------------

    def _aggregate_locked(self, model_name: str) -> ModelAggregate:
        aggregate = self._aggregates.get(model_name)
        if aggregate is None:
            aggregate = self._aggregates[model_name] = ModelAggregate(model_name)
        return aggregate

    def _histogram_locked(self, model_name: str, metric: str) -> LatencyHistogram:
        histogram = self._histograms.get((model_name, metric))
        if histogram is None:
            histogram = self._histograms[(model_name, metric)] = LatencyHistogram()
        return histogram

    def record(self, trace: RequestTrace) -> None:
        """Record one completed request."""
        with self._lock:
            self._traces.append(trace)
            latency = self._histogram_locked(trace.model_name, "latency")
            latency.observe(trace.latency_s)
            queue_wait = self._histogram_locked(trace.model_name, "queue_wait")
            queue_wait.observe(trace.queue_wait_s)
            previous = self._queue_wait_ema.get(trace.model_name)
            self._queue_wait_ema[trace.model_name] = (
                trace.queue_wait_s
                if previous is None
                else previous + _CALIBRATION_ALPHA * (trace.queue_wait_s - previous)
            )
            aggregate = self._aggregate_locked(trace.model_name)
            aggregate.requests += 1
            aggregate.samples += trace.n_samples
            aggregate.queue_wait_s += trace.queue_wait_s
            aggregate.engine_share_s += trace.engine_share_s
            aggregate.max_batch_size = max(aggregate.max_batch_size, trace.batch_size)
            if trace.modeled_energy_pj is not None:
                aggregate.modeled_energy_pj += trace.modeled_energy_pj
            if trace.modeled_energy_components_pj is not None:
                components = aggregate.modeled_energy_components_pj
                for key, value in trace.modeled_energy_components_pj.items():
                    components[key] = components.get(key, 0.0) + value
            if trace.modeled_latency_us is not None:
                aggregate.modeled_latency_us += trace.modeled_latency_us
            if trace.deadline_s is not None:
                aggregate.deadline_requests += 1
                aggregate.deadline_misses += int(trace.deadline_missed)

    def record_admission(self, decision) -> None:
        """Record one admission-control outcome (accepted/downgraded/shed).

        ``decision`` is an :class:`~repro.serve.admission.AdmissionDecision`
        (duck-typed here -- the serve layer imports telemetry, not the other
        way around): its status feeds the per-model admission counters and
        its overload state becomes the exported overload gauge.
        """
        with self._lock:
            aggregate = self._aggregate_locked(decision.model_name)
            if decision.status == "shed":
                aggregate.shed_requests += 1
            elif decision.status == "downgraded":
                aggregate.downgraded_requests += 1
            else:
                aggregate.admitted_requests += 1
            self._overload_state = decision.overload_state.value

    @property
    def overload_state(self) -> str | None:
        """Latest recorded overload state (``None`` before any decision)."""
        with self._lock:
            return self._overload_state

    def record_engine_run(
        self,
        model_name: str,
        n_samples: int,
        elapsed_s: float,
        replica: str | None = None,
    ) -> None:
        """Record one engine batch execution (also calibrates prediction).

        The server calls this once per coalesced batch;
        ``NetworkEngine.add_run_probe(collector.engine_probe(name))`` wires
        the same record for engines driven outside the server.  ``replica``
        (a :class:`~repro.runtime.ReplicaPool` slot label) additionally
        attributes the run to that replica's own totals.
        """
        with self._lock:
            aggregate = self._aggregate_locked(model_name)
            aggregate.engine_runs += 1
            aggregate.engine_run_samples += n_samples
            aggregate.engine_run_s += elapsed_s
            self._histogram_locked(model_name, "engine").observe(elapsed_s)
            if replica is not None:
                totals = aggregate.replica_engine_runs.setdefault(
                    replica, {"runs": 0, "samples": 0, "seconds": 0.0}
                )
                totals["runs"] += 1
                totals["samples"] += n_samples
                totals["seconds"] += elapsed_s
            cost = self._cost_models.get(model_name)
            if cost is not None and n_samples > 0:
                modeled = cost.batch_latency_s(n_samples)
                if modeled > 0.0:
                    ratio = elapsed_s / modeled
                    previous = self._wall_per_modeled.get(model_name)
                    self._wall_per_modeled[model_name] = (
                        ratio
                        if previous is None
                        else previous
                        + _CALIBRATION_ALPHA * (ratio - previous)
                    )

    def record_engine_runs(self, model_name: str, records: list[tuple]) -> None:
        """Merge a batch of engine-run records.

        Records are ``(n_samples, elapsed_s)`` pairs -- or
        ``(n_samples, elapsed_s, replica)`` triples from a
        :class:`~repro.runtime.ReplicaPool`.  The server uses this to fold
        in worker-side records shipped back over a process backend's result
        pipe; each record calibrates prediction exactly like a locally
        observed run.
        """
        for record in records:
            n_samples, elapsed_s = record[0], record[1]
            replica = record[2] if len(record) > 2 else None
            self.record_engine_run(model_name, n_samples, elapsed_s, replica=replica)

    def record_route(self, decision, *, reroute: bool = False) -> None:
        """Record one fleet routing decision at batch formation.

        ``decision`` is a :class:`~repro.serve.fleet.RouteDecision`
        (duck-typed: ``fleet``, ``variant``, ``n_samples``, ``energy_pj``,
        ``baseline_energy_pj``).  ``reroute=True`` marks the mid-flight
        drain path (the chosen variant was unregistered under a dispatched
        batch): the hop bumps ``reroutes`` and the per-variant decision
        counter, but not the one-per-batch routed totals or the
        decision-time energy sums, which the original decision already
        counted.
        """
        with self._lock:
            aggregate = self._fleets.get(decision.fleet)
            if aggregate is None:
                aggregate = self._fleets[decision.fleet] = FleetAggregate(
                    decision.fleet
                )
            decisions = aggregate.decisions_by_variant
            decisions[decision.variant] = decisions.get(decision.variant, 0) + 1
            if reroute:
                aggregate.reroutes += 1
                return
            aggregate.batches_routed += 1
            aggregate.samples_routed += decision.n_samples
            if decision.energy_pj is not None:
                aggregate.predicted_energy_pj += decision.energy_pj
            if decision.baseline_energy_pj is not None:
                aggregate.predicted_baseline_pj += decision.baseline_energy_pj

    def record_route_outcome(self, decision) -> None:
        """Record where one routed batch actually executed.

        Called once per completed fleet batch with its *final* decision
        (after any mid-flight re-routes), so the realised energy sums and
        per-variant execution counters reflect the placements that ran,
        not the ones first chosen.
        """
        with self._lock:
            aggregate = self._fleets.get(decision.fleet)
            if aggregate is None:
                aggregate = self._fleets[decision.fleet] = FleetAggregate(
                    decision.fleet
                )
            batches = aggregate.executed_batches_by_variant
            batches[decision.variant] = batches.get(decision.variant, 0) + 1
            samples = aggregate.executed_samples_by_variant
            samples[decision.variant] = (
                samples.get(decision.variant, 0) + decision.n_samples
            )
            if decision.energy_pj is not None:
                aggregate.realised_energy_pj += decision.energy_pj
            if decision.baseline_energy_pj is not None:
                aggregate.realised_baseline_pj += decision.baseline_energy_pj

    def record_pool_health(
        self, model_name: str, healthy: int, replicas: int, restarts: int
    ) -> None:
        """Record a replica pool's health snapshot for ``model_name``.

        ``healthy``/``replicas`` overwrite the latest snapshot; ``restarts``
        is the pool's lifetime total, so it is folded in monotonically (a
        stale snapshot racing a fresh one can never roll the counter back).
        """
        with self._lock:
            aggregate = self._aggregate_locked(model_name)
            aggregate.replicas_healthy = healthy
            aggregate.replicas_total = replicas
            aggregate.worker_restarts = max(aggregate.worker_restarts, restarts)

    def engine_probe(self, model_name: str):
        """A :meth:`NetworkEngine.add_run_probe` callback feeding this collector."""

        def probe(n_samples: int, elapsed_s: float) -> None:
            self.record_engine_run(model_name, n_samples, elapsed_s)

        return probe

    # -- snapshots -------------------------------------------------------------

    def histogram(self, model_name: str, metric: str) -> LatencyHistogram | None:
        """A snapshot of one model's histogram, or ``None`` before any data.

        ``metric`` is ``"latency"`` (end-to-end), ``"queue_wait"`` or
        ``"engine"`` (per coalesced batch execution).
        """
        if metric not in _HISTOGRAM_KEYS:
            raise ValueError(f"metric must be one of {_HISTOGRAM_KEYS}, not {metric!r}")
        with self._lock:
            histogram = self._histograms.get((model_name, metric))
            return None if histogram is None else histogram.snapshot()

    def quantile(self, model_name: str, p: float, metric: str = "latency"):
        """Estimated ``p``-quantile of one model's latency histogram.

        E.g. ``collector.quantile("mlp", 0.99)`` is the end-to-end p99 in
        seconds.  ``None`` before any observation.  See :meth:`histogram`
        for the ``metric`` choices and
        :meth:`LatencyHistogram.quantile` for the estimator.
        """
        histogram = self.histogram(model_name, metric)
        return None if histogram is None else histogram.quantile(p)

    def traces(self, model_name: str | None = None) -> list[RequestTrace]:
        """A snapshot of the rolling trace window (optionally one model's)."""
        with self._lock:
            if model_name is None:
                return list(self._traces)
            return [t for t in self._traces if t.model_name == model_name]

    @staticmethod
    def _copy_aggregate(aggregate: ModelAggregate) -> ModelAggregate:
        """An independent snapshot (the component dict must not be shared)."""
        snapshot = ModelAggregate(**vars(aggregate))
        snapshot.modeled_energy_components_pj = dict(
            aggregate.modeled_energy_components_pj
        )
        snapshot.replica_engine_runs = {
            replica: dict(totals)
            for replica, totals in aggregate.replica_engine_runs.items()
        }
        return snapshot

    @staticmethod
    def _copy_fleet(aggregate: FleetAggregate) -> FleetAggregate:
        snapshot = FleetAggregate(**vars(aggregate))
        snapshot.decisions_by_variant = dict(aggregate.decisions_by_variant)
        snapshot.executed_batches_by_variant = dict(
            aggregate.executed_batches_by_variant
        )
        snapshot.executed_samples_by_variant = dict(
            aggregate.executed_samples_by_variant
        )
        return snapshot

    def fleet_aggregate(self, fleet: str) -> FleetAggregate:
        """A snapshot of one fleet's cumulative routing totals."""
        with self._lock:
            aggregate = self._fleets.get(fleet)
            if aggregate is None:
                return FleetAggregate(fleet)
            return self._copy_fleet(aggregate)

    def fleet_aggregates(self) -> dict[str, FleetAggregate]:
        """Snapshots of every fleet's cumulative routing totals."""
        with self._lock:
            return {
                name: self._copy_fleet(aggregate)
                for name, aggregate in self._fleets.items()
            }

    def aggregate(self, model_name: str) -> ModelAggregate:
        """A snapshot of one model's cumulative aggregate."""
        with self._lock:
            aggregate = self._aggregates.get(model_name)
            if aggregate is None:
                return ModelAggregate(model_name)
            return self._copy_aggregate(aggregate)

    def aggregates(self) -> dict[str, ModelAggregate]:
        """Snapshots of every model's cumulative aggregate."""
        with self._lock:
            return {
                name: self._copy_aggregate(aggregate)
                for name, aggregate in self._aggregates.items()
            }

    # -- exports ---------------------------------------------------------------

    def export_json(
        self, include_traces: bool = True, indent: int | None = None
    ) -> str:
        """Serialise aggregates (and optionally the trace window) to JSON."""
        with self._lock:
            payload = {
                "models": {
                    name: aggregate.as_dict()
                    for name, aggregate in self._aggregates.items()
                },
            }
            for name, model_payload in payload["models"].items():
                model_payload["histograms"] = {
                    metric: self._histograms[(name, metric)].as_dict()
                    for metric in _HISTOGRAM_KEYS
                    if (name, metric) in self._histograms
                }
            if self._fleets:
                payload["fleets"] = {
                    name: aggregate.as_dict()
                    for name, aggregate in self._fleets.items()
                }
            if self._overload_state is not None:
                payload["overload_state"] = self._overload_state
            if include_traces:
                payload["traces"] = [trace.as_dict() for trace in self._traces]
        return json.dumps(payload, indent=indent)

    @staticmethod
    def _escape_label(value: str) -> str:
        """Escape a label value per the Prometheus exposition format."""
        return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")

    def _histogram_snapshots(self) -> dict[tuple[str, str], LatencyHistogram]:
        with self._lock:
            return {
                key: histogram.snapshot()
                for key, histogram in self._histograms.items()
            }

    @staticmethod
    def _format_bound(bound: float) -> str:
        """A ``le`` label value that round-trips through ``float()``."""
        return format(bound, ".12g")

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Render the aggregates in the Prometheus text exposition format."""
        aggregates = self.aggregates()
        histograms = self._histogram_snapshots()
        overload_state = self.overload_state
        lines: list[str] = []
        for suffix, help_text, attribute in _PROMETHEUS_GAUGES:
            metric = f"{prefix}_{suffix}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for name in sorted(aggregates):
                value = getattr(aggregates[name], attribute)
                label = self._escape_label(name)
                lines.append(f'{metric}{{model="{label}"}} {value}')
        for suffix, help_text, key in _PROMETHEUS_HISTOGRAMS:
            named = sorted(n for n, metric_key in histograms if metric_key == key)
            if not named:
                continue
            metric = f"{prefix}_{suffix}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} histogram")
            for name in named:
                histogram = histograms[(name, key)]
                label = self._escape_label(name)
                cumulative = histogram.cumulative_counts()
                for bound, running in zip(histogram.bounds, cumulative):
                    le = self._format_bound(bound)
                    lines.append(
                        f'{metric}_bucket{{model="{label}",le="{le}"}} {running}'
                    )
                lines.append(
                    f'{metric}_bucket{{model="{label}",le="+Inf"}} '
                    f"{histogram.count}"
                )
                lines.append(f'{metric}_sum{{model="{label}"}} {histogram.sum}')
                lines.append(f'{metric}_count{{model="{label}"}} {histogram.count}')
        metric = f"{prefix}_modeled_energy_component_picojoules_total"
        lines.append(
            f"# HELP {metric} Cumulative modeled energy per hardware component."
        )
        lines.append(f"# TYPE {metric} counter")
        for name in sorted(aggregates):
            label = self._escape_label(name)
            components = aggregates[name].modeled_energy_components_pj
            for component in sorted(components):
                value = components[component]
                lines.append(
                    f'{metric}{{model="{label}",component="{component}"}} {value}'
                )
        pooled = {name for name in aggregates if aggregates[name].replicas_total > 0}
        for suffix, help_text, attribute in (
            ("replicas_healthy", "Healthy replicas in the pool.", "replicas_healthy"),
            ("replicas_total", "Replica slots in the pool.", "replicas_total"),
        ):
            metric = f"{prefix}_{suffix}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            for name in sorted(pooled):
                value = getattr(aggregates[name], attribute)
                label = self._escape_label(name)
                lines.append(f'{metric}{{model="{label}"}} {value}')
        for suffix, help_text, key in (
            ("replica_engine_runs_total", "Engine runs per replica.", "runs"),
            (
                "replica_engine_samples_total",
                "Samples executed per replica.",
                "samples",
            ),
            (
                "replica_engine_seconds_total",
                "Engine wall seconds per replica.",
                "seconds",
            ),
        ):
            metric = f"{prefix}_{suffix}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} counter")
            for name in sorted(aggregates):
                label = self._escape_label(name)
                runs = aggregates[name].replica_engine_runs
                for replica in sorted(runs):
                    value = runs[replica][key]
                    replica_label = self._escape_label(replica)
                    lines.append(
                        f'{metric}{{model="{label}",replica="{replica_label}"}} '
                        f"{value}"
                    )
        fleets = self.fleet_aggregates()
        if fleets:
            for suffix, help_text, attribute in (
                (
                    "fleet_routed_batches_total",
                    "Routed fleet batches executed per variant.",
                    "executed_batches_by_variant",
                ),
                (
                    "fleet_routed_samples_total",
                    "Routed fleet samples executed per variant.",
                    "executed_samples_by_variant",
                ),
                (
                    "fleet_route_decisions_total",
                    "Routing decisions per variant (including re-routes).",
                    "decisions_by_variant",
                ),
            ):
                metric = f"{prefix}_{suffix}"
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} counter")
                for name in sorted(fleets):
                    label = self._escape_label(name)
                    by_variant = getattr(fleets[name], attribute)
                    for variant in sorted(by_variant):
                        variant_label = self._escape_label(variant)
                        lines.append(
                            f'{metric}{{fleet="{label}",variant="{variant_label}"}} '
                            f"{by_variant[variant]}"
                        )
            metric = f"{prefix}_fleet_reroutes_total"
            lines.append(
                f"# HELP {metric} Mid-flight re-routes after a variant "
                "was unregistered."
            )
            lines.append(f"# TYPE {metric} counter")
            for name in sorted(fleets):
                label = self._escape_label(name)
                lines.append(f'{metric}{{fleet="{label}"}} {fleets[name].reroutes}')
            # Savings can go negative (a pinned placement costlier than the
            # fastest variant), so these are gauges, not counters.
            for suffix, help_text, attribute in (
                (
                    "fleet_predicted_energy_saved_picojoules",
                    "Decision-time modeled energy saved vs always-fastest "
                    "placement.",
                    "predicted_saved_pj",
                ),
                (
                    "fleet_realised_energy_saved_picojoules",
                    "Modeled energy saved by the placements that executed.",
                    "realised_saved_pj",
                ),
                (
                    "fleet_realised_energy_saved_ratio",
                    "Realised energy savings as a fraction of the "
                    "always-fastest baseline.",
                    "realised_saved_fraction",
                ),
            ):
                metric = f"{prefix}_{suffix}"
                lines.append(f"# HELP {metric} {help_text}")
                lines.append(f"# TYPE {metric} gauge")
                for name in sorted(fleets):
                    label = self._escape_label(name)
                    value = getattr(fleets[name], attribute)
                    lines.append(f'{metric}{{fleet="{label}"}} {value}')
        if overload_state is not None:
            metric = f"{prefix}_overload_state"
            level = _OVERLOAD_SEVERITY.get(overload_state, -1)
            lines.append(
                f"# HELP {metric} Admission overload state "
                "(0 accepting, 1 shedding best-effort, 2 shedding all but top)."
            )
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {level}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"TelemetryCollector(models={sorted(self._aggregates)}, "
                f"traces={len(self._traces)})"
            )
