"""Hardware-grounded serving telemetry: cost attribution and SLO accounting.

The paper's first-class metrics are energy and throughput, but the
:mod:`repro.hw` models that compute them only ran inside offline experiment
harnesses.  This package bridges them into the live serving stack:

* :mod:`repro.telemetry.cost` -- :class:`CostModel` precomputes per-layer
  energy (pJ/sample) and latency (cycles/us per sample) tables from
  :mod:`repro.hw.energy` / :mod:`repro.hw.throughput` for a compiled model on
  an :class:`~repro.hw.architecture.ArchitectureSpec`, so serve-time
  attribution is a float multiply.  Totals match
  :meth:`EnergyModel.model_energy <repro.hw.energy.EnergyModel.model_energy>`
  (the Fig. 12 harness) to float round-off.
* :mod:`repro.telemetry.collector` -- :class:`TelemetryCollector` keeps
  thread-safe per-request :class:`RequestTrace` records (queue wait, batch
  size, engine wall time, modeled energy/latency) and rolling per-model /
  per-tenant :class:`ModelAggregate` totals, exportable as JSON and
  Prometheus text format.  It also calibrates modeled batch latency against
  observed engine wall time, which the SLO-aware scheduler in
  :mod:`repro.serve` uses to compute deadline slack.  Per-model log-bucketed
  :class:`LatencyHistogram`\\ s (end-to-end, queue wait, engine time) add
  ``quantile(p)`` accessors and Prometheus histogram exposition.
* :mod:`repro.telemetry.tracing` -- per-request distributed traces: a
  sampling-gated :class:`Tracer` hands the server one :class:`TraceHandle`
  per request, spans cover admission through worker-side engine execution
  (worker pid/tid and all), and a bounded :class:`FlightRecorder` ring
  buffer of spans plus lifecycle events dumps as Chrome trace-event JSON
  (Perfetto-loadable).

Quickstart::

    from repro.hw import RAELLA_ARCH
    from repro.serve import InferenceServer, ModelRegistry
    from repro.telemetry import TelemetryCollector

    registry = ModelRegistry()
    registry.register("mlp", model, arch=RAELLA_ARCH)   # builds a CostModel
    telemetry = TelemetryCollector()
    with InferenceServer(registry, telemetry=telemetry) as server:
        server.infer("mlp", inputs, priority=1, deadline_s=0.1)
    print(telemetry.aggregate("mlp").modeled_energy_uj)
    print(telemetry.to_prometheus())
"""

from repro.telemetry.collector import (
    PROMETHEUS_CONTENT_TYPE,
    FleetAggregate,
    LatencyHistogram,
    ModelAggregate,
    RequestTrace,
    TelemetryCollector,
)
from repro.telemetry.cost import CostModel, LayerCost, shapes_from_model
from repro.telemetry.tracing import FlightRecorder, SpanRecord, TraceHandle, Tracer

__all__ = [
    "CostModel",
    "FleetAggregate",
    "FlightRecorder",
    "LatencyHistogram",
    "LayerCost",
    "ModelAggregate",
    "PROMETHEUS_CONTENT_TYPE",
    "RequestTrace",
    "SpanRecord",
    "TelemetryCollector",
    "TraceHandle",
    "Tracer",
    "shapes_from_model",
]
