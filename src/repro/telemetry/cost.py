"""Hardware-grounded per-layer cost tables for serve-time attribution.

The paper's headline numbers are energy and throughput (Fig. 12/13, Table 2),
computed by :mod:`repro.hw` from analytical action counts.  Those models are
exact but not free: counting actions for every layer on every request would
dominate the serving hot path.  :class:`CostModel` therefore precomputes, once
per (model, architecture) pair, a per-layer table of

* energy per input sample (pJ, via :class:`~repro.hw.energy.EnergyModel` over
  :func:`~repro.hw.actions.count_model_actions`), and
* latency per input sample (cycles/us, via the replicated
  :class:`~repro.hw.mapping.Mapper` pipeline and
  :class:`~repro.hw.throughput.ThroughputModel`),

so attribution at serve time is a float multiply per request.  Whole-model
totals agree with :meth:`EnergyModel.model_energy` (and hence the Fig. 12
harness) to float round-off -- ``tests/test_telemetry.py`` pins the match at
1e-6 relative.

Two entry points:

* :meth:`CostModel.from_shapes` for the full-scale zoo tables
  (:func:`repro.nn.zoo.model_shapes`), matching the paper's published scale;
* :meth:`CostModel.from_model` for a runnable compiled
  :class:`~repro.nn.model.QuantizedModel`, whose crossbar-mapped layers are
  first converted to an equivalent shape table with
  :func:`shapes_from_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.architecture import ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.mapping import Mapper
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.layers import Conv2d, Linear
from repro.nn.model import QuantizedModel
from repro.nn.zoo import LayerShape, ModelShapes

__all__ = ["LayerCost", "CostModel", "shapes_from_model"]


def shapes_from_model(model: QuantizedModel) -> ModelShapes:
    """Convert a runnable model's crossbar-mapped layers to a shape table.

    Convolutions use the zoo tables' same-padding semantics
    (``output_size = ceil(input_size / stride)``), which matches the runnable
    zoo models exactly (they pad with ``kernel // 2``); spatial sizes are
    taken from the model's shape propagation.  Convolutions that break that
    assumption (``padding != kernel // 2``, or non-square inputs) would get
    silently wrong output-position counts, so they are rejected instead.
    Only crossbar-mapped layers appear -- pooling and reshaping cost nothing
    in the paper's model.
    """
    input_shapes = model.layer_input_shapes()
    layers = []
    for layer in model.matmul_layers():
        shape = input_shapes[layer.name]
        if isinstance(layer, Conv2d):
            if shape[1] != shape[2]:
                raise ValueError(
                    f"layer {layer.name!r}: cost tables assume square inputs, "
                    f"got {shape[1]}x{shape[2]}"
                )
            candidate = LayerShape(
                name=layer.name,
                kind="conv",
                in_channels=layer.in_channels,
                out_channels=layer.out_features,
                kernel_h=layer.kernel,
                kernel_w=layer.kernel,
                stride=layer.stride,
                input_size=int(shape[1]),
                signed_input=layer.signed_input,
            )
            # The analytical table assumes same-padding outputs
            # (ceil(input/stride)); verify against the layer's real output
            # size so padding/kernel combinations that break the assumption
            # fail loudly instead of silently mis-costing the tenant.
            _, out_h, out_w = layer.output_shape(shape)
            if candidate.output_size != out_h or out_h != out_w:
                raise ValueError(
                    f"layer {layer.name!r}: cost tables assume same-padding "
                    f"outputs ({candidate.output_size}x{candidate.output_size} "
                    f"for this input), but the layer produces {out_h}x{out_w} "
                    f"(kernel={layer.kernel}, stride={layer.stride}, "
                    f"padding={layer.padding}); the analytical LayerShape "
                    "would miscount output positions"
                )
            layers.append(candidate)
        elif isinstance(layer, Linear):
            layers.append(
                LayerShape(
                    name=layer.name,
                    kind="linear",
                    in_channels=layer.in_features,
                    out_channels=layer.out_features,
                    input_size=1,
                    signed_input=layer.signed_input,
                )
            )
        else:  # pragma: no cover - MatmulLayer has exactly these subclasses
            raise TypeError(f"cannot derive a LayerShape for {type(layer).__name__!r}")
    return ModelShapes(model.name, tuple(layers), signed_input=model.signed_input)


@dataclass(frozen=True)
class LayerCost:
    """Precomputed per-sample cost of one crossbar-mapped layer."""

    name: str
    energy: EnergyBreakdown
    latency_cycles: float
    latency_us: float
    replicas: int
    crossbars: int
    macs: float

    @property
    def energy_pj(self) -> float:
        """Energy per input sample in picojoules."""
        return self.energy.total_pj

    @property
    def energy_per_mac_pj(self) -> float:
        """Average energy per MAC in this layer (pJ)."""
        return self.energy_pj / self.macs if self.macs else 0.0


class CostModel:
    """Per-layer energy/latency lookup tables for one (model, architecture).

    Construction runs the analytical cost pipeline once (action counts,
    energy accounting, crossbar mapping with greedy replication, pipeline
    timing); every accessor afterwards is a dictionary lookup or a float
    multiply, cheap enough for the serving hot path.
    """

    def __init__(
        self,
        shapes: ModelShapes,
        arch: ArchitectureSpec,
        replicate: bool = True,
    ):
        self.shapes = shapes
        self.arch = arch
        energy_model = EnergyModel(arch)
        mapping = Mapper(arch).map(shapes, replicate=replicate)
        self.report: ThroughputReport = ThroughputModel(arch).report_from_mapping(
            mapping
        )
        self.layer_costs: list[LayerCost] = [
            LayerCost(
                name=placed.layer_name,
                energy=energy_model.layer_energy(placed.actions),
                latency_cycles=timing.latency_cycles,
                latency_us=timing.latency_us,
                replicas=timing.replicas,
                crossbars=timing.crossbars,
                macs=placed.actions.macs,
            )
            for placed, timing in zip(mapping.layers, self.report.layer_timings)
        ]
        self._by_name = {cost.name: cost for cost in self.layer_costs}
        self._energy_per_sample_pj = float(
            sum(cost.energy_pj for cost in self.layer_costs)
        )
        # Per-sample DAC/ADC/crossbar/digital attribution: the analog front
        # end keeps its own buckets and "digital" is defined as the exact
        # remainder, so the four values reconcile with energy_pj() to float
        # round-off no matter how the per-layer sums associated.
        components = self.energy_breakdown().components_pj
        analog = {key: float(components[key]) for key in ("adc", "dac", "crossbar")}
        self._energy_split_per_sample_pj = {
            **analog,
            "digital": self._energy_per_sample_pj - sum(analog.values()),
        }

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_shapes(
        cls, shapes: ModelShapes, arch: ArchitectureSpec, replicate: bool = True
    ) -> "CostModel":
        """Cost tables for a full-scale zoo shape table."""
        return cls(shapes, arch, replicate=replicate)

    @classmethod
    def from_model(
        cls, model: QuantizedModel, arch: ArchitectureSpec, replicate: bool = True
    ) -> "CostModel":
        """Cost tables for a runnable compiled :class:`QuantizedModel`."""
        return cls(shapes_from_model(model), arch, replicate=replicate)

    # -- lookups --------------------------------------------------------------

    def layer_cost(self, name: str) -> LayerCost:
        """The precomputed cost entry of one layer."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"model {self.shapes.name!r} has no crossbar layer {name!r}"
            ) from None

    @property
    def energy_per_sample_pj(self) -> float:
        """Whole-model energy for one input sample (pJ)."""
        return self._energy_per_sample_pj

    @property
    def energy_per_sample_uj(self) -> float:
        """Whole-model energy for one input sample (uJ)."""
        return self._energy_per_sample_pj / 1e6

    def energy_pj(self, n_samples: int = 1) -> float:
        """Modeled energy of running ``n_samples`` inputs (pJ)."""
        return self._energy_per_sample_pj * n_samples

    def energy_breakdown(self) -> EnergyBreakdown:
        """Whole-model per-component breakdown (one sample)."""
        total = EnergyBreakdown(name=f"{self.shapes.name}@{self.arch.name}")
        for cost in self.layer_costs:
            total.add(cost.energy)
        return total

    def energy_split_pj(self, n_samples: int = 1) -> dict[str, float]:
        """Per-component energy attribution for ``n_samples`` inputs (pJ).

        The four buckets are the paper's analog front end -- ``"dac"``,
        ``"adc"``, ``"crossbar"`` -- plus ``"digital"`` for everything else
        (shift+add, center processing, buffers, eDRAM, router,
        quantization).  ``"digital"`` is computed as the remainder against
        :meth:`energy_pj`, so the buckets sum to the request's existing
        modeled total to float round-off; request traces carry this split so
        per-tenant accounting can answer *where* the energy went.
        """
        return {
            key: value * n_samples
            for key, value in self._energy_split_per_sample_pj.items()
        }

    @property
    def single_sample_latency_us(self) -> float:
        """End-to-end modeled latency of one sample through the pipeline."""
        return self.report.single_sample_latency_us

    @property
    def steady_state_latency_us(self) -> float:
        """Pipeline initiation interval: modeled time per sample, steady state."""
        return self.report.steady_state_latency_us

    @property
    def throughput_samples_per_s(self) -> float:
        """Modeled steady-state throughput (samples per second)."""
        return self.report.throughput_samples_per_s

    def batch_latency_us(self, n_samples: int) -> float:
        """Modeled latency of a batch: pipeline fill + steady-state drain.

        The first sample pays the full per-layer pipeline
        (:attr:`single_sample_latency_us`); each further sample leaves the
        pipeline one initiation interval later.
        """
        if n_samples < 1:
            return 0.0
        return (
            self.single_sample_latency_us
            + (n_samples - 1) * self.steady_state_latency_us
        )

    def batch_latency_s(self, n_samples: int) -> float:
        """Modeled batch latency in seconds (see :meth:`batch_latency_us`)."""
        return self.batch_latency_us(n_samples) / 1e6

    # -- reporting ------------------------------------------------------------

    def validate_against_energy_model(self, rel_tol: float = 1e-6) -> float:
        """Cross-check totals against a fresh :meth:`EnergyModel.model_energy`.

        Returns the relative error; raises ``ValueError`` beyond ``rel_tol``.
        This is the consistency contract the Fig. 12 harness relies on (it
        computes the same totals through :class:`EnergyModel` directly).
        """
        reference = EnergyModel(self.arch).model_energy(self.shapes).total_pj
        if reference == 0.0:
            error = abs(self._energy_per_sample_pj)
        else:
            error = abs(self._energy_per_sample_pj - reference) / abs(reference)
        if error > rel_tol:
            raise ValueError(
                f"CostModel total {self._energy_per_sample_pj} pJ deviates from "
                f"EnergyModel total {reference} pJ by {error:.2e} (> {rel_tol})"
            )
        return error

    def summary(self) -> str:
        """Human-readable per-layer cost table."""
        lines = [
            f"{self.shapes.name}@{self.arch.name}: "
            f"{self.energy_per_sample_uj:.3f} uJ/sample, "
            f"{self.single_sample_latency_us:.1f} us/sample "
            f"({self.throughput_samples_per_s:,.0f} samples/s steady state)",
            f"  {'layer':>24} {'energy uJ':>10} {'latency us':>11} "
            f"{'replicas':>8} {'crossbars':>9}",
        ]
        for cost in self.layer_costs:
            lines.append(
                f"  {cost.name:>24} {cost.energy_pj / 1e6:>10.4f} "
                f"{cost.latency_us:>11.2f} {cost.replicas:>8} {cost.crossbars:>9}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostModel(model={self.shapes.name!r}, arch={self.arch.name!r}, "
            f"layers={len(self.layer_costs)}, "
            f"energy={self.energy_per_sample_uj:.3f}uJ/sample)"
        )
