"""Adaptive Weight Slicing (Section 4.2, Algorithm 1).

For every DNN layer RAELLA chooses, at compilation time, how many bits to put
in each weight slice.  Fewer, wider slices are denser and need fewer ADC
conversions but produce larger column sums and more saturation; the algorithm
picks the slicing with the fewest slices whose measured output error stays
under an *error budget* (0.09 by default: roughly one in eleven 8-bit outputs
off by one).

Error is measured empirically, exactly as in the paper: the layer is simulated
on crossbars with a handful of test inputs and conservative 1-bit input
slices, outputs are requantized to 8 bits, and the mean absolute code error
over non-zero expected outputs is compared against the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analog.noise import NoiseModel
from repro.arithmetic.slicing import Slicing, enumerate_slicings
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import MatmulLayer

__all__ = [
    "AdaptiveSlicingConfig",
    "SlicingChoice",
    "quantized_layer_outputs",
    "layer_output_error",
    "choose_weight_slicing",
]


@dataclass(frozen=True)
class AdaptiveSlicingConfig:
    """Configuration of the weight-slicing search.

    Parameters
    ----------
    error_budget:
        Mean absolute 8-bit output-code error allowed per non-zero output
        (0.09 in the paper).
    device_bits:
        Maximum bits per ReRAM device (4).
    weight_bits:
        Operand width (8).
    max_test_patches:
        Upper bound on the number of input patches used to measure error;
        patches beyond this are subsampled deterministically.  The paper uses
        activations from ten images, which for large layers is far more
        patches than needed to see order-of-magnitude error differences.
    group_early_stop:
        If true (default), slicings are evaluated in groups of increasing
        slice count and the search stops at the first group containing an
        under-budget slicing -- the outcome matches the exhaustive search of
        Algorithm 1 (fewest slices, then lowest error) at a fraction of the
        cost.  Set to false to sweep all 108 slicings.
    conservative_last_layer:
        Use the most conservative eight 1-bit weight slices for the model's
        last layer (Section 4.2.2).
    """

    error_budget: float = 0.09
    device_bits: int = 4
    weight_bits: int = 8
    max_test_patches: int = 512
    group_early_stop: bool = True
    conservative_last_layer: bool = True

    def __post_init__(self) -> None:
        if self.error_budget < 0:
            raise ValueError("error budget must be non-negative")
        if self.max_test_patches <= 0:
            raise ValueError("max_test_patches must be positive")

    @property
    def candidate_slicings(self) -> tuple[Slicing, ...]:
        """All candidate weight slicings (108 for 8-bit weights, 4-bit devices)."""
        return enumerate_slicings(self.weight_bits, self.device_bits)

    @property
    def most_conservative_slicing(self) -> Slicing:
        """The 1-bit-per-slice slicing."""
        return Slicing((1,) * self.weight_bits)


@dataclass
class SlicingChoice:
    """Result of the weight-slicing search for one layer."""

    layer_name: str
    slicing: Slicing
    mean_error: float
    within_budget: bool
    evaluated: list[tuple[Slicing, float]] = field(default_factory=list)

    @property
    def n_slices(self) -> int:
        """Number of weight slices chosen."""
        return self.slicing.n_slices


def _subsample_patches(patch_codes: np.ndarray, max_patches: int) -> np.ndarray:
    """Deterministically subsample input patches to bound search cost."""
    patch_codes = np.asarray(patch_codes, dtype=np.int64)
    if patch_codes.shape[0] <= max_patches:
        return patch_codes
    stride = patch_codes.shape[0] / max_patches
    indices = (np.arange(max_patches) * stride).astype(np.int64)
    return patch_codes[indices]


def quantized_layer_outputs(
    layer: MatmulLayer, patch_codes: np.ndarray, pim_matmul=None
) -> np.ndarray:
    """8-bit output codes of one layer for a batch of input patches.

    Runs the layer's digital pipeline (zero-point correction, bias, fused ReLU
    and requantization) on top of either the exact integer mat-mul
    (``pim_matmul=None``) or a PIM simulation.
    """
    real = layer.matmul_quantized(patch_codes, pim_matmul=pim_matmul)
    if layer.fuse_relu:
        real = np.maximum(real, 0.0)
    return layer.output_quant.quantize(real)


def layer_output_error(
    layer: MatmulLayer,
    patch_codes: np.ndarray,
    pim_config: PimLayerConfig,
    noise: NoiseModel | None = None,
    expected: np.ndarray | None = None,
    executor_factory: type[PimLayerExecutor] | None = None,
) -> float:
    """Mean absolute 8-bit output error of a PIM configuration on test inputs.

    The error is averaged over outputs whose expected code is non-zero,
    matching the error-budget definition of Section 4.2.1.
    ``executor_factory`` swaps in a different executor implementation (the
    vectorized runtime executor keeps the search bit-identical while caching
    trial encodings).
    """
    if expected is None:
        expected = quantized_layer_outputs(layer, patch_codes)
    factory = executor_factory or PimLayerExecutor
    executor = factory(layer, pim_config, noise=noise)
    actual = quantized_layer_outputs(layer, patch_codes, pim_matmul=executor)
    nonzero = expected != 0
    if not np.any(nonzero):
        return float(np.mean(np.abs(expected - actual)))
    return float(np.mean(np.abs(expected[nonzero] - actual[nonzero])))


def choose_weight_slicing(
    layer: MatmulLayer,
    patch_codes: np.ndarray,
    config: AdaptiveSlicingConfig | None = None,
    pim_config: PimLayerConfig | None = None,
    noise: NoiseModel | None = None,
    is_last_layer: bool = False,
    executor_factory: type[PimLayerExecutor] | None = None,
) -> SlicingChoice:
    """Choose a layer's weight slicing (Algorithm 1, ``FindBestSlicing``).

    Parameters
    ----------
    layer:
        The calibrated mat-mul layer.
    patch_codes:
        Test-input patch codes captured for this layer
        (:meth:`repro.nn.model.QuantizedModel.capture_layer_inputs`).
    config:
        Search configuration (budget, early stopping, ...).
    pim_config:
        Base PIM configuration (crossbar size, ADC, encoding).  The search
        always measures error with conservative 1-bit input slices, as in the
        paper; only the weight slicing varies.
    noise:
        Optional analog noise model -- the search is noise-aware (Section 7.2).
    is_last_layer:
        Force the most conservative slicing for the model's last layer.
    """
    config = config or AdaptiveSlicingConfig()
    pim_config = pim_config or PimLayerConfig()
    if is_last_layer and config.conservative_last_layer:
        return SlicingChoice(
            layer_name=layer.name,
            slicing=config.most_conservative_slicing,
            mean_error=0.0,
            within_budget=True,
        )

    patches = _subsample_patches(patch_codes, config.max_test_patches)
    expected = quantized_layer_outputs(layer, patches)
    # The paper compares slicings with the most conservative 1-bit input
    # slices (Section 4.2.2), regardless of the runtime input slicing.
    search_config = pim_config.with_changes(
        speculation=SpeculationMode.BIT_SERIAL,
        serial_input_slicing=None,
        device_bits=config.device_bits,
    )

    evaluated: list[tuple[Slicing, float]] = []
    best: tuple[Slicing, float] | None = None
    current_group: int | None = None
    for slicing in config.candidate_slicings:
        if (
            config.group_early_stop
            and best is not None
            and slicing.n_slices > current_group
        ):
            break
        error = layer_output_error(
            layer,
            patches,
            search_config.with_changes(weight_slicing=slicing),
            noise=noise,
            expected=expected,
            executor_factory=executor_factory,
        )
        evaluated.append((slicing, error))
        current_group = slicing.n_slices
        is_better = best is None or (slicing.n_slices, error) < (
            best[0].n_slices,
            best[1],
        )
        if error < config.error_budget and is_better:
            best = (slicing, error)

    if best is None:
        # No slicing met the budget; fall back to the most conservative one.
        fallback = config.most_conservative_slicing
        error = layer_output_error(
            layer,
            patches,
            search_config.with_changes(weight_slicing=fallback),
            noise=noise,
            expected=expected,
            executor_factory=executor_factory,
        )
        return SlicingChoice(
            layer_name=layer.name,
            slicing=fallback,
            mean_error=error,
            within_budget=error < config.error_budget,
            evaluated=evaluated,
        )
    return SlicingChoice(
        layer_name=layer.name,
        slicing=best[0],
        mean_error=best[1],
        within_budget=True,
        evaluated=evaluated,
    )
