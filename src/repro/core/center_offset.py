"""Center+Offset weight encoding (Section 4.1 of the paper).

Each weight filter ``W`` (one dot product's worth of weights mapped into one
crossbar) is represented as a *center* ``phi`` plus signed *offsets*:

    ``W . I = (phi * sum(I)) + (W+ - W-) . I``                       (Eq. 1)

The offsets ``W+ = max(W - phi, 0)`` and ``W- = max(phi - W, 0)`` are sliced
and programmed into the positive/negative devices of 2T2R cells, so positive
and negative sliced products cancel in analog and column sums stay small.  The
center term is computed digitally.

Centers are chosen per filter by minimising Eq. 2: the sum over weight slices
of ``2**l_i * (sum_w D(h_i, l_i, w - phi))**4``, which balances the magnitudes
of positive and negative slices in every crossbar column.

Weights here are the unsigned 8-bit *codes* of the per-channel quantization
(:mod:`repro.arithmetic.quantize`); the code of real zero is the quantization
zero point.  Three encodings are supported:

* ``CENTER_OFFSET`` -- RAELLA: centers from Eq. 2.
* ``ZERO_OFFSET``   -- common-practice differential encoding: the center is
  the code of real zero (the weight zero point), so positive/negative offsets
  correspond to positive/negative real weights.
* ``UNSIGNED``      -- ISAAC-style: no offsets, raw codes in 1T1R cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.arithmetic.bits import signed_crop
from repro.arithmetic.slicing import Slicing

__all__ = [
    "WeightEncoding",
    "EncodedWeights",
    "CenterOffsetEncoder",
    "optimal_center",
    "optimal_centers",
    "compute_offsets",
]

#: Candidate center values searched by Eq. 2 (the paper uses 1..255).
CENTER_CANDIDATES = np.arange(1, 256, dtype=np.int64)


class WeightEncoding(Enum):
    """How weight codes are mapped onto crossbar devices."""

    CENTER_OFFSET = "center_offset"
    ZERO_OFFSET = "zero_offset"
    UNSIGNED = "unsigned"

    @property
    def uses_centers(self) -> bool:
        """Whether the encoding stores offsets around a per-filter center."""
        return self is not WeightEncoding.UNSIGNED


def compute_offsets(
    weight_codes: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Split weight codes into positive/negative offsets about per-filter centers.

    ``weight_codes`` has shape ``(rows, filters)`` and ``centers`` has shape
    ``(filters,)``.  Returns ``(w_plus, w_minus)`` with the same shape as the
    weights, where ``w_plus - w_minus == weight_codes - centers``.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    centers = np.asarray(centers, dtype=np.int64)
    if weight_codes.ndim != 2:
        raise ValueError("weight_codes must be 2-D (rows x filters)")
    if centers.shape != (weight_codes.shape[1],):
        raise ValueError("centers must have one entry per filter")
    delta = weight_codes - centers[np.newaxis, :]
    return np.maximum(delta, 0), np.maximum(-delta, 0)


def _slice_column_cost(
    offsets: np.ndarray, slicing: Slicing, power: float
) -> np.ndarray:
    """Eq. 2 cost of signed offsets, vectorised over leading axes.

    ``offsets`` has shape ``(..., rows)``; the cost is summed over slices with
    the ``2**l_i`` bit-position weighting and the per-column sum raised to
    ``power`` (4 in the paper).
    """
    cost = np.zeros(offsets.shape[:-1], dtype=np.float64)
    for width, shift in zip(slicing.widths, slicing.shifts):
        sliced = signed_crop(offsets, shift + width - 1, shift)
        column_sum = sliced.sum(axis=-1).astype(np.float64)
        cost += (2.0**shift) * np.abs(column_sum) ** power
    return cost


def optimal_center(
    filter_codes: np.ndarray,
    slicing: Slicing,
    power: float = 4.0,
    candidates: np.ndarray | None = None,
) -> int:
    """Solve Eq. 2 for a single weight filter.

    Parameters
    ----------
    filter_codes:
        Unsigned 8-bit weight codes of one filter (1-D array).
    slicing:
        The weight slicing the filter will be programmed with.
    power:
        Exponent applied to each column's slice sum (4 in the paper).
    candidates:
        Candidate center values; defaults to 1..255.
    """
    filter_codes = np.asarray(filter_codes, dtype=np.int64).ravel()
    if filter_codes.size == 0:
        raise ValueError("filter must contain at least one weight")
    cands = CENTER_CANDIDATES if candidates is None else np.asarray(candidates)
    offsets = filter_codes[np.newaxis, :] - cands[:, np.newaxis]
    costs = _slice_column_cost(offsets, slicing, power)
    return int(cands[int(np.argmin(costs))])


def optimal_centers(
    weight_codes: np.ndarray,
    slicing: Slicing,
    power: float = 4.0,
    candidates: np.ndarray | None = None,
    max_chunk_elements: int = 8_000_000,
) -> np.ndarray:
    """Solve Eq. 2 independently for every filter (column) of a weight matrix.

    ``weight_codes`` has shape ``(rows, filters)``.  The search is vectorised
    over (candidate, row, filter) and chunked over filters to bound memory.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    if weight_codes.ndim != 2:
        raise ValueError("weight_codes must be 2-D (rows x filters)")
    rows, n_filters = weight_codes.shape
    cands = CENTER_CANDIDATES if candidates is None else np.asarray(candidates)
    chunk = max(int(max_chunk_elements // max(rows * cands.size, 1)), 1)
    centers = np.empty(n_filters, dtype=np.int64)
    for start in range(0, n_filters, chunk):
        block = weight_codes[:, start : start + chunk]  # (rows, chunk)
        # offsets: (candidates, chunk, rows)
        offsets = block.T[np.newaxis, :, :] - cands[:, np.newaxis, np.newaxis]
        costs = _slice_column_cost(offsets, slicing, power)  # (candidates, chunk)
        centers[start : start + block.shape[1]] = cands[np.argmin(costs, axis=0)]
    return centers


@dataclass
class EncodedWeights:
    """Weights encoded and sliced for programming into crossbars.

    Attributes
    ----------
    encoding:
        The weight encoding used.
    slicing:
        The weight slicing (bits per device column).
    centers:
        Per-filter centers, shape ``(filters,)`` (all zeros for UNSIGNED).
    positive_slices / negative_slices:
        Arrays of shape ``(n_slices, rows, filters)`` holding the slice values
        programmed into positive / negative devices.  For UNSIGNED encoding the
        negative array is all zeros.
    """

    encoding: WeightEncoding
    slicing: Slicing
    centers: np.ndarray
    positive_slices: np.ndarray
    negative_slices: np.ndarray

    @property
    def rows(self) -> int:
        """Number of crossbar rows occupied."""
        return int(self.positive_slices.shape[1])

    @property
    def n_filters(self) -> int:
        """Number of filters (dot products) encoded."""
        return int(self.positive_slices.shape[2])

    @property
    def n_columns(self) -> int:
        """Number of physical crossbar columns (filters x slices)."""
        return self.n_filters * self.slicing.n_slices

    @property
    def devices_programmed(self) -> int:
        """Number of ReRAM devices holding non-zero slice values."""
        return int(
            np.count_nonzero(self.positive_slices)
            + np.count_nonzero(self.negative_slices)
        )

    def reconstruct_codes(self) -> np.ndarray:
        """Reassemble the original weight codes (sanity check / tests)."""
        delta = np.zeros(self.positive_slices.shape[1:], dtype=np.int64)
        for i, shift in enumerate(self.slicing.shifts):
            delta += (self.positive_slices[i] - self.negative_slices[i]) << shift
        return delta + self.centers[np.newaxis, :]


@dataclass
class CenterOffsetEncoder:
    """Encodes weight-code matrices for crossbar programming.

    Parameters
    ----------
    slicing:
        Weight slicing (bits per device).
    encoding:
        Center+Offset (RAELLA), Zero+Offset (differential) or unsigned (ISAAC).
    power:
        Eq. 2 cost exponent.
    """

    slicing: Slicing
    encoding: WeightEncoding = WeightEncoding.CENTER_OFFSET
    power: float = 4.0

    def choose_centers(
        self, weight_codes: np.ndarray, zero_points: np.ndarray | None = None
    ) -> np.ndarray:
        """Choose per-filter centers according to the configured encoding."""
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        n_filters = weight_codes.shape[1]
        if self.encoding is WeightEncoding.UNSIGNED:
            return np.zeros(n_filters, dtype=np.int64)
        if self.encoding is WeightEncoding.ZERO_OFFSET:
            if zero_points is None:
                raise ValueError("Zero+Offset encoding needs weight zero points")
            zero_points = np.asarray(zero_points, dtype=np.int64)
            if zero_points.size == 1:
                return np.full(
                    n_filters, int(zero_points.reshape(-1)[0]), dtype=np.int64
                )
            if zero_points.shape != (n_filters,):
                raise ValueError("zero_points must have one entry per filter")
            return zero_points.copy()
        return optimal_centers(weight_codes, self.slicing, power=self.power)

    def encode(
        self, weight_codes: np.ndarray, zero_points: np.ndarray | None = None
    ) -> EncodedWeights:
        """Encode a ``(rows, filters)`` weight-code matrix."""
        weight_codes = np.asarray(weight_codes, dtype=np.int64)
        if weight_codes.ndim != 2:
            raise ValueError("weight_codes must be 2-D (rows x filters)")
        if np.any(weight_codes < 0) or np.any(weight_codes > 255):
            raise ValueError("weight codes must be unsigned 8-bit values")
        centers = self.choose_centers(weight_codes, zero_points)
        n_slices = self.slicing.n_slices
        rows, n_filters = weight_codes.shape
        positive = np.empty((n_slices, rows, n_filters), dtype=np.int64)
        negative = np.zeros_like(positive)
        if self.encoding is WeightEncoding.UNSIGNED:
            for i, part in enumerate(self.slicing.slice_unsigned(weight_codes)):
                positive[i] = part
        else:
            w_plus, w_minus = compute_offsets(weight_codes, centers)
            for i, part in enumerate(self.slicing.slice_unsigned(w_plus)):
                positive[i] = part
            for i, part in enumerate(self.slicing.slice_unsigned(w_minus)):
                negative[i] = part
        return EncodedWeights(
            encoding=self.encoding,
            slicing=self.slicing,
            centers=centers,
            positive_slices=positive,
            negative_slices=negative,
        )
