"""The RAELLA accelerator model.

Ties the functional simulation (compiled programs and their measured
statistics) to the hardware cost model.  Two evaluation paths are provided:

* :meth:`RaellaAccelerator.run` executes a compiled
  :class:`~repro.core.compiler.RaellaProgram` on real inputs and converts the
  *measured* event counts (ADC conversions, crossbar activity, DAC pulses,
  speculation failures) into energy -- this is used by the runnable
  scaled-down models and the ablation experiments.
* :meth:`RaellaAccelerator.evaluate_shapes` evaluates a *full-scale* DNN shape
  table analytically through :mod:`repro.hw` -- this is what reproduces the
  paper's Fig. 12/13 energy and throughput numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compiler import RaellaProgram
from repro.core.executor import LayerStatistics
from repro.hw.architecture import RAELLA_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.zoo import ModelShapes

__all__ = ["AcceleratorReport", "RaellaAccelerator", "statistics_to_energy"]


def statistics_to_energy(
    stats: LayerStatistics, arch: ArchitectureSpec, name: str | None = None
) -> EnergyBreakdown:
    """Convert measured layer statistics into an energy breakdown.

    The conversion uses the same per-action energies as the analytical model
    but with event counts measured by the functional executor, so it captures
    data-dependent effects (actual speculation failures, actual crossbar
    activity) instead of average-case estimates.
    """
    lib = arch.components
    device = 15.0  # max slice value of a 4-bit device: activity is scaled by
    # conductance fraction = (programmed slice value / 15).
    adc = stats.total_adc_converts * lib.adc_energy_pj(arch.adc_bits)
    crossbar = (stats.crossbar_activity / device) * lib.reram_energy_per_device_pulse_pj
    dac = stats.input_pulses * lib.dac_energy_per_pulse_pj
    periphery = stats.cycles * stats.n_columns / max(stats.n_crossbars, 1) * 0.0
    digital = stats.total_adc_converts * lib.shift_add_energy_pj
    psum_buffer = stats.total_adc_converts * 3.0 * lib.sram_energy_per_byte_pj
    input_buffer = stats.input_pulses * 0.125 * lib.sram_energy_per_byte_pj
    quantization = stats.psums_produced * lib.quantize_energy_pj
    center = stats.psums_produced * lib.center_apply_energy_pj
    return EnergyBreakdown(
        name=name or stats.layer_name,
        components_pj={
            "adc": adc,
            "crossbar": crossbar,
            "dac": dac,
            "column_periphery": periphery,
            "digital": digital,
            "center_processing": center,
            "input_buffer": input_buffer,
            "psum_buffer": psum_buffer,
            "quantization": quantization,
        },
    )


@dataclass
class AcceleratorReport:
    """Result of running a compiled program on an accelerator model."""

    model_name: str
    arch: ArchitectureSpec
    outputs: np.ndarray
    statistics: LayerStatistics
    energy: EnergyBreakdown
    per_layer_statistics: dict[str, LayerStatistics] = field(default_factory=dict)

    @property
    def converts_per_mac(self) -> float:
        """Measured ADC conversions per MAC."""
        return self.statistics.converts_per_mac

    @property
    def speculation_failure_rate(self) -> float:
        """Measured speculation failure rate."""
        return self.statistics.speculation_failure_rate

    @property
    def fidelity_loss_rate(self) -> float:
        """Measured rate of accepted saturations (fidelity loss)."""
        return self.statistics.fidelity_loss_rate

    def summary(self) -> str:
        """Human-readable report."""
        lines = [
            f"model: {self.model_name} on {self.arch.name}",
            f"  MACs simulated:        {self.statistics.macs:,}",
            f"  ADC converts/MAC:      {self.converts_per_mac:.4f}",
            f"  speculation failures:  {self.speculation_failure_rate:.2%}",
            f"  fidelity loss rate:    {self.fidelity_loss_rate:.2e}",
            f"  energy:                {self.energy.total_uj:.3f} uJ",
        ]
        return "\n".join(lines)


@dataclass
class RaellaAccelerator:
    """The RAELLA accelerator: functional + analytical evaluation."""

    arch: ArchitectureSpec = field(default_factory=lambda: RAELLA_ARCH)

    def run(self, program: RaellaProgram, inputs: np.ndarray) -> AcceleratorReport:
        """Execute a compiled program on inputs and report measured costs."""
        program.reset_statistics()
        outputs = program.run(inputs)
        per_layer = program.layer_statistics()
        total = program.aggregate_statistics()
        energy = EnergyBreakdown(name=f"{program.model.name}@{self.arch.name}")
        for name, stats in per_layer.items():
            energy.add(statistics_to_energy(stats, self.arch, name=name))
        return AcceleratorReport(
            model_name=program.model.name,
            arch=self.arch,
            outputs=outputs,
            statistics=total,
            energy=energy,
            per_layer_statistics=per_layer,
        )

    def evaluate_shapes(
        self, shapes: ModelShapes
    ) -> tuple[EnergyBreakdown, ThroughputReport]:
        """Analytically evaluate a full-scale DNN shape table."""
        energy = EnergyModel(self.arch).model_energy(shapes)
        throughput = ThroughputModel(self.arch).evaluate(shapes)
        return energy, throughput
