"""Dynamic Input Slicing: speculation and recovery scheduling (Section 4.3).

RAELLA feeds inputs to crossbars in *phases*.  With speculation enabled, each
of the three speculative slices (4b-2b-2b by default) is followed by its own
bit-serial recovery cycles: the speculative slice is re-sliced into 1-bit
slices, and ADCs re-convert only the columns whose speculative conversion
saturated.  Without speculation, all eight 1-bit slices are processed and every
column is converted in every cycle.

This module turns an input slicing into the ordered list of
:class:`InputPhase` objects the executor iterates over, and provides the
per-phase slice extraction.  Signed inputs (e.g. BERT activations) are handled
by the executor, which runs the positive and negative magnitudes in separate
passes (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.arithmetic.slicing import (
    ISAAC_INPUT_SLICING,
    RAELLA_SPECULATIVE_INPUT_SLICING,
    Slicing,
)

__all__ = ["SpeculationMode", "InputPhase", "InputSlicePlan", "extract_input_slice"]


class SpeculationMode(Enum):
    """Whether Dynamic Input Slicing speculation is enabled."""

    SPECULATIVE = "speculative"
    BIT_SERIAL = "bit_serial"


@dataclass(frozen=True)
class InputPhase:
    """One crossbar cycle's worth of input slicing.

    Attributes
    ----------
    kind:
        ``"speculative"``, ``"recovery"`` or ``"serial"``.
    width:
        Bits in this phase's input slice.
    shift:
        Bit position of the slice's LSB within the full input operand.
    parent:
        For recovery phases, the index (within the plan's speculative phases)
        of the speculative slice being recovered; ``None`` otherwise.
    """

    kind: str
    width: int
    shift: int
    parent: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("speculative", "recovery", "serial"):
            raise ValueError(f"unknown phase kind {self.kind!r}")
        if self.width <= 0 or self.shift < 0:
            raise ValueError("phase width must be positive and shift non-negative")

    @property
    def magnitude_shift(self) -> int:
        """Shift applied to this phase's converted column sums."""
        return self.shift


@dataclass(frozen=True)
class InputSlicePlan:
    """The ordered input phases for one layer execution.

    With speculation (the default 4b-2b-2b slicing) the plan is::

        spec[7..4], rec bit7, rec bit6, rec bit5, rec bit4,
        spec[3..2], rec bit3, rec bit2,
        spec[1..0], rec bit1, rec bit0

    i.e. 3 speculative + 8 recovery = 11 cycles (Section 6.1.1).  Without
    speculation the plan is the 8 bit-serial cycles.
    """

    mode: SpeculationMode
    speculative_slicing: Slicing
    phases: tuple[InputPhase, ...]

    @classmethod
    def build(
        cls,
        mode: SpeculationMode = SpeculationMode.SPECULATIVE,
        speculative_slicing: Slicing = RAELLA_SPECULATIVE_INPUT_SLICING,
        input_bits: int = 8,
        serial_slicing: Slicing | None = None,
    ) -> "InputSlicePlan":
        """Build the phase schedule for the given mode."""
        if mode is SpeculationMode.BIT_SERIAL:
            slicing = serial_slicing or Slicing((1,) * input_bits)
            if slicing.total_bits != input_bits:
                raise ValueError(
                    f"serial slicing covers {slicing.total_bits} bits, "
                    f"inputs have {input_bits}"
                )
            phases = tuple(
                InputPhase(kind="serial", width=w, shift=s)
                for w, s in zip(slicing.widths, slicing.shifts)
            )
            return cls(mode=mode, speculative_slicing=slicing, phases=phases)
        if speculative_slicing.total_bits != input_bits:
            raise ValueError(
                f"speculative slicing covers {speculative_slicing.total_bits} bits, "
                f"inputs have {input_bits}"
            )
        phases: list[InputPhase] = []
        for idx, (width, shift) in enumerate(
            zip(speculative_slicing.widths, speculative_slicing.shifts)
        ):
            phases.append(
                InputPhase(kind="speculative", width=width, shift=shift, parent=idx)
            )
            for bit in reversed(range(width)):
                phases.append(
                    InputPhase(kind="recovery", width=1, shift=shift + bit, parent=idx)
                )
        return cls(
            mode=mode, speculative_slicing=speculative_slicing, phases=tuple(phases)
        )

    @property
    def n_cycles(self) -> int:
        """Crossbar cycles per full input presentation (11 with speculation)."""
        return len(self.phases)

    @property
    def n_speculative(self) -> int:
        """Number of speculative phases."""
        return sum(1 for p in self.phases if p.kind == "speculative")

    @property
    def n_recovery(self) -> int:
        """Number of recovery phases."""
        return sum(1 for p in self.phases if p.kind == "recovery")

    @property
    def adc_converting_phases(self) -> tuple[InputPhase, ...]:
        """Phases in which ADCs convert every column (speculative / serial)."""
        return tuple(p for p in self.phases if p.kind != "recovery")


def extract_input_slice(input_codes: np.ndarray, phase: InputPhase) -> np.ndarray:
    """Extract the (non-negative) slice values a phase feeds to the DACs."""
    codes = np.asarray(input_codes, dtype=np.int64)
    if np.any(codes < 0):
        raise ValueError(
            "input codes must be non-negative; signed inputs are split into "
            "positive/negative magnitudes before slicing"
        )
    mask = (1 << phase.width) - 1
    return (codes >> phase.shift) & mask


#: ISAAC's input plan: eight 1-bit serial cycles.
ISAAC_INPUT_PLAN = InputSlicePlan.build(
    mode=SpeculationMode.BIT_SERIAL, serial_slicing=ISAAC_INPUT_SLICING
)
