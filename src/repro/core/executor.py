"""Functional PIM layer executor.

:class:`PimLayerExecutor` simulates one quantized DNN layer running on ReRAM
crossbars.  It is the workhorse behind every functional experiment in the
paper: RAELLA (Center+Offset, adaptive weight slicing, speculation/recovery),
the Zero+Offset differential baseline, and the ISAAC-style unsigned baseline
all run through the same executor with different :class:`PimLayerConfig`
settings, which is what makes the ablations apples-to-apples.

The executor computes the *raw* integer product of input codes and weight
codes (``sum_r I_r * W_r``) the way the hardware would: weights are encoded
and sliced across columns, inputs are sliced across cycles, analog column sums
are perturbed by the noise model, converted by a resolution-limited ADC, and
reassembled with digital shift+add.  Zero-point corrections, bias and
requantization stay in the digital layer code
(:class:`repro.nn.layers.MatmulLayer`).

Cost-relevant event counts (ADC conversions, speculation failures, crossbar
activity, DAC pulses, cycles) are accumulated in :class:`LayerStatistics`,
which the hardware model (:mod:`repro.hw`) converts into energy and latency.
Statistics semantics worth knowing:

* saturation means *clipping*: a column sum landing exactly on an ADC rail is
  converted without loss and is not counted as a speculation failure or
  fidelity-loss event;
* aggregating statistics has two flavours -- :meth:`LayerStatistics.merge_runs`
  for re-executions of the same layer (crossbar footprint takes the max) and
  :meth:`LayerStatistics.merge_layers` for totals across different layers of a
  network (everything sums).

This executor iterates the input-phase schedule in Python, one matmul per
phase; :mod:`repro.runtime` provides a bit-identical vectorized drop-in
(:class:`~repro.runtime.VectorizedLayerExecutor`) that batches all phases
into fused GEMMs and caches weight encodings -- prefer it on hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analog.noise import NoiseModel, NoiselessModel
from repro.arithmetic.slicing import (
    RAELLA_DEFAULT_WEIGHT_SLICING,
    RAELLA_SPECULATIVE_INPUT_SLICING,
    Slicing,
)
from repro.core.center_offset import CenterOffsetEncoder, EncodedWeights, WeightEncoding
from repro.core.dynamic_input import (
    InputPhase,
    InputSlicePlan,
    SpeculationMode,
    extract_input_slice,
)
from repro.nn.layers import MatmulLayer

__all__ = ["PimLayerConfig", "LayerStatistics", "PimLayerExecutor"]


@dataclass(frozen=True)
class PimLayerConfig:
    """Configuration of the PIM execution of one layer.

    The defaults describe RAELLA: a 512x512 2T2R crossbar, a signed 7-bit
    LSB-capture ADC, Center+Offset encoding, a 4b-2b-2b weight slicing and
    speculative 4b-2b-2b input slicing with bit-serial recovery.
    """

    crossbar_rows: int = 512
    crossbar_cols: int = 512
    adc_bits: int = 7
    adc_signed: bool = True
    weight_encoding: WeightEncoding = WeightEncoding.CENTER_OFFSET
    weight_slicing: Slicing = RAELLA_DEFAULT_WEIGHT_SLICING
    speculation: SpeculationMode = SpeculationMode.SPECULATIVE
    speculative_input_slicing: Slicing = RAELLA_SPECULATIVE_INPUT_SLICING
    serial_input_slicing: Slicing | None = None
    input_bits: int = 8
    device_bits: int = 4
    center_power: float = 4.0
    collect_column_sums: bool = False
    max_column_sum_samples: int = 200_000

    def __post_init__(self) -> None:
        if self.crossbar_rows <= 0 or self.crossbar_cols <= 0:
            raise ValueError("crossbar dimensions must be positive")
        if not 1 <= self.adc_bits <= 16:
            raise ValueError("ADC resolution must be in [1, 16]")
        if self.weight_slicing.total_bits != 8:
            raise ValueError("weight slicing must cover 8 bits")
        if self.weight_slicing.max_slice_bits > self.device_bits:
            raise ValueError(
                f"weight slices of {self.weight_slicing.max_slice_bits}b exceed "
                f"{self.device_bits}b devices"
            )
        if not self.adc_signed and self.weight_encoding.uses_centers:
            raise ValueError("offset encodings need a signed (2T2R) crossbar/ADC")
        if (
            self.serial_input_slicing is not None
            and self.serial_input_slicing.total_bits != self.input_bits
        ):
            raise ValueError("serial input slicing must cover input_bits")

    @property
    def adc_min(self) -> int:
        """Lower ADC bound."""
        return -(1 << (self.adc_bits - 1)) if self.adc_signed else 0

    @property
    def adc_max(self) -> int:
        """Upper ADC bound."""
        if self.adc_signed:
            return (1 << (self.adc_bits - 1)) - 1
        return (1 << self.adc_bits) - 1

    def with_changes(self, **kwargs) -> "PimLayerConfig":
        """Return a copy with selected fields replaced."""
        from dataclasses import replace

        return replace(self, **kwargs)


@dataclass
class LayerStatistics:
    """Cost-relevant event counts accumulated while executing a layer."""

    layer_name: str = ""
    n_inputs: int = 0
    macs: int = 0
    n_crossbars: int = 0
    n_columns: int = 0
    cycles: int = 0
    adc_converts_speculative: int = 0
    adc_converts_recovery: int = 0
    adc_converts_serial: int = 0
    speculation_slots: int = 0
    speculation_failures: int = 0
    fidelity_loss_events: int = 0
    fidelity_loss_opportunities: int = 0
    crossbar_activity: float = 0.0
    input_pulses: int = 0
    psums_produced: int = 0
    column_sums: dict[str, list] = field(default_factory=dict)

    @property
    def total_adc_converts(self) -> int:
        """All ADC conversions performed."""
        return (
            self.adc_converts_speculative
            + self.adc_converts_recovery
            + self.adc_converts_serial
        )

    @property
    def converts_per_mac(self) -> float:
        """ADC conversions per multiply-accumulate."""
        return self.total_adc_converts / self.macs if self.macs else 0.0

    @property
    def speculation_failure_rate(self) -> float:
        """Fraction of speculative conversions that saturated."""
        if self.speculation_slots == 0:
            return 0.0
        return self.speculation_failures / self.speculation_slots

    @property
    def fidelity_loss_rate(self) -> float:
        """Fraction of accepted conversions that saturated (lost fidelity)."""
        if self.fidelity_loss_opportunities == 0:
            return 0.0
        return self.fidelity_loss_events / self.fidelity_loss_opportunities

    def column_sum_array(self, kind: str) -> np.ndarray:
        """Collected pre-ADC column sums for a phase kind."""
        return np.concatenate(self.column_sums.get(kind, [np.empty(0)]))

    def merge_runs(self, other: "LayerStatistics") -> "LayerStatistics":
        """Accumulate another run of the *same* layer into this one (in place).

        Event counts sum; the structural fields ``n_crossbars``/``n_columns``
        describe the layer's fixed crossbar footprint, so re-running the same
        layer keeps their maximum rather than double-counting hardware.
        """
        self._accumulate_events(other)
        self.n_crossbars = max(self.n_crossbars, other.n_crossbars)
        self.n_columns = max(self.n_columns, other.n_columns)
        return self

    def merge_layers(self, other: "LayerStatistics") -> "LayerStatistics":
        """Aggregate statistics of a *different* layer into this one (in place).

        Across distinct layers of a network every field is a total, including
        the crossbar/column footprint.
        """
        self._accumulate_events(other)
        self.n_crossbars += other.n_crossbars
        self.n_columns += other.n_columns
        return self

    def merge(self, other: "LayerStatistics") -> "LayerStatistics":
        """Backwards-compatible alias for :meth:`merge_runs`."""
        return self.merge_runs(other)

    def _accumulate_events(self, other: "LayerStatistics") -> None:
        self.n_inputs += other.n_inputs
        self.macs += other.macs
        self.cycles += other.cycles
        self.adc_converts_speculative += other.adc_converts_speculative
        self.adc_converts_recovery += other.adc_converts_recovery
        self.adc_converts_serial += other.adc_converts_serial
        self.speculation_slots += other.speculation_slots
        self.speculation_failures += other.speculation_failures
        self.fidelity_loss_events += other.fidelity_loss_events
        self.fidelity_loss_opportunities += other.fidelity_loss_opportunities
        self.crossbar_activity += other.crossbar_activity
        self.input_pulses += other.input_pulses
        self.psums_produced += other.psums_produced
        for kind, chunks in other.column_sums.items():
            self.column_sums.setdefault(kind, []).extend(chunks)


@dataclass
class _EncodedChunk:
    """Weights of one crossbar (row chunk) pre-arranged for fast matmuls."""

    row_start: int
    rows: int
    encoded: EncodedWeights
    diff_flat: np.ndarray  # (rows, n_slices * filters): W+ - W-
    sum_flat: np.ndarray  # (rows, n_slices * filters): W+ + W-


class PimLayerExecutor:
    """Simulate one quantized mat-mul layer on PIM crossbars.

    Parameters
    ----------
    layer:
        The calibrated :class:`~repro.nn.layers.MatmulLayer` to execute.
    config:
        Crossbar / ADC / encoding / slicing configuration.
    noise:
        Column-sum noise model (ideal by default).
    """

    def __init__(
        self,
        layer: MatmulLayer,
        config: PimLayerConfig | None = None,
        noise: NoiseModel | None = None,
    ):
        self.layer = layer
        self.config = config or PimLayerConfig()
        self.noise = noise or NoiselessModel()
        self.plan = InputSlicePlan.build(
            mode=self.config.speculation,
            speculative_slicing=self.config.speculative_input_slicing,
            input_bits=self.config.input_bits,
            serial_slicing=self.config.serial_input_slicing,
        )
        self.encoder = CenterOffsetEncoder(
            slicing=self.config.weight_slicing,
            encoding=self.config.weight_encoding,
            power=self.config.center_power,
        )
        self.stats = LayerStatistics(layer_name=layer.name)
        self._chunks: list[_EncodedChunk] = []
        self._encode_weights()

    # -- weight programming ----------------------------------------------------

    def _encode_weights(self) -> None:
        codes = self.layer.weight_codes  # (K, filters)
        if codes is None:
            raise RuntimeError("layer weights have not been quantized")
        self._chunks = self._build_encoded_chunks()
        n_filters = codes.shape[1]
        filters_per_crossbar = max(
            self.config.crossbar_cols // self.config.weight_slicing.n_slices, 1
        )
        self.stats.n_crossbars = len(self._chunks) * int(
            np.ceil(n_filters / filters_per_crossbar)
        )
        self.stats.n_columns = (
            n_filters * self.config.weight_slicing.n_slices * len(self._chunks)
        )

    def _build_encoded_chunks(self) -> list[_EncodedChunk]:
        """Encode the layer's weights into per-row-chunk crossbar arrays.

        Subclasses may override this to serve pre-encoded chunks (the
        :mod:`repro.runtime` weight cache does) -- the returned chunks are
        treated as immutable.
        """
        codes = self.layer.weight_codes
        rows = self.config.crossbar_rows
        zero_points = self.layer.weight_zero_point
        chunks: list[_EncodedChunk] = []
        for row_start in range(0, codes.shape[0], rows):
            block = codes[row_start : row_start + rows]
            encoded = self.encoder.encode(block, zero_points)
            diff = encoded.positive_slices - encoded.negative_slices
            total = encoded.positive_slices + encoded.negative_slices
            diff_flat = diff.transpose(1, 0, 2).reshape(block.shape[0], -1)
            sum_flat = total.transpose(1, 0, 2).reshape(block.shape[0], -1)
            chunks.append(
                _EncodedChunk(
                    row_start=row_start,
                    rows=block.shape[0],
                    encoded=encoded,
                    diff_flat=np.ascontiguousarray(diff_flat),
                    sum_flat=np.ascontiguousarray(sum_flat),
                )
            )
        return chunks

    @property
    def encoded_chunks(self) -> list[EncodedWeights]:
        """Encoded weights, one entry per crossbar row chunk."""
        return [chunk.encoded for chunk in self._chunks]

    @property
    def n_row_chunks(self) -> int:
        """Number of crossbar row chunks the reduction dimension spans."""
        return len(self._chunks)

    # -- statistics helpers -----------------------------------------------------

    def reset_stats(self) -> None:
        """Clear accumulated statistics."""
        n_crossbars, n_columns = self.stats.n_crossbars, self.stats.n_columns
        self.stats = LayerStatistics(layer_name=self.layer.name)
        self.stats.n_crossbars = n_crossbars
        self.stats.n_columns = n_columns

    def _record_column_sums(self, kind: str, sums: np.ndarray) -> None:
        if not self.config.collect_column_sums:
            return
        bucket = self.stats.column_sums.setdefault(kind, [])
        collected = sum(chunk.size for chunk in bucket)
        remaining = self.config.max_column_sum_samples - collected
        if remaining <= 0:
            return
        flat = np.asarray(sums).ravel()
        if flat.size > remaining:
            # Subsample at evenly-spaced deterministic positions across the
            # whole phase output (exactly ``remaining`` samples); taking a
            # contiguous prefix would bias the distribution towards the
            # first columns of the first batches.
            indices = (np.arange(remaining) * (flat.size / remaining)).astype(np.int64)
            flat = flat[indices]
        bucket.append(flat.astype(np.float64, copy=True))

    # -- execution ---------------------------------------------------------------

    def __call__(
        self, input_codes: np.ndarray, layer: MatmulLayer | None = None
    ) -> np.ndarray:
        """PIM mat-mul hook interface (see :class:`repro.nn.layers.PimMatmul`)."""
        if layer is not None and layer is not self.layer:
            raise ValueError(
                f"executor built for layer {self.layer.name!r} got {layer.name!r}"
            )
        return self.matmul(input_codes)

    def matmul(self, input_codes: np.ndarray) -> np.ndarray:
        """Compute the raw code product ``input_codes @ weight_codes``.

        ``input_codes`` has shape ``(M, reduction_dim)``; the result has shape
        ``(M, n_filters)`` and approximates the exact integer product up to
        ADC fidelity loss and analog noise.
        """
        codes = np.asarray(input_codes, dtype=np.int64)
        if codes.ndim != 2 or codes.shape[1] != self.layer.reduction_dim:
            raise ValueError(
                f"expected inputs of shape (M, {self.layer.reduction_dim})"
            )
        signed_inputs = bool(np.any(codes < 0))
        if signed_inputs:
            positive = np.maximum(codes, 0)
            negative = np.maximum(-codes, 0)
            raw = self._matmul_unsigned(positive) - self._matmul_unsigned(negative)
        else:
            raw = self._matmul_unsigned(codes)
        self.stats.n_inputs += codes.shape[0]
        self.stats.macs += codes.shape[0] * codes.shape[1] * self.layer.out_features
        self.stats.psums_produced += codes.shape[0] * self.layer.out_features
        return raw

    def _matmul_unsigned(self, codes: np.ndarray) -> np.ndarray:
        m = codes.shape[0]
        n_filters = self.layer.out_features
        raw = np.zeros((m, n_filters), dtype=np.float64)
        for chunk_index, chunk in enumerate(self._chunks):
            chunk_codes = codes[:, chunk.row_start : chunk.row_start + chunk.rows]
            raw += self._chunk_matmul(chunk_codes, chunk, chunk_index)
        # All row chunks operate on parallel crossbars, so latency is set by
        # one chunk's schedule; a batch of M input vectors is processed
        # sequentially through each crossbar.
        self.stats.cycles += m * self.plan.n_cycles
        return raw

    def _phase_column_sums(
        self, slice_values: np.ndarray, chunk: _EncodedChunk
    ) -> tuple[np.ndarray, float]:
        """Analog column sums for one phase: (M, n_slices, filters) and activity."""
        m = slice_values.shape[0]
        n_slices = chunk.encoded.slicing.n_slices
        n_filters = chunk.encoded.n_filters
        if isinstance(self.noise, NoiselessModel):
            sums = (slice_values @ chunk.diff_flat).astype(np.float64)
            # Total analog activity has a cheap closed form when it is only
            # needed in aggregate (energy accounting).
            activity = float(slice_values.sum(axis=0) @ chunk.sum_flat.sum(axis=1))
        else:
            total = (slice_values @ chunk.sum_flat).astype(np.float64)
            diff = (slice_values @ chunk.diff_flat).astype(np.float64)
            positive = 0.5 * (total + diff)
            negative = 0.5 * (total - diff)
            activity = float(total.sum())
            sums = self.noise.apply(positive, negative)
        self.stats.crossbar_activity += activity
        self.stats.input_pulses += int(slice_values.sum())
        return sums.reshape(m, n_slices, n_filters), activity

    def _convert(self, sums: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """ADC conversion: returns (clipped integer values, saturation mask).

        Saturation is detected from the pre-clip rounded value: a column sum
        that lands exactly on an ADC rail is converted without any clipping,
        so it is not a saturation event.  Both rails count -- an unsigned
        column sum is non-negative in the ideal case, but analog noise can
        drive it below zero, and clipping it back to the bottom rail loses
        fidelity just like overflow does.
        """
        rounded = np.round(sums)
        clipped = np.clip(rounded, self.config.adc_min, self.config.adc_max)
        saturated = (rounded < self.config.adc_min) | (rounded > self.config.adc_max)
        return clipped, saturated

    def _chunk_matmul(
        self, codes: np.ndarray, chunk: _EncodedChunk, chunk_index: int = 0
    ) -> np.ndarray:
        """One row chunk's contribution, shaped ``(M, n_filters)``.

        ``chunk_index`` is the chunk's position in :attr:`_chunks`; subclasses
        keying per-chunk state (GEMM operands, compiled plans) index by it
        rather than by object identity, which keeps that state picklable and
        immune to ``id()`` reuse.
        """
        m = codes.shape[0]
        encoded = chunk.encoded
        n_filters = encoded.n_filters
        weight_shifts = np.array(encoded.slicing.shifts, dtype=np.int64)
        analog = np.zeros((m, n_filters), dtype=np.float64)
        if encoded.encoding.uses_centers:
            digital = encoded.centers[np.newaxis, :].astype(np.float64) * codes.sum(
                axis=1, keepdims=True
            )
        else:
            digital = np.zeros((m, n_filters), dtype=np.float64)

        if self.plan.mode is SpeculationMode.SPECULATIVE:
            analog += self._run_speculative(codes, chunk, weight_shifts)
        else:
            analog += self._run_serial(codes, chunk, weight_shifts)
        return digital + analog

    def _phase_sums(
        self, codes: np.ndarray, chunk: _EncodedChunk, phase: InputPhase, index: int
    ) -> np.ndarray:
        """Analog column sums of one phase, shaped ``(M, n_slices, filters)``.

        The per-phase path extracts the slice and runs one matmul here; the
        vectorized runtime executor overrides this to serve sums precomputed
        for all phases in a single batched GEMM.  ``index`` is the phase's
        position in the plan.
        """
        slice_values = extract_input_slice(codes, phase)
        sums, _ = self._phase_column_sums(slice_values, chunk)
        return sums

    def _run_serial(
        self, codes: np.ndarray, chunk: _EncodedChunk, weight_shifts: np.ndarray
    ) -> np.ndarray:
        m = codes.shape[0]
        n_filters = chunk.encoded.n_filters
        accum = np.zeros((m, n_filters), dtype=np.float64)
        for index, phase in enumerate(self.plan.phases):
            sums = self._phase_sums(codes, chunk, phase, index)
            self._record_column_sums("serial", sums)
            converted, saturated = self._convert(sums)
            self.stats.adc_converts_serial += converted.size
            self.stats.fidelity_loss_events += int(saturated.sum())
            self.stats.fidelity_loss_opportunities += converted.size
            scale = 2.0 ** (phase.shift + weight_shifts)
            accum += (converted * scale[np.newaxis, :, np.newaxis]).sum(axis=1)
        return accum

    def _run_speculative(
        self, codes: np.ndarray, chunk: _EncodedChunk, weight_shifts: np.ndarray
    ) -> np.ndarray:
        m = codes.shape[0]
        n_filters = chunk.encoded.n_filters
        accum = np.zeros((m, n_filters), dtype=np.float64)
        phases = self.plan.phases
        idx = 0
        while idx < len(phases):
            spec_phase = phases[idx]
            assert spec_phase.kind == "speculative"
            recovery_phases = []
            j = idx + 1
            while j < len(phases) and phases[j].kind == "recovery":
                recovery_phases.append((j, phases[j]))
                j += 1
            accum += self._speculate_and_recover(
                codes, chunk, weight_shifts, (idx, spec_phase), recovery_phases
            )
            idx = j
        return accum

    def _speculate_and_recover(
        self,
        codes: np.ndarray,
        chunk: _EncodedChunk,
        weight_shifts: np.ndarray,
        spec: tuple[int, InputPhase],
        recovery_phases: list[tuple[int, InputPhase]],
    ) -> np.ndarray:
        spec_index, spec_phase = spec
        # Speculative cycle: all columns converted.
        sums = self._phase_sums(codes, chunk, spec_phase, spec_index)
        self._record_column_sums("speculative", sums)
        converted, saturated = self._convert(sums)
        self.stats.adc_converts_speculative += converted.size
        self.stats.speculation_slots += converted.size
        self.stats.speculation_failures += int(saturated.sum())
        ok = ~saturated
        scale = 2.0 ** (spec_phase.shift + weight_shifts)
        accum = (np.where(ok, converted, 0.0) * scale[np.newaxis, :, np.newaxis]).sum(
            axis=1
        )
        # Recovery cycles: crossbars always run them; ADCs convert only the
        # columns whose speculative conversion saturated.
        for index, phase in recovery_phases:
            bit_sums = self._phase_sums(codes, chunk, phase, index)
            self._record_column_sums("recovery", bit_sums)
            converted_bits, bit_saturated = self._convert(bit_sums)
            needed = saturated
            self.stats.adc_converts_recovery += int(needed.sum())
            self.stats.fidelity_loss_events += int((bit_saturated & needed).sum())
            self.stats.fidelity_loss_opportunities += int(needed.sum())
            bit_scale = 2.0 ** (phase.shift + weight_shifts)
            contribution = converted_bits * bit_scale[np.newaxis, :, np.newaxis]
            accum += np.where(needed, contribution, 0.0).sum(axis=1)
        return accum
