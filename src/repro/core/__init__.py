"""RAELLA's core contribution.

* :mod:`repro.core.center_offset`    -- Center+Offset weight encoding (Eq. 1/2).
* :mod:`repro.core.dynamic_input`    -- Dynamic Input Slicing: speculation and
  recovery scheduling (Section 4.3).
* :mod:`repro.core.executor`         -- the PIM layer executor: functional
  simulation of a layer on crossbars with any encoding / slicing / ADC policy.
* :mod:`repro.core.adaptive_slicing` -- Adaptive Weight Slicing (Algorithm 1).
* :mod:`repro.core.compiler`         -- compile a quantized model into a
  RAELLA program (per-layer slicings, centers, executors).
* :mod:`repro.core.accelerator`      -- the full-accelerator model combining
  functional statistics with the hardware cost model.
"""

from repro.core.accelerator import AcceleratorReport, RaellaAccelerator
from repro.core.adaptive_slicing import AdaptiveSlicingConfig, choose_weight_slicing
from repro.core.center_offset import (
    CenterOffsetEncoder,
    EncodedWeights,
    WeightEncoding,
    optimal_center,
    optimal_centers,
)
from repro.core.compiler import CompiledLayer, RaellaCompiler, RaellaProgram
from repro.core.dynamic_input import InputSlicePlan, SpeculationMode
from repro.core.executor import LayerStatistics, PimLayerConfig, PimLayerExecutor

__all__ = [
    "AcceleratorReport",
    "RaellaAccelerator",
    "AdaptiveSlicingConfig",
    "choose_weight_slicing",
    "CenterOffsetEncoder",
    "EncodedWeights",
    "WeightEncoding",
    "optimal_center",
    "optimal_centers",
    "CompiledLayer",
    "RaellaCompiler",
    "RaellaProgram",
    "InputSlicePlan",
    "SpeculationMode",
    "LayerStatistics",
    "PimLayerConfig",
    "PimLayerExecutor",
]
