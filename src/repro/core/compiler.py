"""Compile a quantized model into a RAELLA program.

Compilation is the paper's one-time preprocessing (Algorithm 1 +
``FindOptimalCenters``): for every crossbar-mapped layer it

1. captures a handful of test-input activations,
2. chooses the layer's weight slicing under the error budget
   (:mod:`repro.core.adaptive_slicing`),
3. computes per-filter centers and encodes the weights
   (:mod:`repro.core.center_offset`), and
4. builds the layer's :class:`~repro.core.executor.PimLayerExecutor`.

The resulting :class:`RaellaProgram` plugs straight into
:meth:`repro.nn.model.QuantizedModel.forward_quantized` as the PIM mat-mul
hook and aggregates per-layer execution statistics for the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analog.noise import NoiseModel
from repro.core.adaptive_slicing import (
    AdaptiveSlicingConfig,
    SlicingChoice,
    choose_weight_slicing,
)
from repro.core.executor import LayerStatistics, PimLayerConfig, PimLayerExecutor
from repro.nn.layers import MatmulLayer
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_images, synthetic_signed_activations

__all__ = ["CompiledLayer", "RaellaProgram", "RaellaCompilerConfig", "RaellaCompiler"]


@dataclass
class CompiledLayer:
    """One layer's compilation result."""

    layer: MatmulLayer
    choice: SlicingChoice
    executor: PimLayerExecutor

    @property
    def name(self) -> str:
        """Layer name."""
        return self.layer.name

    @property
    def n_weight_slices(self) -> int:
        """Chosen number of weight slices."""
        return self.choice.slicing.n_slices

    @property
    def centers(self) -> np.ndarray:
        """Per-filter centers of the first crossbar row chunk."""
        return self.executor.encoded_chunks[0].centers


@dataclass
class RaellaProgram:
    """A compiled model: per-layer executors plus aggregate statistics."""

    model: QuantizedModel
    layers: dict[str, CompiledLayer]
    config: "RaellaCompilerConfig"

    def pim_matmul(self, input_codes: np.ndarray, layer: MatmulLayer) -> np.ndarray:
        """PIM mat-mul hook dispatching to the layer's executor."""
        compiled = self.layers.get(layer.name)
        if compiled is None:
            raise KeyError(f"layer {layer.name!r} was not compiled")
        return compiled.executor.matmul(input_codes)

    def run(self, inputs: np.ndarray, return_codes: bool = False) -> np.ndarray:
        """Run the model's integer path through the compiled executors."""
        return self.model.forward_quantized(
            inputs, pim_matmul=self.pim_matmul, return_codes=return_codes
        )

    def layer_statistics(self) -> dict[str, LayerStatistics]:
        """Per-layer accumulated statistics."""
        return {name: c.executor.stats for name, c in self.layers.items()}

    def aggregate_statistics(self) -> LayerStatistics:
        """Sum of all layers' statistics (totals, including crossbar counts)."""
        total = LayerStatistics(layer_name=self.model.name)
        for compiled in self.layers.values():
            total.merge_layers(compiled.executor.stats)
        return total

    def reset_statistics(self) -> None:
        """Clear accumulated statistics on every executor."""
        for compiled in self.layers.values():
            compiled.executor.reset_stats()

    def slicing_summary(self) -> dict[str, tuple[int, ...]]:
        """Chosen weight slicing widths per layer (Fig. 7 data)."""
        return {name: c.choice.slicing.widths for name, c in self.layers.items()}


@dataclass(frozen=True)
class RaellaCompilerConfig:
    """Compiler configuration.

    Parameters
    ----------
    pim:
        Base PIM configuration used for the final executors (crossbar size,
        ADC resolution, encoding, speculation mode).
    adaptive:
        Adaptive Weight Slicing search configuration.
    adaptive_slicing_enabled:
        If false, every layer uses ``pim.weight_slicing`` unchanged (used by
        the ablation setups).
    n_test_inputs:
        Number of test inputs used for preprocessing (10 in the paper).
    """

    pim: PimLayerConfig = field(default_factory=PimLayerConfig)
    adaptive: AdaptiveSlicingConfig = field(default_factory=AdaptiveSlicingConfig)
    adaptive_slicing_enabled: bool = True
    n_test_inputs: int = 10


class RaellaCompiler:
    """Compiles calibrated quantized models for PIM execution.

    Parameters
    ----------
    config:
        Compiler configuration.
    noise:
        Optional column-sum noise model shared by all executors.
    executor_factory:
        Callable building the per-layer executor; defaults to the per-phase
        :class:`~repro.core.executor.PimLayerExecutor`.  The vectorized
        runtime (:mod:`repro.runtime`) injects its batched executor here.
    """

    def __init__(
        self,
        config: RaellaCompilerConfig | None = None,
        noise: NoiseModel | None = None,
        executor_factory: type[PimLayerExecutor] | None = None,
    ):
        self.config = config or RaellaCompilerConfig()
        self.noise = noise
        self.executor_factory = executor_factory or PimLayerExecutor

    def _default_test_inputs(self, model: QuantizedModel, seed: int) -> np.ndarray:
        rng = np.random.default_rng(seed)
        n = self.config.n_test_inputs
        if len(model.input_shape) == 3:
            return synthetic_images(n, model.input_shape, rng)
        if model.signed_input:
            return synthetic_signed_activations((n, *model.input_shape), rng)
        return np.abs(rng.normal(0.0, 1.0, size=(n, *model.input_shape)))

    def compile(
        self,
        model: QuantizedModel,
        test_inputs: np.ndarray | None = None,
        seed: int = 0,
    ) -> RaellaProgram:
        """Compile a calibrated model into a :class:`RaellaProgram`.

        Parameters
        ----------
        model:
            A calibrated :class:`~repro.nn.model.QuantizedModel`.
        test_inputs:
            Inputs used for preprocessing (ten validation images in the
            paper); synthetic inputs matching the model's input shape are
            generated when omitted.
        seed:
            Seed for generated test inputs.
        """
        if not model.is_calibrated:
            raise ValueError("model must be calibrated before compilation")
        if test_inputs is None:
            test_inputs = self._default_test_inputs(model, seed)
        captured = model.capture_layer_inputs(test_inputs)
        matmul_layers = model.matmul_layers()
        compiled: dict[str, CompiledLayer] = {}
        for index, layer in enumerate(matmul_layers):
            is_last = index == len(matmul_layers) - 1
            patch_codes = captured[layer.name].patch_codes
            if self.config.adaptive_slicing_enabled:
                choice = choose_weight_slicing(
                    layer,
                    patch_codes,
                    config=self.config.adaptive,
                    pim_config=self.config.pim,
                    noise=self.noise,
                    is_last_layer=is_last,
                    executor_factory=self.executor_factory,
                )
            else:
                choice = SlicingChoice(
                    layer_name=layer.name,
                    slicing=self.config.pim.weight_slicing,
                    mean_error=float("nan"),
                    within_budget=True,
                )
            executor = self.executor_factory(
                layer,
                self.config.pim.with_changes(weight_slicing=choice.slicing),
                noise=self.noise,
            )
            compiled[layer.name] = CompiledLayer(
                layer=layer, choice=choice, executor=executor
            )
        return RaellaProgram(model=model, layers=compiled, config=self.config)
