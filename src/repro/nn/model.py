"""Quantized model container.

:class:`QuantizedModel` chains layers sequentially, runs float and integer
forward passes, calibrates activation quantization from sample data, and lets
PIM executors replace the integer mat-mul of every crossbar-mapped layer via a
hook (see :class:`repro.nn.layers.MatmulLayer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.nn.layers import Layer, MatmulLayer, PimMatmul, TensorQuant

__all__ = ["QuantizedModel", "LayerActivation"]


@dataclass
class LayerActivation:
    """Captured integer inputs of one mat-mul layer.

    ``patch_codes`` is the ``(M, reduction_dim)`` matrix of raw input codes the
    layer's crossbars would see -- exactly the "test inputs" RAELLA's
    preprocessing (Algorithm 1) consumes.
    """

    layer_name: str
    patch_codes: np.ndarray


class QuantizedModel:
    """A sequential 8-bit quantized DNN.

    Parameters
    ----------
    name:
        Human-readable model name.
    layers:
        Layers applied in order.
    input_shape:
        Shape of one input sample (excluding the batch dimension).
    signed_input:
        Whether the model input is quantized with a signed code range (e.g. the
        token embeddings feeding BERT's feed-forward blocks).
    """

    def __init__(
        self,
        name: str,
        layers: Sequence[Layer],
        input_shape: tuple[int, ...],
        signed_input: bool = False,
    ):
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.name = name
        self.layers = list(layers)
        self.input_shape = tuple(int(d) for d in input_shape)
        self.signed_input = signed_input
        self.input_quant: TensorQuant | None = None
        self._validate_shapes()

    # -- structure -----------------------------------------------------------

    def _validate_shapes(self) -> None:
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
        self.output_shape = shape

    def matmul_layers(self) -> list[MatmulLayer]:
        """Layers that map onto PIM crossbars, in execution order."""
        return [layer for layer in self.layers if isinstance(layer, MatmulLayer)]

    def layer_input_shapes(self) -> dict[str, tuple[int, ...]]:
        """Input shape (excluding batch) of every layer, keyed by name."""
        shapes = {}
        shape = self.input_shape
        for layer in self.layers:
            shapes[layer.name] = shape
            shape = layer.output_shape(shape)
        return shapes

    def total_macs(self) -> int:
        """Total multiply-accumulates per input sample."""
        shapes = self.layer_input_shapes()
        return sum(layer.macs(shapes[layer.name]) for layer in self.matmul_layers())

    def total_weights(self) -> int:
        """Total weight count across mat-mul layers."""
        return sum(layer.n_weights for layer in self.matmul_layers())

    # -- float path ----------------------------------------------------------

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        """Run the float reference forward pass."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward_float(out)
        return out

    # -- calibration ---------------------------------------------------------

    @property
    def is_calibrated(self) -> bool:
        """Whether activation quantization parameters have been fitted."""
        return self.input_quant is not None and all(
            layer.is_calibrated for layer in self.matmul_layers()
        )

    def calibrate(self, calibration_inputs: np.ndarray) -> None:
        """Fit activation quantization from a batch of calibration inputs.

        Runs the float forward pass once, recording each mat-mul layer's input
        and output tensors, and sets its :class:`TensorQuant` specs.  The last
        mat-mul layer keeps a signed output quantization (logits).
        """
        x = np.asarray(calibration_inputs, dtype=np.float64)
        self.input_quant = TensorQuant.from_values(x, signed=self.signed_input)
        matmuls = self.matmul_layers()
        last_matmul = matmuls[-1] if matmuls else None
        out = x
        for layer in self.layers:
            layer_input = out
            out = layer.forward_float(out)
            if isinstance(layer, MatmulLayer):
                signed_output = layer is last_matmul and not layer.fuse_relu
                layer.calibrate(layer_input, out, signed_output=signed_output)

    # -- integer path --------------------------------------------------------

    def forward_quantized(
        self,
        x: np.ndarray,
        pim_matmul: PimMatmul | None = None,
        return_codes: bool = False,
        micro_batch: int | None = None,
    ) -> np.ndarray:
        """Run the integer forward pass.

        Parameters
        ----------
        x:
            Real-valued input batch; it is quantized with the model's input
            spec first.
        pim_matmul:
            Optional hook replacing every mat-mul layer's exact integer
            product with an analog-PIM simulation.
        return_codes:
            If true, return the final layer's integer codes instead of the
            dequantized real values.
        micro_batch:
            If set, run the batch through the network ``micro_batch`` samples
            at a time and concatenate the outputs.  Bounds the working-set
            size of large batches (im2col patches, PIM phase tensors).
        """
        if not self.is_calibrated:
            raise RuntimeError("model must be calibrated before quantized inference")
        x = np.asarray(x, dtype=np.float64)
        if micro_batch is not None:
            if micro_batch <= 0:
                raise ValueError("micro_batch must be positive")
            if x.shape[0] > micro_batch:
                parts = [
                    self.forward_quantized(
                        x[start : start + micro_batch],
                        pim_matmul=pim_matmul,
                        return_codes=return_codes,
                    )
                    for start in range(0, x.shape[0], micro_batch)
                ]
                return np.concatenate(parts, axis=0)
        codes = self.input_quant.quantize(x)
        quant = self.input_quant
        for layer in self.layers:
            codes, quant = layer.forward_quantized(codes, quant, pim_matmul=pim_matmul)
        if return_codes:
            return codes
        return quant.dequantize(codes)

    def predict(
        self,
        x: np.ndarray,
        pim_matmul: PimMatmul | None = None,
        micro_batch: int | None = None,
    ) -> np.ndarray:
        """Class predictions from the integer path."""
        logits = self.forward_quantized(
            x, pim_matmul=pim_matmul, micro_batch=micro_batch
        )
        return np.argmax(logits, axis=-1)

    def predict_float(self, x: np.ndarray) -> np.ndarray:
        """Class predictions from the float reference path."""
        return np.argmax(self.forward_float(x), axis=-1)

    # -- introspection for PIM compilation ------------------------------------

    def capture_layer_inputs(
        self, x: np.ndarray, layer_names: Iterable[str] | None = None
    ) -> dict[str, LayerActivation]:
        """Record the raw patch codes each mat-mul layer sees for input ``x``.

        These are the per-layer "test inputs" that RAELLA's compile-time
        preprocessing (center selection and adaptive weight slicing) operates
        on.  The forward pass uses the exact integer path.
        """
        if not self.is_calibrated:
            raise RuntimeError("model must be calibrated before capturing inputs")
        wanted = set(layer_names) if layer_names is not None else None
        captured: dict[str, LayerActivation] = {}
        codes = self.input_quant.quantize(np.asarray(x, dtype=np.float64))
        quant = self.input_quant
        for layer in self.layers:
            if isinstance(layer, MatmulLayer) and (
                wanted is None or layer.name in wanted
            ):
                patches, _ = layer._to_patches(codes, layer.input_quant.zero_point)
                captured[layer.name] = LayerActivation(
                    layer_name=layer.name,
                    patch_codes=np.asarray(patches, dtype=np.int64),
                )
            codes, quant = layer.forward_quantized(codes, quant)
        return captured

    def get_layer(self, name: str) -> Layer:
        """Look a layer up by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantizedModel(name={self.name!r}, layers={len(self.layers)}, "
            f"macs={self.total_macs()}, weights={self.total_weights()})"
        )
