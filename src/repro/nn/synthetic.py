"""Synthetic weight and activation generators.

The column-sum statistics RAELLA exploits depend on operand *distributions*
(Fig. 8 of the paper): DNN weights follow rough per-filter bell curves whose
means differ filter to filter, and post-ReLU activations follow right-skewed
distributions with sparse high-order bits.  These generators produce tensors
with those statistics so that shape-faithful synthetic models exhibit the same
crossbar behaviour as the paper's pretrained models.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "synthetic_conv_weights",
    "synthetic_linear_weights",
    "negative_skewed_filter_weights",
    "synthetic_activations",
    "synthetic_images",
    "synthetic_signed_activations",
]


def _per_filter_means(
    n_filters: int, rng: np.random.Generator, mean_spread: float
) -> np.ndarray:
    """Random per-filter mean offsets (different filters converge differently)."""
    return rng.normal(0.0, mean_spread, size=n_filters)


def synthetic_conv_weights(
    out_channels: int,
    in_channels: int,
    kernel: int,
    rng: np.random.Generator,
    std: float = 0.05,
    mean_spread: float = 0.015,
) -> np.ndarray:
    """Bell-curve convolution weights with per-filter mean offsets.

    Returns an array of shape ``(out_channels, in_channels, kernel, kernel)``.
    Each output filter draws from a Gaussian whose mean is itself randomly
    offset, reproducing the "individual weight filters randomly converge to
    different distributions" observation of Section 4.1.1.
    """
    means = _per_filter_means(out_channels, rng, mean_spread)
    shape = (out_channels, in_channels, kernel, kernel)
    weights = rng.normal(0.0, std, size=shape)
    return weights + means[:, np.newaxis, np.newaxis, np.newaxis]


def synthetic_linear_weights(
    out_features: int,
    in_features: int,
    rng: np.random.Generator,
    std: float = 0.05,
    mean_spread: float = 0.01,
) -> np.ndarray:
    """Bell-curve fully-connected weights with per-row mean offsets."""
    means = _per_filter_means(out_features, rng, mean_spread)
    weights = rng.normal(0.0, std, size=(out_features, in_features))
    return weights + means[:, np.newaxis]


def negative_skewed_filter_weights(
    n_weights: int,
    rng: np.random.Generator,
    std: float = 0.05,
    mean: float = -0.04,
) -> np.ndarray:
    """A mostly-negative weight filter like the InceptionV3 filter of Fig. 5.

    Differential (Zero+Offset) encoding represents such filters with
    mostly-negative slices whose biases accumulate into large negative column
    sums; Center+Offset picks a non-zero center and avoids this.
    """
    return rng.normal(mean, std, size=n_weights)


def synthetic_activations(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    scale: float = 1.0,
    sparsity: float = 0.35,
) -> np.ndarray:
    """Right-skewed, non-negative post-ReLU-like activations.

    A fraction ``sparsity`` of entries are exactly zero (ReLU kills them); the
    rest follow a half-normal distribution, giving the sparse high-order input
    bits of Fig. 8.
    """
    values = np.abs(rng.normal(0.0, scale, size=shape))
    mask = rng.random(size=shape) >= sparsity
    return values * mask


def synthetic_signed_activations(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """Signed activations (e.g. GELU outputs feeding BERT's feed-forward)."""
    return rng.normal(0.0, scale, size=shape)


def synthetic_images(
    n: int,
    image_shape: tuple[int, int, int],
    rng: np.random.Generator,
    scale: float = 1.0,
) -> np.ndarray:
    """Non-negative image-like input tensors of shape ``(n, C, H, W)``.

    Images mix smooth spatial structure (low-frequency patterns) with pixel
    noise so that convolution outputs have realistic dynamic range.
    """
    c, h, w = image_shape
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    images = np.empty((n, c, h, w), dtype=np.float64)
    for i in range(n):
        freq_y = rng.uniform(1.0, 4.0, size=c)
        freq_x = rng.uniform(1.0, 4.0, size=c)
        phase = rng.uniform(0, 2 * np.pi, size=(c, 2))
        base = (
            np.sin(2 * np.pi * freq_y[:, None, None] * yy + phase[:, 0, None, None])
            + np.cos(2 * np.pi * freq_x[:, None, None] * xx + phase[:, 1, None, None])
        )
        noise = rng.normal(0.0, 0.3, size=(c, h, w))
        images[i] = np.maximum(base + noise + 1.0, 0.0) * scale * 0.5
    return images
