"""A small SGD trainer for accuracy experiments.

RAELLA's headline claim is accuracy preservation *without retraining*.  To
measure accuracy drops (Table 4, Fig. 15) we need models with a real accuracy
on a real task.  This module trains multi-layer perceptrons (and CNNs with a
trained linear head over fixed random convolution features) with plain NumPy
SGD on the synthetic datasets, then packages them as calibrated
:class:`~repro.nn.model.QuantizedModel` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn import functional as F
from repro.nn.datasets import ClassificationDataset
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_conv_weights

__all__ = ["TrainingResult", "train_mlp", "train_cnn", "evaluate_accuracy"]


@dataclass
class TrainingResult:
    """Outcome of a training run.

    Attributes
    ----------
    model:
        The calibrated quantized model.
    float_accuracy:
        Test accuracy of the float reference path.
    quantized_accuracy:
        Test accuracy of the exact 8-bit integer path (the no-PIM baseline all
        accuracy-drop numbers are measured against).
    loss_history:
        Mean training loss per epoch.
    """

    model: QuantizedModel
    float_accuracy: float
    quantized_accuracy: float
    loss_history: list[float] = field(default_factory=list)


def _init_dense(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """He-style initialisation for a dense layer."""
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_out, fan_in))


def _train_dense_stack(
    features: np.ndarray,
    labels: np.ndarray,
    hidden_sizes: list[int],
    n_classes: int,
    epochs: int,
    lr: float,
    batch_size: int,
    rng: np.random.Generator,
) -> tuple[list[tuple[np.ndarray, np.ndarray]], list[float]]:
    """Train a ReLU MLP with SGD; returns [(W, b), ...] and the loss history."""
    sizes = [features.shape[1], *hidden_sizes, n_classes]
    params = [
        (_init_dense(rng, sizes[i], sizes[i + 1]), np.zeros(sizes[i + 1]))
        for i in range(len(sizes) - 1)
    ]
    n = features.shape[0]
    history = []
    for _ in range(epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        n_batches = 0
        for start in range(0, n, batch_size):
            idx = order[start : start + batch_size]
            x, y = features[idx], labels[idx]
            # Forward pass, keeping pre-activations for backprop.
            activations = [x]
            for i, (w, b) in enumerate(params):
                z = activations[-1] @ w.T + b
                a = F.relu(z) if i < len(params) - 1 else z
                activations.append(a)
            logits = activations[-1]
            probs = F.softmax(logits)
            epoch_loss += F.cross_entropy(logits, y)
            n_batches += 1
            # Backward pass.
            grad = (probs - F.one_hot(y, n_classes)) / len(idx)
            for i in reversed(range(len(params))):
                w, b = params[i]
                a_prev = activations[i]
                grad_w = grad.T @ a_prev
                grad_b = grad.sum(axis=0)
                if i > 0:
                    grad = (grad @ w) * (activations[i] > 0)
                params[i] = (w - lr * grad_w, b - lr * grad_b)
        history.append(epoch_loss / max(n_batches, 1))
    return params, history


def _dense_stack_to_layers(
    params: list[tuple[np.ndarray, np.ndarray]], prefix: str
) -> list[Linear]:
    """Package trained dense parameters as quantized Linear layers."""
    layers = []
    for i, (w, b) in enumerate(params):
        is_last = i == len(params) - 1
        layers.append(
            Linear(
                name=f"{prefix}_fc{i}",
                weights=w,
                bias=b,
                fuse_relu=not is_last,
            )
        )
    return layers


def evaluate_accuracy(
    model: QuantizedModel,
    dataset: ClassificationDataset,
    pim_matmul=None,
    use_float: bool = False,
    max_samples: int | None = None,
    micro_batch: int | None = None,
) -> float:
    """Top-1 test accuracy of a model on a dataset.

    ``pim_matmul`` plugs an analog-PIM simulation into the integer path;
    ``use_float`` evaluates the float reference instead; ``micro_batch``
    bounds how many samples run through the network at a time.
    """
    x, y = dataset.x_test, dataset.y_test
    if max_samples is not None:
        x, y = x[:max_samples], y[:max_samples]
    if use_float:
        predictions = model.predict_float(x)
    else:
        predictions = model.predict(x, pim_matmul=pim_matmul, micro_batch=micro_batch)
    return float(np.mean(predictions == y))


def train_mlp(
    dataset: ClassificationDataset,
    hidden_sizes: list[int] | None = None,
    epochs: int = 30,
    lr: float = 0.05,
    batch_size: int = 64,
    seed: int = 0,
    name: str | None = None,
) -> TrainingResult:
    """Train an MLP classifier and return it as a calibrated quantized model."""
    hidden_sizes = [256, 128] if hidden_sizes is None else list(hidden_sizes)
    rng = np.random.default_rng(seed)
    features = dataset.x_train.reshape(len(dataset.x_train), -1)
    params, history = _train_dense_stack(
        features,
        dataset.y_train,
        hidden_sizes,
        dataset.n_classes,
        epochs,
        lr,
        batch_size,
        rng,
    )
    model_name = name or f"mlp_{dataset.name}"
    layers = _dense_stack_to_layers(params, model_name)
    model = QuantizedModel(model_name, layers, input_shape=(features.shape[1],))
    calibration = features[: min(256, len(features))]
    model.calibrate(calibration)

    flat_dataset = ClassificationDataset(
        name=dataset.name,
        x_train=features,
        y_train=dataset.y_train,
        x_test=dataset.x_test.reshape(len(dataset.x_test), -1),
        y_test=dataset.y_test,
    )
    return TrainingResult(
        model=model,
        float_accuracy=evaluate_accuracy(model, flat_dataset, use_float=True),
        quantized_accuracy=evaluate_accuracy(model, flat_dataset),
        loss_history=history,
    )


def train_cnn(
    dataset: ClassificationDataset,
    conv_channels: list[int] | None = None,
    hidden_sizes: list[int] | None = None,
    epochs: int = 30,
    lr: float = 0.05,
    batch_size: int = 64,
    seed: int = 0,
    name: str | None = None,
) -> TrainingResult:
    """Train a CNN with fixed random convolution features and a trained head.

    The convolution layers use realistic synthetic weights and stay fixed (a
    random-feature extractor); the dense head is trained with SGD.  The whole
    network -- convolutions included -- runs through the quantized / PIM path,
    so analog errors in the convolutions affect accuracy.
    """
    conv_channels = [16, 24] if conv_channels is None else list(conv_channels)
    hidden_sizes = [96] if hidden_sizes is None else list(hidden_sizes)
    rng = np.random.default_rng(seed)
    c, h, w = dataset.input_shape
    model_name = name or f"cnn_{dataset.name}"

    conv_layers: list = []
    in_c, cur_h, cur_w = c, h, w
    for i, out_c in enumerate(conv_channels):
        weights = synthetic_conv_weights(out_c, in_c, 3, rng, std=0.25)
        conv_layers.append(
            Conv2d(
                f"{model_name}_conv{i}", weights, stride=1, padding=1, fuse_relu=True
            )
        )
        conv_layers.append(MaxPool2d(2, name=f"{model_name}_pool{i}"))
        in_c = out_c
        cur_h, cur_w = cur_h // 2, cur_w // 2
    conv_layers.append(Flatten(name=f"{model_name}_flatten"))

    # Extract fixed features by running the float conv stack.
    def extract(x: np.ndarray) -> np.ndarray:
        out = x
        for layer in conv_layers:
            out = layer.forward_float(out)
        return out

    train_features = extract(dataset.x_train)
    params, history = _train_dense_stack(
        train_features,
        dataset.y_train,
        hidden_sizes,
        dataset.n_classes,
        epochs,
        lr,
        batch_size,
        rng,
    )
    layers = conv_layers + _dense_stack_to_layers(params, model_name)
    model = QuantizedModel(model_name, layers, input_shape=(c, h, w))
    model.calibrate(dataset.x_train[: min(128, len(dataset.x_train))])
    return TrainingResult(
        model=model,
        float_accuracy=evaluate_accuracy(model, dataset, use_float=True),
        quantized_accuracy=evaluate_accuracy(model, dataset),
        loss_history=history,
    )
