"""NumPy quantized-DNN substrate.

The paper evaluates RAELLA on off-the-shelf 8-bit quantized PyTorch models.
PyTorch and the pretrained weights are not available in this environment, so
this subpackage provides a from-scratch substitute (see DESIGN.md):

* :mod:`repro.nn.functional` -- tensor ops (im2col, conv, pooling, softmax).
* :mod:`repro.nn.layers`     -- quantized layers (Conv2d, Linear, ReLU, pooling).
* :mod:`repro.nn.model`      -- the :class:`QuantizedModel` container with a
  float path, an integer reference path and a pluggable PIM mat-mul hook.
* :mod:`repro.nn.synthetic`  -- realistic synthetic weight/activation generators.
* :mod:`repro.nn.zoo`        -- shape-faithful layer tables for the paper's
  seven DNNs plus runnable scaled-down models.
* :mod:`repro.nn.datasets`   -- synthetic classification datasets.
* :mod:`repro.nn.training`   -- a small SGD trainer so accuracy-drop
  experiments have a real task to measure.
"""

from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.model import QuantizedModel

__all__ = [
    "AvgPool2d",
    "Conv2d",
    "Flatten",
    "GlobalAvgPool",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "QuantizedModel",
]
