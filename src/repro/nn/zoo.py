"""Model zoo: shape-faithful layer tables and runnable scaled-down models.

The paper evaluates seven DNNs (GoogLeNet, InceptionV3, ResNet18, ResNet50,
ShuffleNetV2, MobileNetV2 and BERT-Large's feed-forward layers).  This module
provides two views of each model:

* **Full-scale layer-shape tables** (:func:`model_shapes`) describing every
  crossbar-mapped layer of the original network -- kind, channels, kernel,
  stride, spatial size.  The hardware cost model (:mod:`repro.hw`) consumes
  these tables; it needs dimensions, not data, so the tables are full size and
  the derived MAC / weight counts land close to the published numbers.

* **Runnable scaled-down models** (:func:`build_runnable` and the
  ``*_like`` helpers) -- small sequential :class:`QuantizedModel` instances
  with synthetic weights whose per-layer operand distributions match the
  original family (bell-curve weights with per-filter mean offsets, compact
  vs. large filters, signed inputs for the Transformer).  Functional
  experiments (column-sum distributions, adaptive slicing, accuracy proxies)
  run on these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.nn.layers import Conv2d, GlobalAvgPool, Linear, MaxPool2d
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import (
    synthetic_conv_weights,
    synthetic_images,
    synthetic_linear_weights,
    synthetic_signed_activations,
)

__all__ = [
    "LayerShape",
    "ModelShapes",
    "model_shapes",
    "MODEL_NAMES",
    "CNN_MODEL_NAMES",
    "build_runnable",
    "resnet18_like",
    "resnet50_like",
    "googlenet_like",
    "inceptionv3_like",
    "mobilenetv2_like",
    "shufflenetv2_like",
    "bert_large_ffn_like",
]


# ---------------------------------------------------------------------------
# Full-scale layer-shape tables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerShape:
    """Shape description of one crossbar-mapped DNN layer.

    Parameters
    ----------
    name:
        Layer name (unique within a model).
    kind:
        ``"conv"``, ``"dwconv"`` (depthwise) or ``"linear"``.
    in_channels / out_channels:
        Channel counts (for linear layers these are in/out features).
    kernel_h / kernel_w:
        Kernel size (1 for linear layers).
    stride:
        Convolution stride (1 for linear layers).
    input_size:
        Input spatial size H (= W assumed) for convolutions; for linear layers
        the number of positions the layer is applied to (sequence length for
        Transformers, 1 for classifier heads).
    groups:
        Convolution groups (``in_channels`` for depthwise convolutions).
    signed_input:
        Whether the layer's input activations are signed (BERT).
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel_h: int = 1
    kernel_w: int = 1
    stride: int = 1
    input_size: int = 1
    groups: int = 1
    signed_input: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("conv", "dwconv", "linear"):
            raise ValueError(f"unknown layer kind {self.kind!r}")
        if min(
            self.in_channels,
            self.out_channels,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.input_size,
            self.groups,
        ) <= 0:
            raise ValueError("layer shape dimensions must be positive")
        if self.in_channels % self.groups != 0:
            raise ValueError("in_channels must be divisible by groups")

    @property
    def output_size(self) -> int:
        """Output spatial size (convolutions use same-padding semantics)."""
        if self.kind == "linear":
            return self.input_size
        return max((self.input_size + self.stride - 1) // self.stride, 1)

    @property
    def output_positions(self) -> int:
        """Number of output positions (pixels or sequence tokens) per sample."""
        if self.kind == "linear":
            return self.input_size
        return self.output_size**2

    @property
    def reduction_dim(self) -> int:
        """Length of each filter's dot product (crossbar rows per filter)."""
        return (self.in_channels // self.groups) * self.kernel_h * self.kernel_w

    @property
    def n_filters(self) -> int:
        """Number of filters (crossbar-column groups)."""
        return self.out_channels

    @property
    def weights(self) -> int:
        """Weight count of the layer."""
        return self.reduction_dim * self.out_channels

    @property
    def macs(self) -> int:
        """Multiply-accumulates per input sample."""
        return self.weights * self.output_positions


@dataclass(frozen=True)
class ModelShapes:
    """Full-scale shape table of one DNN."""

    name: str
    layers: tuple[LayerShape, ...]
    signed_input: bool = False
    compact: bool = False

    @property
    def total_macs(self) -> int:
        """Total MACs per input sample."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weights(self) -> int:
        """Total weights across layers."""
        return sum(layer.weights for layer in self.layers)

    @property
    def n_layers(self) -> int:
        """Number of crossbar-mapped layers."""
        return len(self.layers)


def _conv(name, cin, cout, k, stride, size, groups=1, signed=False) -> LayerShape:
    kind = "dwconv" if groups == cin and groups > 1 else "conv"
    return LayerShape(
        name=name,
        kind=kind,
        in_channels=cin,
        out_channels=cout,
        kernel_h=k,
        kernel_w=k,
        stride=stride,
        input_size=size,
        groups=groups,
        signed_input=signed,
    )


def _rect_conv(name, cin, cout, kh, kw, size) -> LayerShape:
    return LayerShape(
        name=name,
        kind="conv",
        in_channels=cin,
        out_channels=cout,
        kernel_h=kh,
        kernel_w=kw,
        stride=1,
        input_size=size,
    )


def _linear(name, cin, cout, positions=1, signed=False) -> LayerShape:
    return LayerShape(
        name=name,
        kind="linear",
        in_channels=cin,
        out_channels=cout,
        input_size=positions,
        signed_input=signed,
    )


def _resnet18_shapes() -> ModelShapes:
    layers = [_conv("conv1", 3, 64, 7, 2, 224)]
    size = 56  # after maxpool
    in_c = 64
    stage_cfg = [(64, 2, 1), (128, 2, 2), (256, 2, 2), (512, 2, 2)]
    for stage, (out_c, blocks, first_stride) in enumerate(stage_cfg, start=1):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            prefix = f"layer{stage}.{block}"
            layers.append(_conv(f"{prefix}.conv1", in_c, out_c, 3, stride, size))
            out_size = max(size // stride, 1)
            layers.append(_conv(f"{prefix}.conv2", out_c, out_c, 3, 1, out_size))
            if stride != 1 or in_c != out_c:
                layers.append(
                    _conv(f"{prefix}.downsample", in_c, out_c, 1, stride, size)
                )
            in_c = out_c
            size = out_size
    layers.append(_linear("fc", 512, 1000))
    return ModelShapes("resnet18", tuple(layers))


def _resnet50_shapes() -> ModelShapes:
    layers = [_conv("conv1", 3, 64, 7, 2, 224)]
    size = 56
    in_c = 64
    stage_cfg = [
        (64, 256, 3, 1), (128, 512, 4, 2), (256, 1024, 6, 2), (512, 2048, 3, 2)
    ]
    for stage, (mid_c, out_c, blocks, first_stride) in enumerate(stage_cfg, start=1):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            prefix = f"layer{stage}.{block}"
            layers.append(_conv(f"{prefix}.conv1", in_c, mid_c, 1, 1, size))
            layers.append(_conv(f"{prefix}.conv2", mid_c, mid_c, 3, stride, size))
            out_size = max(size // stride, 1)
            layers.append(_conv(f"{prefix}.conv3", mid_c, out_c, 1, 1, out_size))
            if stride != 1 or in_c != out_c:
                layers.append(
                    _conv(f"{prefix}.downsample", in_c, out_c, 1, stride, size)
                )
            in_c = out_c
            size = out_size
    layers.append(_linear("fc", 2048, 1000))
    return ModelShapes("resnet50", tuple(layers))


_GOOGLENET_INCEPTIONS = [
    # name, in_c, b1, b2_reduce, b2, b3_reduce, b3, b4, size
    ("inception3a", 192, 64, 96, 128, 16, 32, 32, 28),
    ("inception3b", 256, 128, 128, 192, 32, 96, 64, 28),
    ("inception4a", 480, 192, 96, 208, 16, 48, 64, 14),
    ("inception4b", 512, 160, 112, 224, 24, 64, 64, 14),
    ("inception4c", 512, 128, 128, 256, 24, 64, 64, 14),
    ("inception4d", 512, 112, 144, 288, 32, 64, 64, 14),
    ("inception4e", 528, 256, 160, 320, 32, 128, 128, 14),
    ("inception5a", 832, 256, 160, 320, 32, 128, 128, 7),
    ("inception5b", 832, 384, 192, 384, 48, 128, 128, 7),
]


def _googlenet_shapes() -> ModelShapes:
    layers = [
        _conv("conv1", 3, 64, 7, 2, 224),
        _conv("conv2", 64, 64, 1, 1, 56),
        _conv("conv3", 64, 192, 3, 1, 56),
    ]
    for (name, in_c, b1, b2r, b2, b3r, b3, b4, size) in _GOOGLENET_INCEPTIONS:
        layers.extend(
            [
                _conv(f"{name}.branch1", in_c, b1, 1, 1, size),
                _conv(f"{name}.branch2_reduce", in_c, b2r, 1, 1, size),
                _conv(f"{name}.branch2", b2r, b2, 3, 1, size),
                _conv(f"{name}.branch3_reduce", in_c, b3r, 1, 1, size),
                _conv(f"{name}.branch3", b3r, b3, 3, 1, size),
                _conv(f"{name}.branch4", in_c, b4, 1, 1, size),
            ]
        )
    layers.append(_linear("fc", 1024, 1000))
    return ModelShapes("googlenet", tuple(layers))


def _inceptionv3_shapes() -> ModelShapes:
    layers = [
        _conv("stem.conv1", 3, 32, 3, 2, 299),
        _conv("stem.conv2", 32, 32, 3, 1, 149),
        _conv("stem.conv3", 32, 64, 3, 1, 147),
        _conv("stem.conv4", 64, 80, 1, 1, 73),
        _conv("stem.conv5", 80, 192, 3, 1, 73),
    ]
    # Three InceptionA blocks at 35x35.
    in_c = 192
    for i, pool_c in enumerate((32, 64, 64)):
        name = f"mixed5{chr(ord('b') + i)}"
        layers.extend(
            [
                _conv(f"{name}.branch1x1", in_c, 64, 1, 1, 35),
                _conv(f"{name}.branch5x5_1", in_c, 48, 1, 1, 35),
                _conv(f"{name}.branch5x5_2", 48, 64, 5, 1, 35),
                _conv(f"{name}.branch3x3dbl_1", in_c, 64, 1, 1, 35),
                _conv(f"{name}.branch3x3dbl_2", 64, 96, 3, 1, 35),
                _conv(f"{name}.branch3x3dbl_3", 96, 96, 3, 1, 35),
                _conv(f"{name}.branch_pool", in_c, pool_c, 1, 1, 35),
            ]
        )
        in_c = 64 + 64 + 96 + pool_c
    # Reduction to 17x17.
    layers.extend(
        [
            _conv("mixed6a.branch3x3", 288, 384, 3, 2, 35),
            _conv("mixed6a.branch3x3dbl_1", 288, 64, 1, 1, 35),
            _conv("mixed6a.branch3x3dbl_2", 64, 96, 3, 1, 35),
            _conv("mixed6a.branch3x3dbl_3", 96, 96, 3, 2, 35),
        ]
    )
    # Four InceptionB (factorized 7x7) blocks at 17x17.
    for i, mid in enumerate((128, 160, 160, 192)):
        name = f"mixed6{chr(ord('b') + i)}"
        layers.extend(
            [
                _conv(f"{name}.branch1x1", 768, 192, 1, 1, 17),
                _conv(f"{name}.branch7x7_1", 768, mid, 1, 1, 17),
                _rect_conv(f"{name}.branch7x7_2", mid, mid, 1, 7, 17),
                _rect_conv(f"{name}.branch7x7_3", mid, 192, 7, 1, 17),
                _conv(f"{name}.branch7x7dbl_1", 768, mid, 1, 1, 17),
                _rect_conv(f"{name}.branch7x7dbl_2", mid, mid, 7, 1, 17),
                _rect_conv(f"{name}.branch7x7dbl_3", mid, mid, 1, 7, 17),
                _rect_conv(f"{name}.branch7x7dbl_4", mid, mid, 7, 1, 17),
                _rect_conv(f"{name}.branch7x7dbl_5", mid, 192, 1, 7, 17),
                _conv(f"{name}.branch_pool", 768, 192, 1, 1, 17),
            ]
        )
    # Reduction to 8x8.
    layers.extend(
        [
            _conv("mixed7a.branch3x3_1", 768, 192, 1, 1, 17),
            _conv("mixed7a.branch3x3_2", 192, 320, 3, 2, 17),
            _conv("mixed7a.branch7x7x3_1", 768, 192, 1, 1, 17),
            _rect_conv("mixed7a.branch7x7x3_2", 192, 192, 1, 7, 17),
            _rect_conv("mixed7a.branch7x7x3_3", 192, 192, 7, 1, 17),
            _conv("mixed7a.branch7x7x3_4", 192, 192, 3, 2, 17),
        ]
    )
    # Two InceptionC blocks at 8x8.
    in_c = 1280
    for i in range(2):
        name = f"mixed7{chr(ord('b') + i)}"
        layers.extend(
            [
                _conv(f"{name}.branch1x1", in_c, 320, 1, 1, 8),
                _conv(f"{name}.branch3x3_1", in_c, 384, 1, 1, 8),
                _rect_conv(f"{name}.branch3x3_2a", 384, 384, 1, 3, 8),
                _rect_conv(f"{name}.branch3x3_2b", 384, 384, 3, 1, 8),
                _conv(f"{name}.branch3x3dbl_1", in_c, 448, 1, 1, 8),
                _conv(f"{name}.branch3x3dbl_2", 448, 384, 3, 1, 8),
                _rect_conv(f"{name}.branch3x3dbl_3a", 384, 384, 1, 3, 8),
                _rect_conv(f"{name}.branch3x3dbl_3b", 384, 384, 3, 1, 8),
                _conv(f"{name}.branch_pool", in_c, 192, 1, 1, 8),
            ]
        )
        in_c = 2048
    layers.append(_linear("fc", 2048, 1000))
    return ModelShapes("inceptionv3", tuple(layers))


_MOBILENETV2_CFG = [
    # expansion, out_channels, repeats, stride
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _mobilenetv2_shapes() -> ModelShapes:
    layers = [_conv("conv_stem", 3, 32, 3, 2, 224)]
    in_c, size = 32, 112
    for stage, (t, out_c, n, s) in enumerate(_MOBILENETV2_CFG):
        for block in range(n):
            stride = s if block == 0 else 1
            prefix = f"block{stage}.{block}"
            hidden = in_c * t
            if t != 1:
                layers.append(_conv(f"{prefix}.expand", in_c, hidden, 1, 1, size))
            layers.append(
                _conv(f"{prefix}.dw", hidden, hidden, 3, stride, size, groups=hidden)
            )
            size = max(size // stride, 1)
            layers.append(_conv(f"{prefix}.project", hidden, out_c, 1, 1, size))
            in_c = out_c
    layers.append(_conv("conv_head", 320, 1280, 1, 1, 7))
    layers.append(_linear("fc", 1280, 1000))
    return ModelShapes("mobilenetv2", tuple(layers), compact=True)


_SHUFFLENETV2_CFG = [
    # out_channels, repeats
    (116, 4),
    (232, 8),
    (464, 4),
]


def _shufflenetv2_shapes() -> ModelShapes:
    layers = [_conv("conv1", 3, 24, 3, 2, 224)]
    in_c, size = 24, 56  # after maxpool
    for stage, (out_c, repeats) in enumerate(_SHUFFLENETV2_CFG, start=2):
        for block in range(repeats):
            prefix = f"stage{stage}.{block}"
            half = out_c // 2
            if block == 0:
                # Downsampling unit: both branches are processed.
                layers.extend(
                    [
                        _conv(
                            f"{prefix}.branch1_dw", in_c, in_c, 3, 2, size, groups=in_c
                        ),
                        _conv(f"{prefix}.branch1_pw", in_c, half, 1, 1, size // 2),
                        _conv(f"{prefix}.branch2_pw1", in_c, half, 1, 1, size),
                        _conv(
                            f"{prefix}.branch2_dw", half, half, 3, 2, size, groups=half
                        ),
                        _conv(f"{prefix}.branch2_pw2", half, half, 1, 1, size // 2),
                    ]
                )
                size = size // 2
            else:
                layers.extend(
                    [
                        _conv(f"{prefix}.branch2_pw1", half, half, 1, 1, size),
                        _conv(
                            f"{prefix}.branch2_dw", half, half, 3, 1, size, groups=half
                        ),
                        _conv(f"{prefix}.branch2_pw2", half, half, 1, 1, size),
                    ]
                )
            in_c = out_c
    layers.append(_conv("conv5", 464, 1024, 1, 1, 7))
    layers.append(_linear("fc", 1024, 1000))
    return ModelShapes("shufflenetv2", tuple(layers), compact=True)


def _bert_large_ffn_shapes(seq_len: int = 384, n_layers: int = 24) -> ModelShapes:
    layers = []
    for i in range(n_layers):
        layers.append(
            _linear(f"encoder{i}.ffn_in", 1024, 4096, positions=seq_len, signed=True)
        )
        layers.append(
            _linear(f"encoder{i}.ffn_out", 4096, 1024, positions=seq_len, signed=True)
        )
    return ModelShapes("bert_large_ffn", tuple(layers), signed_input=True)


_SHAPE_BUILDERS: dict[str, Callable[[], ModelShapes]] = {
    "googlenet": _googlenet_shapes,
    "inceptionv3": _inceptionv3_shapes,
    "resnet18": _resnet18_shapes,
    "resnet50": _resnet50_shapes,
    "shufflenetv2": _shufflenetv2_shapes,
    "mobilenetv2": _mobilenetv2_shapes,
    "bert_large_ffn": _bert_large_ffn_shapes,
}

#: The seven evaluation DNNs, in the paper's Fig. 12 order.
MODEL_NAMES = tuple(_SHAPE_BUILDERS)

#: The six CNNs (everything except the Transformer).
CNN_MODEL_NAMES = tuple(name for name in MODEL_NAMES if name != "bert_large_ffn")


def model_shapes(name: str) -> ModelShapes:
    """Return the full-scale layer-shape table for one of the seven DNNs."""
    try:
        return _SHAPE_BUILDERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None


# ---------------------------------------------------------------------------
# Runnable scaled-down models
# ---------------------------------------------------------------------------


def _runnable_conv_stack(
    name: str,
    stack: list[tuple[int, int, int, int]],
    classes: int,
    head_width: int,
    rng: np.random.Generator,
    image_size: int = 32,
    weight_std: float = 0.18,
    mean_spread: float = 0.05,
) -> QuantizedModel:
    """Build a sequential conv stack: each entry is (out_c, kernel, stride, pool)."""
    layers: list = []
    in_c = 3
    size = image_size
    for i, (out_c, kernel, stride, pool) in enumerate(stack):
        weights = synthetic_conv_weights(
            out_c, in_c, kernel, rng, std=weight_std, mean_spread=mean_spread
        )
        layers.append(
            Conv2d(
                f"{name}_conv{i}",
                weights,
                stride=stride,
                padding=kernel // 2,
                fuse_relu=True,
            )
        )
        size = (size + stride - 1) // stride
        if pool > 1:
            layers.append(MaxPool2d(pool, name=f"{name}_pool{i}"))
            size //= pool
        in_c = out_c
    layers.append(GlobalAvgPool(name=f"{name}_gap"))
    head = synthetic_linear_weights(head_width, in_c, rng, std=weight_std)
    layers.append(Linear(f"{name}_fc_hidden", head, fuse_relu=True))
    classifier = synthetic_linear_weights(classes, head_width, rng, std=weight_std)
    layers.append(Linear(f"{name}_fc", classifier, fuse_relu=False))
    model = QuantizedModel(name, layers, input_shape=(3, image_size, image_size))
    calibration = synthetic_images(4, (3, image_size, image_size), rng)
    model.calibrate(calibration)
    return model


def resnet18_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small ResNet18-flavoured conv stack (large 3x3 filters, wide channels)."""
    rng = np.random.default_rng(seed)
    stack = [
        (32, 3, 1, 1),
        (32, 3, 1, 2),
        (48, 3, 1, 1),
        (48, 3, 1, 2),
        (64, 3, 1, 1),
        (96, 3, 1, 2),
    ]
    return _runnable_conv_stack("resnet18_like", stack, 16, 96, rng, image_size)


def resnet50_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small ResNet50-flavoured stack (1x1 bottlenecks around 3x3 convs)."""
    rng = np.random.default_rng(seed)
    stack = [
        (32, 3, 1, 1),
        (24, 1, 1, 1),
        (48, 3, 1, 2),
        (32, 1, 1, 1),
        (64, 3, 1, 2),
        (96, 1, 1, 1),
        (96, 3, 1, 2),
    ]
    return _runnable_conv_stack("resnet50_like", stack, 16, 128, rng, image_size)


def googlenet_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small GoogLeNet-flavoured stack mixing 1x1, 3x3 and 5x5 kernels."""
    rng = np.random.default_rng(seed)
    stack = [
        (24, 5, 1, 2),
        (32, 1, 1, 1),
        (48, 3, 1, 2),
        (32, 1, 1, 1),
        (64, 3, 1, 2),
    ]
    return _runnable_conv_stack("googlenet_like", stack, 16, 96, rng, image_size)


def inceptionv3_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small InceptionV3-flavoured stack with skewed per-filter weight means."""
    rng = np.random.default_rng(seed)
    stack = [
        (24, 3, 2, 1),
        (32, 3, 1, 1),
        (48, 3, 1, 2),
        (64, 5, 1, 1),
        (80, 3, 1, 2),
    ]
    return _runnable_conv_stack(
        "inceptionv3_like", stack, 16, 96, rng, image_size, mean_spread=0.09
    )


def mobilenetv2_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small MobileNetV2-flavoured stack dominated by 1x1 convs (small filters)."""
    rng = np.random.default_rng(seed)
    stack = [
        (16, 3, 2, 1),
        (32, 1, 1, 1),
        (32, 3, 1, 2),
        (48, 1, 1, 1),
        (48, 1, 1, 2),
        (64, 1, 1, 1),
    ]
    return _runnable_conv_stack("mobilenetv2_like", stack, 16, 64, rng, image_size)


def shufflenetv2_like(seed: int = 0, image_size: int = 32) -> QuantizedModel:
    """Small ShuffleNetV2-flavoured stack with narrow 1x1-heavy layers."""
    rng = np.random.default_rng(seed)
    stack = [
        (12, 3, 2, 1),
        (24, 1, 1, 1),
        (24, 3, 1, 2),
        (32, 1, 1, 1),
        (48, 1, 1, 2),
    ]
    return _runnable_conv_stack("shufflenetv2_like", stack, 16, 64, rng, image_size)


def bert_large_ffn_like(
    seed: int = 0, hidden: int = 96, intermediate: int = 256, n_blocks: int = 2
) -> QuantizedModel:
    """Small Transformer feed-forward stack with signed inputs.

    Mirrors BERT-Large's FFN structure (expand then project, GELU-like signed
    activations) at a reduced width so it is runnable in NumPy.
    """
    rng = np.random.default_rng(seed)
    layers: list = []
    for block in range(n_blocks):
        expand = synthetic_linear_weights(intermediate, hidden, rng, std=0.12)
        layers.append(
            Linear(f"bert_ffn{block}_in", expand, fuse_relu=True, signed_input=True)
        )
        project = synthetic_linear_weights(hidden, intermediate, rng, std=0.12)
        layers.append(
            Linear(f"bert_ffn{block}_out", project, fuse_relu=False, signed_input=False)
        )
    model = QuantizedModel(
        "bert_large_ffn_like", layers, input_shape=(hidden,), signed_input=True
    )
    calibration = synthetic_signed_activations((32, hidden), rng)
    model.calibrate(calibration)
    return model


_RUNNABLE_BUILDERS: dict[str, Callable[..., QuantizedModel]] = {
    "googlenet": googlenet_like,
    "inceptionv3": inceptionv3_like,
    "resnet18": resnet18_like,
    "resnet50": resnet50_like,
    "shufflenetv2": shufflenetv2_like,
    "mobilenetv2": mobilenetv2_like,
    "bert_large_ffn": bert_large_ffn_like,
}


def build_runnable(name: str, seed: int = 0) -> QuantizedModel:
    """Build the runnable scaled-down counterpart of one of the seven DNNs."""
    try:
        builder = _RUNNABLE_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(MODEL_NAMES)}"
        ) from None
    return builder(seed=seed)
