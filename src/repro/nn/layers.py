"""Quantized DNN layers.

Layers implement two execution paths:

* a float path (``forward_float``) used for calibration, training and as the
  accuracy reference, and
* an integer path (``forward_quantized``) that mirrors 8-bit per-channel
  quantized inference with 16-bit partial sums (Section 2.1 of the paper).

The integer path of matrix-multiply layers (:class:`Conv2d`, :class:`Linear`)
accepts a *PIM mat-mul hook*: a callable that replaces the exact integer
product of raw input codes and raw weight codes with the output of an analog
crossbar simulation.  Everything else (zero-point corrections, bias, ReLU,
requantization) stays digital, exactly as in the paper's architectures.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.arithmetic.quantize import quantize_per_channel
from repro.nn import functional as F

__all__ = [
    "TensorQuant",
    "Layer",
    "MatmulLayer",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool",
    "Flatten",
    "PimMatmul",
]


@dataclass(frozen=True)
class TensorQuant:
    """Per-tensor affine quantization of an activation tensor."""

    scale: float
    zero_point: int = 0
    signed: bool = False

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("activation scale must be positive")
        lo, hi = self.code_range
        if not lo <= self.zero_point <= hi:
            raise ValueError("zero point outside code range")

    @property
    def code_range(self) -> tuple[int, int]:
        """Inclusive 8-bit code range."""
        return (-128, 127) if self.signed else (0, 255)

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Real values -> integer codes."""
        lo, hi = self.code_range
        codes = np.round(np.asarray(values, dtype=np.float64) / self.scale)
        return np.clip(codes + self.zero_point, lo, hi).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> real values."""
        return (np.asarray(codes, dtype=np.float64) - self.zero_point) * self.scale

    @classmethod
    def from_values(cls, values: np.ndarray, signed: bool = False) -> "TensorQuant":
        """Fit a quantization spec to observed activation values."""
        values = np.asarray(values, dtype=np.float64)
        if signed:
            max_abs = max(float(np.abs(values).max(initial=0.0)), 1e-6)
            return cls(scale=max_abs / 127.0, zero_point=0, signed=True)
        lo = min(float(values.min(initial=0.0)), 0.0)
        hi = max(float(values.max(initial=0.0)), 1e-6)
        scale = (hi - lo) / 255.0
        zero_point = int(np.clip(round(-lo / scale), 0, 255))
        return cls(scale=scale, zero_point=zero_point, signed=False)


class PimMatmul(Protocol):
    """A hook replacing the exact integer code product with a PIM simulation."""

    def __call__(self, input_codes: np.ndarray, layer: "MatmulLayer") -> np.ndarray:
        """Return the (approximate) raw product ``input_codes @ weight_codes``."""
        ...


class Layer:
    """Base class for all layers."""

    def __init__(self, name: str):
        self.name = name

    @property
    def is_matmul(self) -> bool:
        """Whether the layer maps onto PIM crossbars."""
        return False

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        """Float-domain forward pass."""
        raise NotImplementedError

    def forward_quantized(
        self,
        codes: np.ndarray,
        quant: TensorQuant,
        pim_matmul: PimMatmul | None = None,
    ) -> tuple[np.ndarray, TensorQuant]:
        """Integer-domain forward pass.  Returns ``(codes, quant)``."""
        raise NotImplementedError

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        """Output tensor shape (excluding batch) for a given input shape."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class MatmulLayer(Layer):
    """Common machinery for layers that lower to a matrix multiplication.

    Subclasses provide the patch extraction (``_to_patches``) and the output
    reshaping (``_from_flat``); this class owns weight quantization, the
    integer mat-mul with zero-point corrections, bias addition, optional fused
    ReLU, and output requantization.
    """

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: np.ndarray | None,
        out_features: int,
        fuse_relu: bool,
        signed_input: bool = False,
    ):
        super().__init__(name)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.bias = (
            np.zeros(out_features)
            if bias is None
            else np.asarray(bias, dtype=np.float64)
        )
        if self.bias.shape != (out_features,):
            raise ValueError("bias must have one entry per output feature")
        self.out_features = out_features
        self.fuse_relu = fuse_relu
        self.signed_input = signed_input
        # Filled by quantize_weights():
        self.weight_codes: np.ndarray | None = None
        self.weight_scale: np.ndarray | None = None
        self.weight_zero_point: np.ndarray | None = None
        # Filled by calibration:
        self.input_quant: TensorQuant | None = None
        self.output_quant: TensorQuant | None = None
        self.quantize_weights()

    # -- weight quantization -------------------------------------------------

    @property
    def weight_matrix(self) -> np.ndarray:
        """Float weights flattened to ``(reduction_dim, out_features)``."""
        return self.weights.reshape(self.out_features, -1).T

    @property
    def reduction_dim(self) -> int:
        """Length of the dot-product (crossbar-row) dimension."""
        return self.weight_matrix.shape[0]

    @property
    def n_weights(self) -> int:
        """Number of weights in the layer."""
        return int(self.weights.size)

    def quantize_weights(self) -> None:
        """Quantize weights per output channel to unsigned 8-bit codes."""
        flat = self.weights.reshape(self.out_features, -1)
        codes, params = quantize_per_channel(flat, channel_axis=0, signed=False)
        self.weight_codes = codes.T.astype(np.int64)  # (K, out_features)
        self.weight_scale = params.scale
        self.weight_zero_point = params.zero_point
        self._weight_fingerprint: str | None = None
        self._weight_code_sums: np.ndarray | None = None

    @property
    def weight_fingerprint(self) -> str:
        """Content hash of the quantized weights (stable across instances).

        Keys the :mod:`repro.runtime` encoded-weight cache, so two executors
        built for layers with identical weight codes and zero points share one
        encoding.
        """
        if self._weight_fingerprint is None:
            digest = hashlib.sha1()
            digest.update(str(self.weight_codes.shape).encode())
            digest.update(np.ascontiguousarray(self.weight_codes).tobytes())
            digest.update(np.ascontiguousarray(self.weight_zero_point).tobytes())
            self._weight_fingerprint = digest.hexdigest()
        return self._weight_fingerprint

    @property
    def weight_code_sums(self) -> np.ndarray:
        """Per-filter column sums of the weight codes (zero-point correction)."""
        if self._weight_code_sums is None:
            self._weight_code_sums = self.weight_codes.sum(axis=0)
        return self._weight_code_sums

    # -- calibration ---------------------------------------------------------

    def calibrate(
        self,
        float_inputs: np.ndarray,
        float_outputs: np.ndarray,
        signed_output: bool = False,
    ) -> None:
        """Set activation quantization from observed float tensors."""
        self.input_quant = TensorQuant.from_values(
            float_inputs, signed=self.signed_input
        )
        reference = (
            np.maximum(float_outputs, 0.0) if self.fuse_relu else float_outputs
        )
        self.output_quant = TensorQuant.from_values(reference, signed=signed_output)

    @property
    def is_matmul(self) -> bool:
        return True

    @property
    def is_calibrated(self) -> bool:
        """Whether activation quantization has been set."""
        return self.input_quant is not None and self.output_quant is not None

    # -- integer execution ---------------------------------------------------

    def _to_patches(
        self, codes: np.ndarray, pad_value: int
    ) -> tuple[np.ndarray, tuple]:
        """Convert an input code tensor into (patches, shape_info)."""
        raise NotImplementedError

    def _from_flat(self, flat: np.ndarray, shape_info: tuple, batch: int) -> np.ndarray:
        """Reshape flat per-output-feature results into the output tensor."""
        raise NotImplementedError

    def matmul_quantized(
        self,
        patch_codes: np.ndarray,
        pim_matmul: PimMatmul | None = None,
    ) -> np.ndarray:
        """Integer mat-mul with zero-point correction -> real-valued psums.

        ``patch_codes`` has shape ``(M, reduction_dim)``.  The raw code product
        is computed exactly or by the PIM hook; corrections involving zero
        points are always digital.
        """
        if not self.is_calibrated:
            raise RuntimeError(f"layer {self.name!r} has not been calibrated")
        patch_codes = np.asarray(patch_codes, dtype=np.int64)
        if pim_matmul is None:
            raw = patch_codes @ self.weight_codes
        else:
            raw = np.asarray(pim_matmul(patch_codes, self), dtype=np.float64)
        zp_x = self.input_quant.zero_point
        zp_w = self.weight_zero_point  # (out_features,)
        input_sums = patch_codes.sum(axis=1, keepdims=True)
        weight_sums = self.weight_code_sums
        k = self.reduction_dim
        corrected = (
            raw
            - input_sums * zp_w[np.newaxis, :]
            - zp_x * weight_sums[np.newaxis, :]
            + k * zp_x * zp_w[np.newaxis, :]
        )
        real = corrected * (self.input_quant.scale * self.weight_scale)[np.newaxis, :]
        return real + self.bias[np.newaxis, :]

    def forward_quantized(
        self,
        codes: np.ndarray,
        quant: TensorQuant,
        pim_matmul: PimMatmul | None = None,
    ) -> tuple[np.ndarray, TensorQuant]:
        if not self.is_calibrated:
            raise RuntimeError(f"layer {self.name!r} has not been calibrated")
        batch = codes.shape[0]
        patches, shape_info = self._to_patches(codes, self.input_quant.zero_point)
        real = self.matmul_quantized(patches, pim_matmul=pim_matmul)
        if self.fuse_relu:
            real = np.maximum(real, 0.0)
        out_codes_flat = self.output_quant.quantize(real)
        out = self._from_flat(out_codes_flat, shape_info, batch)
        return out, self.output_quant


class Conv2d(MatmulLayer):
    """Quantized 2-D convolution (optionally with fused ReLU)."""

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
        stride: int = 1,
        padding: int = 0,
        fuse_relu: bool = True,
        signed_input: bool = False,
    ):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 4 or weights.shape[2] != weights.shape[3]:
            raise ValueError("conv weights must have shape (out_c, in_c, k, k)")
        self.stride = int(stride)
        self.padding = int(padding)
        self.kernel = int(weights.shape[2])
        self.in_channels = int(weights.shape[1])
        super().__init__(
            name,
            weights,
            bias,
            out_features=int(weights.shape[0]),
            fuse_relu=fuse_relu,
            signed_input=signed_input,
        )

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        out = F.conv2d(x, self.weights, self.bias, self.stride, self.padding)
        return F.relu(out) if self.fuse_relu else out

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        c, h, w = input_shape
        if c != self.in_channels:
            raise ValueError(
                f"layer {self.name!r} expects {self.in_channels} channels, got {c}"
            )
        out_h = F.conv_output_size(h, self.kernel, self.stride, self.padding)
        out_w = F.conv_output_size(w, self.kernel, self.stride, self.padding)
        return (self.out_features, out_h, out_w)

    def macs(self, input_shape: tuple[int, ...]) -> int:
        """Multiply-accumulates for one input sample."""
        _, out_h, out_w = self.output_shape(input_shape)
        return self.n_weights * out_h * out_w

    def _to_patches(
        self, codes: np.ndarray, pad_value: int
    ) -> tuple[np.ndarray, tuple]:
        shifted = codes - pad_value
        patches, (out_h, out_w) = F.im2col(
            shifted, self.kernel, self.stride, self.padding
        )
        return patches + pad_value, (out_h, out_w)

    def _from_flat(self, flat: np.ndarray, shape_info: tuple, batch: int) -> np.ndarray:
        out_h, out_w = shape_info
        return flat.reshape(batch, out_h, out_w, self.out_features).transpose(
            0, 3, 1, 2
        )


class Linear(MatmulLayer):
    """Quantized fully-connected layer (optionally with fused ReLU)."""

    def __init__(
        self,
        name: str,
        weights: np.ndarray,
        bias: np.ndarray | None = None,
        fuse_relu: bool = False,
        signed_input: bool = False,
    ):
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2:
            raise ValueError("linear weights must have shape (out_features, in_features)")
        self.in_features = int(weights.shape[1])
        super().__init__(
            name,
            weights,
            bias,
            out_features=int(weights.shape[0]),
            fuse_relu=fuse_relu,
            signed_input=signed_input,
        )

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weights.T + self.bias
        return F.relu(out) if self.fuse_relu else out

    def output_shape(self, input_shape: tuple[int, ...]) -> tuple[int, ...]:
        if input_shape != (self.in_features,):
            raise ValueError(
                f"layer {self.name!r} expects ({self.in_features},), got {input_shape}"
            )
        return (self.out_features,)

    def macs(self, input_shape: tuple[int, ...]) -> int:
        """Multiply-accumulates for one input sample."""
        return self.n_weights

    def _to_patches(
        self, codes: np.ndarray, pad_value: int
    ) -> tuple[np.ndarray, tuple]:
        return np.asarray(codes, dtype=np.int64), ()

    def _from_flat(self, flat: np.ndarray, shape_info: tuple, batch: int) -> np.ndarray:
        return flat.reshape(batch, self.out_features)


class ReLU(Layer):
    """Standalone ReLU (for layers where it is not fused)."""

    def __init__(self, name: str = "relu"):
        super().__init__(name)

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return F.relu(x)

    def forward_quantized(self, codes, quant, pim_matmul=None):
        return np.maximum(codes, quant.zero_point), quant

    def output_shape(self, input_shape):
        return input_shape


class MaxPool2d(Layer):
    """Max pooling; operates directly on codes in the integer path."""

    def __init__(
        self,
        kernel: int,
        stride: int | None = None,
        padding: int = 0,
        name: str = "maxpool",
    ):
        super().__init__(name)
        self.kernel = kernel
        self.stride = kernel if stride is None else stride
        self.padding = padding

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return F.maxpool2d(x, self.kernel, self.stride, self.padding)

    def forward_quantized(self, codes, quant, pim_matmul=None):
        pooled = F.maxpool2d(
            codes.astype(np.float64), self.kernel, self.stride, self.padding
        )
        return pooled.astype(np.int64), quant

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (
            c,
            F.conv_output_size(h, self.kernel, self.stride, self.padding),
            F.conv_output_size(w, self.kernel, self.stride, self.padding),
        )


class AvgPool2d(Layer):
    """Average pooling; the integer path averages codes and rounds."""

    def __init__(
        self,
        kernel: int,
        stride: int | None = None,
        padding: int = 0,
        name: str = "avgpool",
    ):
        super().__init__(name)
        self.kernel = kernel
        self.stride = kernel if stride is None else stride
        self.padding = padding

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return F.avgpool2d(x, self.kernel, self.stride, self.padding)

    def forward_quantized(self, codes, quant, pim_matmul=None):
        pooled = F.avgpool2d(
            codes.astype(np.float64), self.kernel, self.stride, self.padding
        )
        lo, hi = quant.code_range
        return np.clip(np.round(pooled), lo, hi).astype(np.int64), quant

    def output_shape(self, input_shape):
        c, h, w = input_shape
        return (
            c,
            F.conv_output_size(h, self.kernel, self.stride, self.padding),
            F.conv_output_size(w, self.kernel, self.stride, self.padding),
        )


class GlobalAvgPool(Layer):
    """Global average pooling NCHW -> NC."""

    def __init__(self, name: str = "gap"):
        super().__init__(name)

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return F.global_avg_pool(x)

    def forward_quantized(self, codes, quant, pim_matmul=None):
        pooled = F.global_avg_pool(codes.astype(np.float64))
        lo, hi = quant.code_range
        return np.clip(np.round(pooled), lo, hi).astype(np.int64), quant

    def output_shape(self, input_shape):
        c, _, _ = input_shape
        return (c,)


class Flatten(Layer):
    """Flatten all non-batch dimensions."""

    def __init__(self, name: str = "flatten"):
        super().__init__(name)

    def forward_float(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def forward_quantized(self, codes, quant, pim_matmul=None):
        return codes.reshape(codes.shape[0], -1), quant

    def output_shape(self, input_shape):
        return (int(np.prod(input_shape)),)
