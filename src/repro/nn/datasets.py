"""Synthetic classification datasets.

ImageNet and SQuAD are not available offline, so accuracy experiments use
synthetic tasks where a real top-1 accuracy can be measured: Gaussian-cluster
classification for MLPs and procedurally-generated images (class-specific
spatial templates plus noise) for small CNNs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClassificationDataset", "gaussian_clusters", "procedural_images"]


@dataclass
class ClassificationDataset:
    """A train/test split of a classification task."""

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x_train) != len(self.y_train):
            raise ValueError("train inputs and labels differ in length")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("test inputs and labels differ in length")

    @property
    def n_classes(self) -> int:
        """Number of distinct classes."""
        return int(max(self.y_train.max(), self.y_test.max())) + 1

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Shape of one input sample."""
        return tuple(self.x_train.shape[1:])


def gaussian_clusters(
    n_classes: int = 10,
    n_features: int = 96,
    n_train: int = 1000,
    n_test: int = 400,
    separation: float = 1.05,
    noise: float = 1.2,
    seed: int = 0,
) -> ClassificationDataset:
    """Gaussian-cluster classification with non-negative features.

    Class centroids are drawn from a half-normal distribution scaled by
    ``separation``; samples add Gaussian noise and are clipped at zero so that
    the features look like post-ReLU activations (unsigned 8-bit friendly).
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    centroids = np.abs(rng.normal(0.0, separation, size=(n_classes, n_features)))

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        x = centroids[labels] + rng.normal(0.0, noise, size=(n, n_features))
        return np.maximum(x, 0.0), labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return ClassificationDataset(
        name=f"gaussian_clusters_{n_classes}c_{n_features}f",
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )


def procedural_images(
    n_classes: int = 8,
    image_shape: tuple[int, int, int] = (3, 16, 16),
    n_train: int = 700,
    n_test: int = 300,
    noise: float = 0.4,
    seed: int = 0,
) -> ClassificationDataset:
    """Image classification from class-specific spatial templates plus noise."""
    if n_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    c, h, w = image_shape
    yy, xx = np.meshgrid(np.linspace(0, 1, h), np.linspace(0, 1, w), indexing="ij")
    templates = np.empty((n_classes, c, h, w))
    for cls in range(n_classes):
        freq = rng.uniform(1.0, 5.0, size=(c, 2))
        phase = rng.uniform(0, 2 * np.pi, size=(c, 2))
        templates[cls] = (
            np.sin(2 * np.pi * freq[:, 0, None, None] * yy + phase[:, 0, None, None])
            + np.cos(2 * np.pi * freq[:, 1, None, None] * xx + phase[:, 1, None, None])
        )

    def sample(n: int) -> tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        x = templates[labels] + rng.normal(0.0, noise, size=(n, c, h, w))
        return np.maximum(x + 2.0, 0.0) * 0.5, labels

    x_train, y_train = sample(n_train)
    x_test, y_test = sample(n_test)
    return ClassificationDataset(
        name=f"procedural_images_{n_classes}c_{h}x{w}",
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
    )
