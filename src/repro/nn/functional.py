"""Tensor operations for the NumPy DNN substrate.

All image tensors use NCHW layout.  Convolutions are lowered to matrix
multiplication via im2col, which mirrors how PIM accelerators map convolutions
onto crossbars (each filter becomes a crossbar column; each im2col patch
becomes an input vector).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "im2col",
    "conv_output_size",
    "conv2d",
    "maxpool2d",
    "avgpool2d",
    "global_avg_pool",
    "relu",
    "softmax",
    "cross_entropy",
    "one_hot",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive output size for input={size}, kernel={kernel}, "
            f"stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> tuple[np.ndarray, tuple[int, int]]:
    """Unfold an NCHW tensor into convolution patches.

    Returns ``(patches, (out_h, out_w))`` where ``patches`` has shape
    ``(N * out_h * out_w, C * kernel * kernel)``.  Each row is one input patch
    in channel-major order, which is the reduction ("row") dimension a
    crossbar column sums over.
    """
    x = np.asarray(x)
    if x.ndim != 4:
        raise ValueError("im2col expects an NCHW tensor")
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    patches = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kernel * kernel
    )
    return np.ascontiguousarray(patches), (out_h, out_w)


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Float 2-D convolution. ``weights`` has shape (out_c, in_c, k, k)."""
    weights = np.asarray(weights, dtype=np.float64)
    out_c, in_c, k, _ = weights.shape
    n = x.shape[0]
    if x.shape[1] != in_c:
        raise ValueError(f"input has {x.shape[1]} channels, weights expect {in_c}")
    patches, (out_h, out_w) = im2col(x, k, stride, padding)
    flat = patches @ weights.reshape(out_c, -1).T
    if bias is not None:
        flat = flat + np.asarray(bias, dtype=np.float64)
    return flat.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)


def _pool2d(
    x: np.ndarray, kernel: int, stride: int, padding: int, reducer
) -> np.ndarray:
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, padding)
    out_w = conv_output_size(w, kernel, stride, padding)
    if padding > 0:
        fill = -np.inf if reducer is np.max else 0.0
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
            constant_values=fill,
        )
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(
            strides[0],
            strides[1],
            strides[2] * stride,
            strides[3] * stride,
            strides[2],
            strides[3],
        ),
        writeable=False,
    )
    return reducer(windows, axis=(4, 5))


def maxpool2d(
    x: np.ndarray, kernel: int, stride: int | None = None, padding: int = 0
) -> np.ndarray:
    """Max pooling over an NCHW tensor."""
    stride = kernel if stride is None else stride
    return _pool2d(np.asarray(x, dtype=np.float64), kernel, stride, padding, np.max)


def avgpool2d(
    x: np.ndarray, kernel: int, stride: int | None = None, padding: int = 0
) -> np.ndarray:
    """Average pooling over an NCHW tensor."""
    stride = kernel if stride is None else stride
    return _pool2d(np.asarray(x, dtype=np.float64), kernel, stride, padding, np.mean)


def global_avg_pool(x: np.ndarray) -> np.ndarray:
    """Global average pooling: NCHW -> NC."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 4:
        raise ValueError("global_avg_pool expects an NCHW tensor")
    return x.mean(axis=(2, 3))


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float64), 0.0)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically-stable softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    if np.any(labels < 0) or np.any(labels >= n_classes):
        raise ValueError("labels out of range")
    out = np.zeros((labels.size, n_classes), dtype=np.float64)
    out[np.arange(labels.size), labels] = 1.0
    return out


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean cross-entropy loss of logits against integer labels."""
    probs = softmax(logits)
    labels = np.asarray(labels, dtype=np.int64)
    eps = 1e-12
    picked = probs[np.arange(labels.size), labels]
    return float(-np.mean(np.log(picked + eps)))
