"""Shared helpers for experiment harnesses: tables, geomeans, result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = ["geomean", "format_table", "ExperimentResult"]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("geomean of an empty sequence")
    if np.any(arr <= 0):
        raise ValueError("geomean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width plain-text table."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered))
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """A generic experiment result: named rows plus free-form metadata."""

    name: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def add_row(self, *values: object) -> None:
        """Append one result row."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.headers)}"
            )
        self.rows.append(tuple(values))

    def to_text(self) -> str:
        """Render the result as a plain-text table."""
        return f"== {self.name} ==\n" + format_table(self.headers, self.rows)

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]
