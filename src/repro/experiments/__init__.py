"""Experiment harnesses: one module per paper table / figure.

Every module exposes a ``run_*`` function returning a plain result object and
a ``format_*`` helper printing rows in the shape the paper reports.  The
benchmark suite (``benchmarks/``) wraps these functions with pytest-benchmark;
``EXPERIMENTS.md`` records paper-vs-measured values for each.

| Module                | Paper artifact                                     |
|-----------------------|----------------------------------------------------|
| ``fig01_breakdown``   | Fig. 1  -- ISAAC energy breakdown                  |
| ``table1_slicing``    | Table 1 -- slicing tradeoffs                       |
| ``table2_titanium``   | Table 2 -- Titanium Law terms                      |
| ``fig03_column_sums`` | Fig. 3  -- column-sum distributions / saturation   |
| ``fig05_encoding``    | Fig. 5  -- differential vs Center+Offset           |
| ``fig07_slicings``    | Fig. 7  -- per-layer weight slicings               |
| ``fig08_densities``   | Fig. 8  -- operand distributions / bit densities   |
| ``fig12_efficiency``  | Fig. 12 -- efficiency & throughput vs ISAAC        |
| ``fig13_retraining``  | Fig. 13 -- comparison with FORMS / TIMELY          |
| ``table3_prior``      | Table 3 -- qualitative prior-work comparison       |
| ``table4_accuracy``   | Table 4 -- accuracy comparison                     |
| ``fig14_ablation``    | Fig. 14 -- energy ablation                         |
| ``fig15_noise``       | Fig. 15 -- accuracy under analog noise             |
"""

__all__ = [
    "fig01_breakdown",
    "table1_slicing",
    "table2_titanium",
    "fig03_column_sums",
    "fig05_encoding",
    "fig07_slicings",
    "fig08_densities",
    "fig12_efficiency",
    "fig13_retraining",
    "table3_prior",
    "table4_accuracy",
    "fig14_ablation",
    "fig15_noise",
]
