"""Table 3: qualitative comparison with prior PIM accelerators.

The table classifies prior designs by whether they pay high ADC costs, limit
DNN weight counts, lose output fidelity, and require DNN retraining.  Entries
for architectures modelled in this repository are derived from their
:class:`~repro.hw.architecture.ArchitectureSpec` metadata; the remaining rows
reproduce the paper's literature classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentResult
from repro.hw.architecture import (
    FORMS_ARCH,
    ISAAC_ARCH,
    RAELLA_ARCH,
    TIMELY_ARCH,
    ArchitectureSpec,
)

__all__ = ["Table3Row", "run_table3", "format_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One architecture's qualitative classification."""

    name: str
    high_cost_adc: bool
    limits_weight_count: bool
    fidelity_loss: str
    needs_retraining: bool
    modelled: bool


def _row_from_spec(spec: ArchitectureSpec, high_cost_adc: bool) -> Table3Row:
    return Table3Row(
        name=spec.name,
        high_cost_adc=high_cost_adc,
        limits_weight_count=spec.limits_weight_count,
        fidelity_loss=spec.fidelity_loss,
        needs_retraining=spec.requires_retraining,
        modelled=True,
    )


#: Literature-only rows reproduced from the paper's Table 3.
_LITERATURE_ROWS = (
    Table3Row("atomlayer", True, False, "none", False, False),
    Table3Row("sre", False, True, "none", True, False),
    Table3Row("asbp", False, True, "none", True, False),
    Table3Row("prime", False, False, "high", True, False),
)


def run_table3() -> list[Table3Row]:
    """Assemble the prior-work comparison table."""
    rows = [
        _row_from_spec(ISAAC_ARCH, high_cost_adc=True),
        _LITERATURE_ROWS[0],
        _row_from_spec(FORMS_ARCH, high_cost_adc=False),
        *_LITERATURE_ROWS[1:3],
        _row_from_spec(TIMELY_ARCH, high_cost_adc=False),
        _LITERATURE_ROWS[3],
        _row_from_spec(RAELLA_ARCH, high_cost_adc=False),
    ]
    return rows


def format_table3(rows: list[Table3Row]) -> str:
    """Render the qualitative comparison."""
    table = ExperimentResult(
        name="Table 3 -- comparison to prior works",
        headers=(
            "architecture",
            "high-cost ADC",
            "limits weight count",
            "fidelity loss",
            "needs retraining",
            "modelled here",
        ),
    )
    for row in rows:
        table.add_row(
            row.name,
            "yes" if row.high_cost_adc else "no",
            "yes" if row.limits_weight_count else "-",
            row.fidelity_loss,
            "yes" if row.needs_retraining else "no",
            "yes" if row.modelled else "no",
        )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_table3(run_table3()))
