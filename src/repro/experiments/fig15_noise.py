"""Fig. 15: accuracy under increasing analog noise.

Column sums are perturbed with the Gaussian noise model of Section 7.2
(standard deviation ``E * sqrt(N+ + N-)``) and DNN accuracy is measured for
the four ablation setups.  The paper's findings, reproduced here on trained
synthetic-task models:

* ISAAC's dense unsigned slices generate large, high-noise analog values, so
  accuracy collapses at a few percent noise.
* Center+Offset moves much of the computation into the digital domain and
  increases bit sparsity, tolerating far more noise.
* Adaptive Weight Slicing is noise-aware: at higher noise it picks more,
  narrower slices and keeps accuracy.
* Speculation does not hurt accuracy because recovery re-converts failed
  columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.analog.noise import GaussianColumnNoise
from repro.arithmetic.slicing import ISAAC_WEIGHT_SLICING
from repro.baselines.isaac import IsaacBaseline
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig
from repro.experiments.runner import ExperimentResult
from repro.nn.datasets import ClassificationDataset, gaussian_clusters
from repro.nn.training import evaluate_accuracy, train_mlp
from repro.runtime import VectorizedLayerExecutor

__all__ = ["NoisePoint", "Fig15Result", "run_fig15", "format_fig15"]

#: Default noise levels swept (the paper sweeps up to 12%).
DEFAULT_NOISE_LEVELS = (0.0, 0.04, 0.08, 0.12)


@dataclass(frozen=True)
class NoisePoint:
    """Accuracy of one setup at one noise level."""

    setup: str
    noise_level: float
    accuracy: float
    accuracy_drop_pct: float


@dataclass
class Fig15Result:
    """Accuracy-vs-noise sweep results."""

    task_name: str
    quantized_accuracy: float
    points: list[NoisePoint] = field(default_factory=list)
    setup_names: tuple[str, ...] = ()

    def series(self, setup: str) -> list[NoisePoint]:
        """All points of one setup, ordered by noise level."""
        return sorted(
            (p for p in self.points if p.setup == setup), key=lambda p: p.noise_level
        )

    def drop_at(self, setup: str, noise_level: float) -> float:
        """Accuracy drop of a setup at a given noise level."""
        for point in self.points:
            if point.setup == setup and point.noise_level == noise_level:
                return point.accuracy_drop_pct
        raise KeyError(f"no point for {setup!r} at noise {noise_level}")


def _setup_configs() -> dict[str, RaellaCompilerConfig]:
    """Compiler configurations of the four ablation setups."""
    isaac_pim = IsaacBaseline().pim_config()
    center_offset_pim = PimLayerConfig(
        weight_slicing=ISAAC_WEIGHT_SLICING,
        speculation=SpeculationMode.BIT_SERIAL,
    )
    adaptive_pim = PimLayerConfig(speculation=SpeculationMode.BIT_SERIAL)
    raella_pim = PimLayerConfig()
    adaptive_cfg = AdaptiveSlicingConfig(max_test_patches=128)
    return {
        "isaac": RaellaCompilerConfig(
            pim=isaac_pim, adaptive_slicing_enabled=False, n_test_inputs=4
        ),
        "center_offset": RaellaCompilerConfig(
            pim=center_offset_pim, adaptive_slicing_enabled=False, n_test_inputs=4
        ),
        "center_offset+adaptive": RaellaCompilerConfig(
            pim=adaptive_pim, adaptive=adaptive_cfg, n_test_inputs=4
        ),
        "raella": RaellaCompilerConfig(
            pim=raella_pim, adaptive=adaptive_cfg, n_test_inputs=4
        ),
    }


def run_fig15(
    noise_levels: tuple[float, ...] = DEFAULT_NOISE_LEVELS,
    max_samples: int = 150,
    seed: int = 0,
    epochs: int = 25,
    dataset: ClassificationDataset | None = None,
) -> Fig15Result:
    """Sweep analog noise and measure accuracy for each ablation setup."""
    dataset = dataset or gaussian_clusters(seed=seed)
    training = train_mlp(dataset, epochs=epochs, seed=seed)
    model = training.model
    flat_dataset = replace(
        dataset,
        x_train=dataset.x_train.reshape(len(dataset.x_train), -1),
        x_test=dataset.x_test.reshape(len(dataset.x_test), -1),
    )
    configs = _setup_configs()
    result = Fig15Result(
        task_name=dataset.name,
        quantized_accuracy=training.quantized_accuracy,
        setup_names=tuple(configs),
    )
    test_inputs = flat_dataset.x_train[:4]
    for setup, config in configs.items():
        for level in noise_levels:
            noise = GaussianColumnNoise(level=level, seed=seed) if level else None
            program = RaellaCompiler(
                config, noise=noise, executor_factory=VectorizedLayerExecutor
            ).compile(model, test_inputs=test_inputs, seed=seed)
            accuracy = evaluate_accuracy(
                model,
                flat_dataset,
                pim_matmul=program.pim_matmul,
                max_samples=max_samples,
            )
            result.points.append(
                NoisePoint(
                    setup=setup,
                    noise_level=level,
                    accuracy=accuracy,
                    accuracy_drop_pct=100.0
                    * (training.quantized_accuracy - accuracy),
                )
            )
    return result


def format_fig15(result: Fig15Result) -> str:
    """Render the accuracy-vs-noise sweep."""
    table = ExperimentResult(
        name=f"Fig. 15 -- accuracy under analog noise ({result.task_name})",
        headers=("setup", "noise level", "accuracy", "drop (pp)"),
    )
    for setup in result.setup_names:
        for point in result.series(setup):
            table.add_row(
                setup, point.noise_level, point.accuracy, point.accuracy_drop_pct
            )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig15(run_fig15()))
