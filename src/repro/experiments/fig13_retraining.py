"""Fig. 13: comparison with DNN-retraining architectures (FORMS, TIMELY).

FORMS runs pruned-and-retrained DNNs and TIMELY runs requantized-and-retrained
DNNs; RAELLA runs the off-the-shelf models.  The paper reports geomean
ResNet18/ResNet50 results: RAELLA matches FORMS's throughput and exceeds the
efficiency of both.  For the TIMELY comparison RAELLA is rebuilt with TIMELY's
65 nm analog components, where the no-speculation configuration is the more
efficient one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.forms import FormsBaseline
from repro.baselines.isaac import IsaacBaseline
from repro.baselines.timely import TimelyBaseline
from repro.experiments.runner import ExperimentResult, geomean
from repro.hw.architecture import (
    RAELLA_65NM_ARCH,
    RAELLA_65NM_NO_SPEC_ARCH,
    RAELLA_ARCH,
    ArchitectureSpec,
)
from repro.hw.energy import EnergyModel
from repro.hw.throughput import ThroughputModel
from repro.nn.zoo import model_shapes

__all__ = ["ArchResult", "Fig13Result", "run_fig13", "format_fig13"]

_DEFAULT_MODELS = ("resnet18", "resnet50")


@dataclass(frozen=True)
class ArchResult:
    """Geomean energy/throughput of one architecture over the model set."""

    arch_name: str
    requires_retraining: bool
    geomean_energy_uj: float
    geomean_throughput: float


@dataclass
class Fig13Result:
    """Comparison rows, all normalised against ISAAC."""

    model_names: tuple[str, ...]
    isaac: ArchResult
    entries: list[ArchResult] = field(default_factory=list)

    def relative_efficiency(self, entry: ArchResult) -> float:
        """Energy-efficiency gain over ISAAC."""
        return self.isaac.geomean_energy_uj / entry.geomean_energy_uj

    def relative_throughput(self, entry: ArchResult) -> float:
        """Throughput gain over ISAAC."""
        return entry.geomean_throughput / self.isaac.geomean_throughput


def _evaluate(arch: ArchitectureSpec, model_names, retraining: bool) -> ArchResult:
    energies, throughputs = [], []
    energy_model = EnergyModel(arch)
    throughput_model = ThroughputModel(arch)
    for name in model_names:
        shapes = model_shapes(name)
        energies.append(energy_model.model_energy(shapes).total_uj)
        throughputs.append(throughput_model.evaluate(shapes).throughput_samples_per_s)
    return ArchResult(
        arch_name=arch.name,
        requires_retraining=retraining,
        geomean_energy_uj=geomean(energies),
        geomean_throughput=geomean(throughputs),
    )


def run_fig13(model_names: tuple[str, ...] = _DEFAULT_MODELS) -> Fig13Result:
    """Compare RAELLA with FORMS and TIMELY on ResNet18/ResNet50 geomeans."""
    isaac = IsaacBaseline()
    forms = FormsBaseline()
    timely = TimelyBaseline()
    result = Fig13Result(
        model_names=model_names,
        isaac=_evaluate(isaac.arch, model_names, retraining=False),
    )
    result.entries.append(_evaluate(RAELLA_ARCH, model_names, retraining=False))
    result.entries.append(_evaluate(forms.arch, model_names, retraining=True))
    result.entries.append(_evaluate(RAELLA_65NM_ARCH, model_names, retraining=False))
    result.entries.append(
        _evaluate(RAELLA_65NM_NO_SPEC_ARCH, model_names, retraining=False)
    )
    result.entries.append(_evaluate(timely.arch, model_names, retraining=True))
    return result


def format_fig13(result: Fig13Result) -> str:
    """Render the retraining-architecture comparison."""
    table = ExperimentResult(
        name=(
            "Fig. 13 -- comparison with retraining architectures "
            f"(geomean of {', '.join(result.model_names)})"
        ),
        headers=(
            "architecture",
            "retrains DNN",
            "efficiency vs ISAAC",
            "throughput vs ISAAC",
        ),
    )
    table.add_row(result.isaac.arch_name, "no", 1.0, 1.0)
    for entry in result.entries:
        table.add_row(
            entry.arch_name,
            "yes" if entry.requires_retraining else "no",
            result.relative_efficiency(entry),
            result.relative_throughput(entry),
        )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig13(run_fig13()))
