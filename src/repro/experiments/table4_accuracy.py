"""Table 4: accuracy comparison.

RAELLA with Center+Offset encoding causes little to no accuracy loss without
retraining; the same hardware with Zero+Offset (common-practice differential
encoding) loses substantial accuracy because negatively-skewed filters
saturate the ADC.  FORMS and TIMELY recover their losses by retraining.

ImageNet/SQuAD and the pretrained models are unavailable offline, so accuracy
is measured on trained models over synthetic tasks (see DESIGN.md): an MLP on
a Gaussian-cluster task and a CNN on a procedural-image task.  The accuracy
*drop* relative to exact 8-bit integer execution is the reproduced quantity;
FORMS/TIMELY rows reproduce the drops reported in their papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.forms import FORMS_REPORTED_ACCURACY_DROP
from repro.baselines.timely import TIMELY_REPORTED_ACCURACY_DROP
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.center_offset import WeightEncoding
from repro.core.compiler import (
    CompiledLayer,
    RaellaCompiler,
    RaellaCompilerConfig,
    RaellaProgram,
)
from repro.experiments.runner import ExperimentResult
from repro.nn.datasets import (
    ClassificationDataset,
    gaussian_clusters,
    procedural_images,
)
from repro.nn.training import evaluate_accuracy, train_cnn, train_mlp
from repro.runtime import VectorizedLayerExecutor

#: Samples pushed through the network per pass during accuracy evaluation.
EVAL_MICRO_BATCH = 64

__all__ = [
    "AccuracyEntry",
    "Table4Result",
    "clone_program_with_encoding",
    "run_table4",
    "format_table4",
]


@dataclass(frozen=True)
class AccuracyEntry:
    """Accuracy results of one model."""

    model_name: str
    task_name: str
    quantized_accuracy: float
    center_offset_accuracy: float
    zero_offset_accuracy: float

    @property
    def center_offset_drop_pct(self) -> float:
        """Accuracy drop (percentage points) of RAELLA Center+Offset."""
        return 100.0 * (self.quantized_accuracy - self.center_offset_accuracy)

    @property
    def zero_offset_drop_pct(self) -> float:
        """Accuracy drop (percentage points) of RAELLA Zero+Offset."""
        return 100.0 * (self.quantized_accuracy - self.zero_offset_accuracy)


@dataclass
class Table4Result:
    """Measured entries plus the baselines' reported drops."""

    entries: list[AccuracyEntry] = field(default_factory=list)
    forms_reported_drop_pct: dict[str, float] = field(
        default_factory=lambda: dict(FORMS_REPORTED_ACCURACY_DROP)
    )
    timely_reported_drop_pct: dict[str, float] = field(
        default_factory=lambda: dict(TIMELY_REPORTED_ACCURACY_DROP)
    )


def clone_program_with_encoding(
    program: RaellaProgram, encoding: WeightEncoding
) -> RaellaProgram:
    """Rebuild a compiled program with a different weight encoding.

    Per-layer slicings are kept identical so that efficiency and throughput
    match and only the encoding differs, as in the paper's Table 4 setup.
    """
    layers = {}
    for name, compiled in program.layers.items():
        config = compiled.executor.config.with_changes(weight_encoding=encoding)
        executor = VectorizedLayerExecutor(compiled.layer, config, noise=None)
        layers[name] = CompiledLayer(
            layer=compiled.layer, choice=compiled.choice, executor=executor
        )
    return RaellaProgram(model=program.model, layers=layers, config=program.config)


def _evaluate_model(
    name: str,
    model,
    dataset: ClassificationDataset,
    quantized_accuracy: float,
    compiler_config: RaellaCompilerConfig,
    max_samples: int,
    seed: int,
) -> AccuracyEntry:
    flat_needed = len(model.input_shape) == 1
    if flat_needed:
        dataset = replace(
            dataset,
            x_train=dataset.x_train.reshape(len(dataset.x_train), -1),
            x_test=dataset.x_test.reshape(len(dataset.x_test), -1),
        )
    test_inputs = dataset.x_train[: compiler_config.n_test_inputs]
    program = RaellaCompiler(
        compiler_config, executor_factory=VectorizedLayerExecutor
    ).compile(model, test_inputs=test_inputs, seed=seed)
    center_accuracy = evaluate_accuracy(
        model,
        dataset,
        pim_matmul=program.pim_matmul,
        max_samples=max_samples,
        micro_batch=EVAL_MICRO_BATCH,
    )
    zero_program = clone_program_with_encoding(program, WeightEncoding.ZERO_OFFSET)
    zero_accuracy = evaluate_accuracy(
        model,
        dataset,
        pim_matmul=zero_program.pim_matmul,
        max_samples=max_samples,
        micro_batch=EVAL_MICRO_BATCH,
    )
    return AccuracyEntry(
        model_name=name,
        task_name=dataset.name,
        quantized_accuracy=quantized_accuracy,
        center_offset_accuracy=center_accuracy,
        zero_offset_accuracy=zero_accuracy,
    )


def run_table4(
    max_samples: int = 200,
    include_cnn: bool = True,
    seed: int = 0,
    epochs: int = 25,
) -> Table4Result:
    """Measure accuracy drops of Center+Offset vs Zero+Offset RAELLA."""
    result = Table4Result()
    compiler_config = RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(max_test_patches=256),
        n_test_inputs=4,
    )

    mlp_dataset = gaussian_clusters(seed=seed)
    mlp = train_mlp(mlp_dataset, epochs=epochs, seed=seed)
    result.entries.append(
        _evaluate_model(
            "mlp",
            mlp.model,
            mlp_dataset,
            mlp.quantized_accuracy,
            compiler_config,
            max_samples,
            seed,
        )
    )

    if include_cnn:
        cnn_dataset = procedural_images(seed=seed)
        cnn = train_cnn(cnn_dataset, epochs=epochs, seed=seed)
        result.entries.append(
            _evaluate_model(
                "cnn",
                cnn.model,
                cnn_dataset,
                cnn.quantized_accuracy,
                compiler_config,
                max_samples,
                seed,
            )
        )
    return result


def format_table4(result: Table4Result) -> str:
    """Render the accuracy comparison."""
    table = ExperimentResult(
        name="Table 4 -- accuracy drop (percentage points, lower is better)",
        headers=(
            "model",
            "task",
            "quantized acc",
            "C+O acc",
            "Z+O acc",
            "C+O drop",
            "Z+O drop",
        ),
    )
    for entry in result.entries:
        table.add_row(
            entry.model_name,
            entry.task_name,
            entry.quantized_accuracy,
            entry.center_offset_accuracy,
            entry.zero_offset_accuracy,
            entry.center_offset_drop_pct,
            entry.zero_offset_drop_pct,
        )
    text = table.to_text()
    text += "\nreported drops after retraining (paper baselines):"
    for name, drop in result.forms_reported_drop_pct.items():
        text += f"\n  FORMS  {name}: {drop:.2f}"
    for name, drop in result.timely_reported_drop_pct.items():
        text += f"\n  TIMELY {name}: <= {drop:.2f}"
    return text


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_table4(run_table4()))
