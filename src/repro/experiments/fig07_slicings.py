"""Fig. 7: per-layer weight slicings chosen by Adaptive Weight Slicing.

The paper shows that with a 0.09 error budget most DNN layers settle on three
weight slices (4b-2b-2b), a few dense or sensitive layers need more, and the
last layer always uses the conservative eight 1-bit slices.  This experiment
compiles the runnable shape-faithful models and reports the chosen slicing of
every layer plus the distribution of slices per weight.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.experiments.runner import ExperimentResult
from repro.nn.zoo import build_runnable

__all__ = ["ModelSlicings", "Fig07Result", "run_fig07", "format_fig07"]


@dataclass
class ModelSlicings:
    """Chosen weight slicings for one model."""

    model_name: str
    per_layer: dict[str, tuple[int, ...]]

    @property
    def slices_per_layer(self) -> dict[str, int]:
        """Number of weight slices per layer."""
        return {name: len(widths) for name, widths in self.per_layer.items()}

    @property
    def slice_count_histogram(self) -> dict[int, int]:
        """How many layers use each slice count."""
        return dict(Counter(self.slices_per_layer.values()))

    @property
    def modal_slice_count(self) -> int:
        """The most common number of slices across layers."""
        histogram = self.slice_count_histogram
        return max(histogram, key=histogram.get)


@dataclass
class Fig07Result:
    """Per-model slicing results."""

    models: list[ModelSlicings] = field(default_factory=list)
    error_budget: float = 0.09


def run_fig07(
    model_names: tuple[str, ...] = ("resnet18", "mobilenetv2"),
    error_budget: float = 0.09,
    max_test_patches: int = 192,
    n_test_inputs: int = 2,
    seed: int = 0,
) -> Fig07Result:
    """Compile models with Adaptive Weight Slicing and collect chosen slicings."""
    result = Fig07Result(error_budget=error_budget)
    compiler_config = RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(
            error_budget=error_budget, max_test_patches=max_test_patches
        ),
        n_test_inputs=n_test_inputs,
    )
    for name in model_names:
        model = build_runnable(name, seed=seed)
        program = RaellaCompiler(compiler_config).compile(model, seed=seed)
        result.models.append(
            ModelSlicings(model_name=name, per_layer=program.slicing_summary())
        )
    return result


def format_fig07(result: Fig07Result) -> str:
    """Render per-layer slicings."""
    table = ExperimentResult(
        name=f"Fig. 7 -- adaptive weight slicings (budget {result.error_budget})",
        headers=("model", "layer", "slicing", "slices/weight"),
    )
    for model in result.models:
        for layer, widths in model.per_layer.items():
            table.add_row(
                model.model_name,
                layer,
                "-".join(f"{w}b" for w in widths),
                len(widths),
            )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig07(run_fig07()))
