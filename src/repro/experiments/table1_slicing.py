"""Table 1: how slicing works and its tradeoffs.

A 2-bit input and a 2-bit weight are multiplied, with each operand either
kept whole or sliced into two 1-bit slices.  More slices reduce the bits per
MAC (allowing a lower-resolution ADC) but require more cycles, columns and ADC
conversions per MAC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentResult

__all__ = ["Table1Row", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Row:
    """One slicing option of the 2b x 2b example."""

    sliced_input: bool
    sliced_weight: bool
    input_slices: int
    weight_slices: int
    bits_per_input_slice: int
    bits_per_weight_slice: int

    @property
    def cycles(self) -> int:
        """Cycles needed (one per input slice)."""
        return self.input_slices

    @property
    def columns(self) -> int:
        """Crossbar columns needed (one per weight slice)."""
        return self.weight_slices

    @property
    def bits_per_mac(self) -> int:
        """Resolution of each sliced product (bits of input x bits of weight)."""
        return self.bits_per_input_slice * self.bits_per_weight_slice

    @property
    def converts_per_mac(self) -> int:
        """ADC conversions per full 2b x 2b MAC."""
        return self.input_slices * self.weight_slices


def run_table1(operand_bits: int = 2) -> list[Table1Row]:
    """Enumerate the four slicing options of Table 1."""
    rows = []
    for sliced_input in (False, True):
        for sliced_weight in (False, True):
            input_slices = operand_bits if sliced_input else 1
            weight_slices = operand_bits if sliced_weight else 1
            rows.append(
                Table1Row(
                    sliced_input=sliced_input,
                    sliced_weight=sliced_weight,
                    input_slices=input_slices,
                    weight_slices=weight_slices,
                    bits_per_input_slice=operand_bits // input_slices,
                    bits_per_weight_slice=operand_bits // weight_slices,
                )
            )
    return rows


def format_table1(rows: list[Table1Row]) -> str:
    """Render Table 1."""
    table = ExperimentResult(
        name="Table 1 -- slicing tradeoffs (2b input x 2b weight)",
        headers=(
            "sliced input",
            "sliced weight",
            "cycles",
            "columns",
            "bits/MAC",
            "converts/MAC",
        ),
    )
    for row in rows:
        table.add_row(
            "yes" if row.sliced_input else "no",
            "yes" if row.sliced_weight else "no",
            row.cycles,
            row.columns,
            row.bits_per_mac,
            row.converts_per_mac,
        )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_table1(run_table1()))
