"""Fig. 12: energy efficiency and throughput normalised to ISAAC.

RAELLA (with and without speculation) and ISAAC run all seven DNNs without
retraining; results are normalised to ISAAC.  The paper reports efficiency
gains of 2.9-4.9x (geomean 3.9x) and throughput gains of 0.7-3.3x (geomean
2.0x) with speculation, and 2.8x / 2.7x geomean without.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.isaac import IsaacBaseline
from repro.experiments.runner import ExperimentResult, geomean
from repro.hw.architecture import RAELLA_ARCH, RAELLA_NO_SPEC_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyModel
from repro.hw.throughput import ThroughputModel
from repro.nn.zoo import MODEL_NAMES, model_shapes

__all__ = ["Fig12Row", "Fig12Result", "run_fig12", "format_fig12"]


@dataclass(frozen=True)
class Fig12Row:
    """Normalised results of one DNN."""

    model_name: str
    isaac_energy_uj: float
    raella_energy_uj: float
    raella_no_spec_energy_uj: float
    isaac_throughput: float
    raella_throughput: float
    raella_no_spec_throughput: float

    @property
    def efficiency_gain(self) -> float:
        """RAELLA energy-efficiency gain over ISAAC (with speculation)."""
        return self.isaac_energy_uj / self.raella_energy_uj

    @property
    def efficiency_gain_no_spec(self) -> float:
        """Efficiency gain with speculation disabled."""
        return self.isaac_energy_uj / self.raella_no_spec_energy_uj

    @property
    def throughput_gain(self) -> float:
        """RAELLA throughput gain over ISAAC (with speculation)."""
        return self.raella_throughput / self.isaac_throughput

    @property
    def throughput_gain_no_spec(self) -> float:
        """Throughput gain with speculation disabled."""
        return self.raella_no_spec_throughput / self.isaac_throughput


@dataclass
class Fig12Result:
    """Per-model rows plus geomeans."""

    rows: list[Fig12Row] = field(default_factory=list)

    @property
    def geomean_efficiency_gain(self) -> float:
        """Geomean efficiency gain with speculation."""
        return geomean(row.efficiency_gain for row in self.rows)

    @property
    def geomean_efficiency_gain_no_spec(self) -> float:
        """Geomean efficiency gain without speculation."""
        return geomean(row.efficiency_gain_no_spec for row in self.rows)

    @property
    def geomean_throughput_gain(self) -> float:
        """Geomean throughput gain with speculation."""
        return geomean(row.throughput_gain for row in self.rows)

    @property
    def geomean_throughput_gain_no_spec(self) -> float:
        """Geomean throughput gain without speculation."""
        return geomean(row.throughput_gain_no_spec for row in self.rows)


def run_fig12(
    model_names: tuple[str, ...] = MODEL_NAMES,
    raella_arch: ArchitectureSpec = RAELLA_ARCH,
    raella_no_spec_arch: ArchitectureSpec = RAELLA_NO_SPEC_ARCH,
) -> Fig12Result:
    """Evaluate all DNNs on ISAAC and RAELLA (with/without speculation)."""
    isaac = IsaacBaseline()
    result = Fig12Result()
    raella_energy = EnergyModel(raella_arch)
    raella_ns_energy = EnergyModel(raella_no_spec_arch)
    raella_throughput = ThroughputModel(raella_arch)
    raella_ns_throughput = ThroughputModel(raella_no_spec_arch)
    for name in model_names:
        shapes = model_shapes(name)
        result.rows.append(
            Fig12Row(
                model_name=name,
                isaac_energy_uj=isaac.energy(shapes).total_uj,
                raella_energy_uj=raella_energy.model_energy(shapes).total_uj,
                raella_no_spec_energy_uj=raella_ns_energy.model_energy(shapes).total_uj,
                isaac_throughput=isaac.throughput(shapes).throughput_samples_per_s,
                raella_throughput=raella_throughput.evaluate(
                    shapes
                ).throughput_samples_per_s,
                raella_no_spec_throughput=raella_ns_throughput.evaluate(
                    shapes
                ).throughput_samples_per_s,
            )
        )
    return result


def format_fig12(result: Fig12Result) -> str:
    """Render the normalised efficiency/throughput table."""
    table = ExperimentResult(
        name="Fig. 12 -- efficiency and throughput normalised to ISAAC",
        headers=(
            "model",
            "efficiency x",
            "efficiency x (no spec)",
            "throughput x",
            "throughput x (no spec)",
        ),
    )
    for row in result.rows:
        table.add_row(
            row.model_name,
            row.efficiency_gain,
            row.efficiency_gain_no_spec,
            row.throughput_gain,
            row.throughput_gain_no_spec,
        )
    table.add_row(
        "geomean",
        result.geomean_efficiency_gain,
        result.geomean_efficiency_gain_no_spec,
        result.geomean_throughput_gain,
        result.geomean_throughput_gain_no_spec,
    )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig12(run_fig12()))
