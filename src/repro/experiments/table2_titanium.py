"""Table 2: the Titanium Law of ADC energy and its tradeoffs.

ADC energy per DNN is the product of Energy/Convert, Converts/MAC, MACs/DNN
and 1/Utilization.  This experiment decomposes the evaluated architectures
into those terms and sweeps the two coupled knobs (ADC resolution and crossbar
rows / bits per slice) to exhibit the tradeoff the table describes: reducing
one term without an architectural change inflates another.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.runner import ExperimentResult
from repro.hw.architecture import (
    FORMS_ARCH,
    ISAAC_ARCH,
    RAELLA_ARCH,
    RAELLA_NO_SPEC_ARCH,
    ArchitectureSpec,
)
from repro.hw.titanium import TitaniumLawTerms, titanium_law
from repro.nn.zoo import model_shapes

__all__ = ["Table2Result", "run_table2", "run_titanium_tradeoff_sweep", "format_table2"]

_DEFAULT_ARCHS = (ISAAC_ARCH, FORMS_ARCH, RAELLA_NO_SPEC_ARCH, RAELLA_ARCH)


@dataclass
class Table2Result:
    """Titanium-Law terms for several architectures on one DNN."""

    model_name: str
    terms: list[TitaniumLawTerms]


def run_table2(
    model_name: str = "resnet18",
    archs: tuple[ArchitectureSpec, ...] = _DEFAULT_ARCHS,
) -> Table2Result:
    """Decompose ADC energy for each architecture."""
    shapes = model_shapes(model_name)
    return Table2Result(
        model_name=model_name,
        terms=[titanium_law(shapes, arch) for arch in archs],
    )


def run_titanium_tradeoff_sweep(
    model_name: str = "resnet18",
    adc_bits: tuple[int, ...] = (5, 6, 7, 8, 9),
) -> list[TitaniumLawTerms]:
    """Sweep ADC resolution at iso-fidelity to exhibit the Table 2 tradeoff.

    Keeping fidelity constant while lowering ADC resolution requires
    accumulating fewer sliced products per conversion -- fewer crossbar rows --
    which raises Converts/MAC.  The sweep scales RAELLA's rows proportionally
    to the ADC range so that the worst-case column-sum resolution tracks the
    ADC resolution.
    """
    shapes = model_shapes(model_name)
    reference_bits = RAELLA_ARCH.adc_bits
    results = []
    for bits in adc_bits:
        scale = 2.0 ** (bits - reference_bits)
        rows = max(int(RAELLA_ARCH.crossbar_rows * scale), 16)
        arch = RAELLA_ARCH.with_changes(
            name=f"raella_{bits}b_adc",
            adc_bits=bits,
            crossbar_rows=rows,
        )
        results.append(titanium_law(shapes, arch))
    return results


def format_table2(result: Table2Result) -> str:
    """Render the Titanium-Law decomposition."""
    table = ExperimentResult(
        name=f"Table 2 -- Titanium Law terms ({result.model_name})",
        headers=(
            "architecture",
            "energy/convert (pJ)",
            "converts/MAC",
            "MACs/DNN (G)",
            "utilization",
            "ADC energy (uJ)",
        ),
    )
    for terms in result.terms:
        table.add_row(
            terms.arch_name,
            terms.energy_per_convert_pj,
            terms.converts_per_mac,
            terms.macs_per_dnn / 1e9,
            terms.utilization,
            terms.adc_energy_uj,
        )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_table2(run_table2()))
