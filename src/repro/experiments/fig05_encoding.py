"""Fig. 5: differential (Zero+Offset) vs Center+Offset encoding.

For a mostly-negative weight filter (like the InceptionV3 filter the paper
plots), differential encoding produces mostly-negative weight slices whose
biases accumulate into large negative column sums and frequent ADC
saturation.  Center+Offset balances positive and negative slices and keeps
column sums near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arithmetic.quantize import quantize_per_channel
from repro.arithmetic.slicing import Slicing
from repro.core.center_offset import CenterOffsetEncoder, WeightEncoding
from repro.experiments.runner import ExperimentResult
from repro.nn.synthetic import negative_skewed_filter_weights, synthetic_activations

__all__ = ["EncodingComparison", "run_fig05", "format_fig05"]

#: RAELLA's signed 7-bit ADC bounds.
ADC_BOUNDS = (-64, 63)


@dataclass
class EncodingComparison:
    """Column-sum statistics of one encoding for the skewed filter."""

    encoding: str
    center: int
    mean_slice_value: float
    column_sums: np.ndarray

    @property
    def mean_column_sum(self) -> float:
        """Mean analog column sum."""
        return float(self.column_sums.mean())

    @property
    def saturation_rate(self) -> float:
        """Fraction of column sums outside the signed 7-bit ADC range."""
        lo, hi = ADC_BOUNDS
        return float(np.mean((self.column_sums < lo) | (self.column_sums > hi)))


def _column_sums_for_encoding(
    weight_codes: np.ndarray,
    zero_point: int,
    encoding: WeightEncoding,
    inputs: np.ndarray,
    slicing: Slicing,
) -> EncodingComparison:
    encoder = CenterOffsetEncoder(slicing=slicing, encoding=encoding)
    encoded = encoder.encode(weight_codes[:, np.newaxis], np.array([zero_point]))
    diff = encoded.positive_slices[:, :, 0] - encoded.negative_slices[:, :, 0]
    # One crossbar column per weight slice; 1-bit input slices as in Fig. 5.
    sums = []
    for bit in range(8):
        bit_values = (inputs >> bit) & 1
        sums.append(bit_values @ diff.T)  # (n_inputs, n_slices)
    column_sums = np.concatenate([s.ravel() for s in sums])
    return EncodingComparison(
        encoding=encoding.value,
        center=int(encoded.centers[0]),
        mean_slice_value=float(diff.mean()),
        column_sums=column_sums.astype(np.float64),
    )


def run_fig05(
    n_weights: int = 512,
    n_inputs: int = 64,
    seed: int = 0,
    slicing: Slicing | None = None,
) -> list[EncodingComparison]:
    """Compare Zero+Offset and Center+Offset on a negative-skewed filter."""
    rng = np.random.default_rng(seed)
    weights = negative_skewed_filter_weights(n_weights, rng)
    codes, params = quantize_per_channel(weights[np.newaxis, :], channel_axis=0)
    filter_codes = codes[0]
    zero_point = int(params.zero_point[0])
    activations = synthetic_activations((n_inputs, n_weights), rng, scale=1.0)
    input_codes = np.clip(
        np.round(activations / activations.max() * 255), 0, 255
    ).astype(np.int64)
    slicing = slicing or Slicing((2, 2, 2, 2))
    return [
        _column_sums_for_encoding(
            filter_codes, zero_point, WeightEncoding.ZERO_OFFSET, input_codes, slicing
        ),
        _column_sums_for_encoding(
            filter_codes, zero_point, WeightEncoding.CENTER_OFFSET, input_codes, slicing
        ),
    ]


def format_fig05(comparisons: list[EncodingComparison]) -> str:
    """Render the encoding comparison."""
    table = ExperimentResult(
        name="Fig. 5 -- differential vs Center+Offset encoding",
        headers=(
            "encoding",
            "center",
            "mean slice value",
            "mean column sum",
            "ADC saturation rate",
        ),
    )
    for comparison in comparisons:
        table.add_row(
            comparison.encoding,
            comparison.center,
            comparison.mean_slice_value,
            comparison.mean_column_sum,
            comparison.saturation_rate,
        )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig05(run_fig05()))
