"""Fig. 14: energy ablation of RAELLA's strategies.

Starting from the 8-bit ISAAC architecture, the paper applies RAELLA's
strategies one at a time and measures the energy effect of each:

1. **ISAAC** -- 128x128 unsigned crossbars, 8b ADC, four 2b weight slices,
   eight 1b input slices.
2. **+ Center+Offset** -- crossbars grow to 512x512 2T2R, ADC drops to 7b.
3. **+ Adaptive Weight Slicing** -- most layers use three weight slices.
4. **RAELLA** -- Dynamic Input Slicing speculation enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentResult
from repro.hw.actions import count_model_actions
from repro.hw.architecture import ISAAC_ARCH, RAELLA_ARCH, ArchitectureSpec
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.nn.zoo import CNN_MODEL_NAMES, model_shapes

__all__ = ["ablation_architectures", "Fig14Result", "run_fig14", "format_fig14"]


def ablation_architectures() -> tuple[ArchitectureSpec, ...]:
    """The four ablation setups of Section 7."""
    from repro.hw.architecture import OperandStatistics

    center_offset = RAELLA_ARCH.with_changes(
        name="center_offset",
        typical_weight_slices=4,
        last_layer_weight_slices=4,
        speculative=False,
        converting_cycles_per_presentation=8.0,
        cycles_per_presentation=8,
        input_streams=1,
        operand_stats=OperandStatistics.for_bit_serial_offsets(),
    )
    adaptive = center_offset.with_changes(
        name="center_offset+adaptive_slicing",
        typical_weight_slices=3,
        last_layer_weight_slices=8,
    )
    return (ISAAC_ARCH, center_offset, adaptive, RAELLA_ARCH)


@dataclass
class Fig14Result:
    """Energy breakdowns per (setup, model)."""

    breakdowns: dict[tuple[str, str], EnergyBreakdown] = field(default_factory=dict)
    converts_per_mac: dict[tuple[str, str], float] = field(default_factory=dict)
    model_names: tuple[str, ...] = ()
    setup_names: tuple[str, ...] = ()

    def total_energy_uj(self, setup: str, model: str) -> float:
        """Total energy of one setup on one model."""
        return self.breakdowns[(setup, model)].total_uj

    def mean_converts_per_mac(self, setup: str) -> float:
        """Average Converts/MAC of a setup across the models."""
        values = [self.converts_per_mac[(setup, model)] for model in self.model_names]
        return float(sum(values) / len(values))

    def energy_reduction_vs_isaac(self, setup: str, model: str) -> float:
        """Energy reduction factor of a setup relative to ISAAC."""
        return self.total_energy_uj(self.setup_names[0], model) / self.total_energy_uj(
            setup, model
        )


def run_fig14(model_names: tuple[str, ...] = CNN_MODEL_NAMES) -> Fig14Result:
    """Compute per-component energy for each ablation setup and model."""
    setups = ablation_architectures()
    result = Fig14Result(
        model_names=tuple(model_names),
        setup_names=tuple(arch.name for arch in setups),
    )
    for arch in setups:
        energy_model = EnergyModel(arch)
        for model_name in model_names:
            shapes = model_shapes(model_name)
            breakdown = energy_model.model_energy(shapes)
            actions = count_model_actions(shapes, arch)
            total_macs = sum(a.macs for a in actions)
            total_converts = sum(a.adc_converts for a in actions)
            key = (arch.name, model_name)
            result.breakdowns[key] = breakdown
            result.converts_per_mac[key] = (
                total_converts / total_macs if total_macs else 0.0
            )
    return result


def format_fig14(result: Fig14Result) -> str:
    """Render the ablation as energy + ADC-fraction rows."""
    table = ExperimentResult(
        name="Fig. 14 -- energy ablation",
        headers=(
            "setup",
            "model",
            "energy (uJ)",
            "ADC fraction",
            "crossbar fraction",
            "converts/MAC",
            "reduction vs ISAAC",
        ),
    )
    for setup in result.setup_names:
        for model in result.model_names:
            breakdown = result.breakdowns[(setup, model)]
            table.add_row(
                setup,
                model,
                breakdown.total_uj,
                breakdown.fraction("adc"),
                breakdown.fraction("crossbar"),
                result.converts_per_mac[(setup, model)],
                result.energy_reduction_vs_isaac(setup, model),
            )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig14(run_fig14()))
