"""Fig. 8: operand value distributions and per-bit densities.

DNN inputs follow right-skewed distributions (sparse high-order bits after
ReLU); weights follow rough bell curves, which Center+Offset splits about a
center into two similar distributions with sparse high-order bits.  This
experiment measures per-bit densities of inputs, raw unsigned weight codes and
Center+Offset offset magnitudes for a representative layer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arithmetic.bits import bit_density
from repro.arithmetic.slicing import RAELLA_DEFAULT_WEIGHT_SLICING
from repro.core.center_offset import CenterOffsetEncoder, WeightEncoding
from repro.experiments.runner import ExperimentResult
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_images
from repro.nn.zoo import resnet50_like

__all__ = ["Fig08Result", "run_fig08", "format_fig08"]


@dataclass
class Fig08Result:
    """Per-bit densities (bit 0 = LSB) for one layer's operands."""

    model_name: str
    layer_name: str
    input_bit_density: np.ndarray
    weight_code_bit_density: np.ndarray
    offset_bit_density: np.ndarray
    input_nonzero_fraction: float
    mean_offset_magnitude: float

    @property
    def high_order_input_density(self) -> float:
        """Average density of the four most significant input bits."""
        return float(self.input_bit_density[4:].mean())

    @property
    def high_order_offset_density(self) -> float:
        """Average density of the four most significant offset bits."""
        return float(self.offset_bit_density[4:].mean())

    @property
    def high_order_weight_code_density(self) -> float:
        """Average density of the four most significant raw-code bits."""
        return float(self.weight_code_bit_density[4:].mean())


def run_fig08(
    model: QuantizedModel | None = None,
    layer_index: int = -2,
    n_inputs: int = 2,
    seed: int = 0,
) -> Fig08Result:
    """Measure operand bit densities for a penultimate-style layer."""
    model = model or resnet50_like(seed=seed)
    rng = np.random.default_rng(seed)
    inputs = synthetic_images(n_inputs, model.input_shape, rng)
    captured = model.capture_layer_inputs(inputs)
    layer = model.matmul_layers()[layer_index]
    patches = captured[layer.name].patch_codes
    codes = layer.weight_codes

    encoder = CenterOffsetEncoder(
        slicing=RAELLA_DEFAULT_WEIGHT_SLICING,
        encoding=WeightEncoding.CENTER_OFFSET,
    )
    centers = encoder.choose_centers(codes, layer.weight_zero_point)
    offsets = np.abs(codes - centers[np.newaxis, :])

    return Fig08Result(
        model_name=model.name,
        layer_name=layer.name,
        input_bit_density=bit_density(patches, 8),
        weight_code_bit_density=bit_density(codes, 8),
        offset_bit_density=bit_density(offsets, 8),
        input_nonzero_fraction=float(np.mean(patches != 0)),
        mean_offset_magnitude=float(offsets.mean()),
    )


def format_fig08(result: Fig08Result) -> str:
    """Render per-bit densities."""
    table = ExperimentResult(
        name=f"Fig. 8 -- per-bit densities ({result.model_name}, {result.layer_name})",
        headers=("bit", "input", "weight code", "center+offset offset"),
    )
    for bit in reversed(range(8)):
        table.add_row(
            bit,
            float(result.input_bit_density[bit]),
            float(result.weight_code_bit_density[bit]),
            float(result.offset_bit_density[bit]),
        )
    text = table.to_text()
    text += (
        f"\ninput non-zero fraction: {result.input_nonzero_fraction:.3f}"
        f"\nmean |offset|: {result.mean_offset_magnitude:.2f}"
    )
    return text


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig08(run_fig08()))
