"""Fig. 1 (part 2): energy breakdown of an ISAAC-based 8-bit PIM design.

The paper's motivating observation: crossbars compute 8-bit MACs for well
under 100 fJ, yet overall PIM energy is dominated by the ADCs.  This
experiment reproduces the per-component energy breakdown of the ISAAC
baseline on a full-scale DNN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.isaac import IsaacBaseline
from repro.experiments.runner import ExperimentResult
from repro.hw.energy import COMPONENT_KEYS
from repro.nn.zoo import model_shapes

__all__ = ["Fig01Result", "run_fig01", "format_fig01"]


@dataclass
class Fig01Result:
    """ISAAC energy breakdown for one DNN."""

    model_name: str
    total_uj: float
    fractions: dict[str, float]
    crossbar_energy_per_mac_fj: float

    @property
    def adc_fraction(self) -> float:
        """Fraction of energy spent in ADCs (the paper's headline ~58%)."""
        return self.fractions["adc"]


def run_fig01(model_name: str = "resnet18") -> Fig01Result:
    """Compute the ISAAC per-component energy breakdown for one DNN."""
    baseline = IsaacBaseline()
    shapes = model_shapes(model_name)
    breakdown = baseline.energy(shapes)
    macs = shapes.total_macs
    crossbar_fj_per_mac = breakdown.components_pj["crossbar"] / macs * 1e3
    return Fig01Result(
        model_name=model_name,
        total_uj=breakdown.total_uj,
        fractions={key: breakdown.fraction(key) for key in COMPONENT_KEYS},
        crossbar_energy_per_mac_fj=crossbar_fj_per_mac,
    )


def format_fig01(result: Fig01Result) -> str:
    """Render the breakdown as a table."""
    table = ExperimentResult(
        name=f"Fig. 1 -- ISAAC energy breakdown ({result.model_name})",
        headers=("component", "fraction"),
    )
    for key, fraction in sorted(result.fractions.items(), key=lambda kv: -kv[1]):
        if fraction > 0:
            table.add_row(key, fraction)
    text = table.to_text()
    text += (
        f"\ntotal energy: {result.total_uj:.1f} uJ / inference"
        f"\ncrossbar energy per 8b MAC: {result.crossbar_energy_per_mac_fj:.1f} fJ"
    )
    return text


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig01(run_fig01()))
