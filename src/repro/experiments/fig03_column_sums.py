"""Fig. 3: column-sum distributions under RAELLA's successive strategies.

Starting from a 512-row crossbar with 4-bit input and weight slices, the
paper applies Center+Offset, Adaptive Weight Slicing and Dynamic Input Slicing
in turn and shows how each tightens the column-sum distribution until a signed
7-bit ADC range ([-64, 64)) captures almost every sum.  This experiment
reproduces the distributions and the "fraction of column sums representable in
<= 7 bits" numbers (59.2% -> 82.1% -> 98.0% / 99.9% in the paper) on the
runnable shape-faithful models, plus the final accepted fidelity-loss rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arithmetic.slicing import Slicing
from repro.core.adaptive_slicing import AdaptiveSlicingConfig, choose_weight_slicing
from repro.core.center_offset import WeightEncoding
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig
from repro.experiments.runner import ExperimentResult
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_images
from repro.nn.zoo import resnet18_like
from repro.runtime import VectorizedLayerExecutor

__all__ = ["ColumnSumSetupResult", "Fig03Result", "run_fig03", "format_fig03"]

#: Signed 7-bit ADC range RAELLA captures without fidelity loss.
ADC_RANGE = (-64, 63)


@dataclass
class ColumnSumSetupResult:
    """Column-sum statistics for one strategy setup."""

    setup: str
    column_sums: dict[str, np.ndarray]
    fidelity_loss_rate: float
    speculation_failure_rate: float

    def within_adc_fraction(self, kind: str) -> float:
        """Fraction of column sums of one phase kind inside the 7b ADC range."""
        sums = self.column_sums.get(kind)
        if sums is None or sums.size == 0:
            return float("nan")
        lo, hi = ADC_RANGE
        return float(np.mean((sums >= lo) & (sums <= hi)))

    @property
    def primary_kind(self) -> str:
        """The phase kind whose distribution the figure plots for this setup."""
        if "speculative" in self.column_sums:
            return "speculative"
        return "serial"

    def resolution_bits(self, kind: str | None = None) -> np.ndarray:
        """Signed bit-width needed for each collected column sum."""
        sums = self.column_sums[kind or self.primary_kind]
        magnitudes = np.abs(sums).astype(np.int64)
        return np.ceil(np.log2(np.maximum(magnitudes, 1) + 1)).astype(int) + 1


@dataclass
class Fig03Result:
    """Column-sum statistics for the full strategy progression."""

    model_name: str
    layer_name: str
    setups: list[ColumnSumSetupResult] = field(default_factory=list)


def _collect(layer, patches, config, max_samples: int) -> ColumnSumSetupResult:
    # The vectorized runtime executor is bit-identical to the per-phase path
    # and shares weight encodings across the four setups.
    executor = VectorizedLayerExecutor(
        layer,
        config.with_changes(
            collect_column_sums=True, max_column_sum_samples=max_samples
        ),
    )
    executor.matmul(patches)
    sums = {
        kind: executor.stats.column_sum_array(kind)
        for kind in executor.stats.column_sums
    }
    return ColumnSumSetupResult(
        setup="",
        column_sums=sums,
        fidelity_loss_rate=executor.stats.fidelity_loss_rate,
        speculation_failure_rate=executor.stats.speculation_failure_rate,
    )


def run_fig03(
    model: QuantizedModel | None = None,
    layer_index: int = 3,
    n_inputs: int = 2,
    max_samples: int = 200_000,
    seed: int = 0,
) -> Fig03Result:
    """Measure column-sum distributions for the four strategy setups.

    The paper uses ResNet18 on ImageNet; here the runnable ResNet18-flavoured
    model with synthetic inputs stands in (see DESIGN.md).
    """
    model = model or resnet18_like(seed=seed)
    rng = np.random.default_rng(seed)
    inputs = synthetic_images(n_inputs, model.input_shape, rng)
    captured = model.capture_layer_inputs(inputs)
    layer = model.matmul_layers()[layer_index]
    patches = captured[layer.name].patch_codes

    four_bit = Slicing((4, 4))
    result = Fig03Result(model_name=model.name, layer_name=layer.name)

    # 1. Baseline: unsigned weights, 4b input/weight slices, 512 rows.
    baseline_cfg = PimLayerConfig(
        adc_bits=7,
        adc_signed=False,
        weight_encoding=WeightEncoding.UNSIGNED,
        weight_slicing=four_bit,
        speculation=SpeculationMode.BIT_SERIAL,
        serial_input_slicing=four_bit,
    )
    setup = _collect(layer, patches, baseline_cfg, max_samples)
    setup.setup = "baseline (unsigned, 4b/4b slices)"
    result.setups.append(setup)

    # 2. + Center+Offset.
    co_cfg = baseline_cfg.with_changes(
        adc_signed=True, weight_encoding=WeightEncoding.CENTER_OFFSET
    )
    setup = _collect(layer, patches, co_cfg, max_samples)
    setup.setup = "+ Center+Offset"
    result.setups.append(setup)

    # 3. + Adaptive Weight Slicing.
    choice = choose_weight_slicing(
        layer,
        patches,
        config=AdaptiveSlicingConfig(max_test_patches=256),
        pim_config=co_cfg,
    )
    aws_cfg = co_cfg.with_changes(weight_slicing=choice.slicing)
    setup = _collect(layer, patches, aws_cfg, max_samples)
    setup.setup = f"+ Adaptive Weight Slicing ({choice.slicing})"
    result.setups.append(setup)

    # 4. + Dynamic Input Slicing (speculation + recovery).
    raella_cfg = aws_cfg.with_changes(
        speculation=SpeculationMode.SPECULATIVE, serial_input_slicing=None
    )
    setup = _collect(layer, patches, raella_cfg, max_samples)
    setup.setup = "+ Dynamic Input Slicing (RAELLA)"
    result.setups.append(setup)
    return result


def format_fig03(result: Fig03Result) -> str:
    """Render the Fig. 3 saturation/fidelity table."""
    table = ExperimentResult(
        name=f"Fig. 3 -- column sums ({result.model_name}, {result.layer_name})",
        headers=(
            "setup",
            "phase",
            "<=7b fraction",
            "fidelity loss",
            "spec failures",
        ),
    )
    for setup in result.setups:
        for kind in sorted(setup.column_sums):
            table.add_row(
                setup.setup,
                kind,
                setup.within_adc_fraction(kind),
                setup.fidelity_loss_rate,
                setup.speculation_failure_rate,
            )
    return table.to_text()


if __name__ == "__main__":  # pragma: no cover - manual entry point
    print(format_fig03(run_fig03()))
