"""Quickstart: compile a DNN for RAELLA and run it on the accelerator model.

This example walks the full public API path:

1. build a runnable quantized model (a ResNet18-flavoured synthetic CNN),
2. compile it -- Adaptive Weight Slicing picks each layer's weight slicing and
   Center+Offset chooses per-filter centers,
3. execute it through the functional crossbar simulator with speculation and
   recovery, and
4. report accuracy fidelity against exact 8-bit execution plus the measured
   hardware costs (ADC converts/MAC, speculation failures, energy).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import RaellaAccelerator
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.nn.synthetic import synthetic_images
from repro.nn.zoo import resnet18_like
from repro.runtime import VectorizedLayerExecutor


def main() -> None:
    rng = np.random.default_rng(0)

    print("== 1. Build a quantized model ==")
    model = resnet18_like(seed=0)
    print(f"model: {model.name}, {len(model.matmul_layers())} crossbar-mapped layers, "
          f"{model.total_macs():,} MACs/sample")

    print("\n== 2. Compile for RAELLA (one-time preprocessing) ==")
    config = RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(error_budget=0.09, max_test_patches=256),
        n_test_inputs=2,
    )
    program = RaellaCompiler(
        config, executor_factory=VectorizedLayerExecutor
    ).compile(model, seed=0)
    for name, widths in program.slicing_summary().items():
        print(f"  {name:28s} -> {'-'.join(str(w) + 'b' for w in widths)}")

    print("\n== 3. Run inference through the analog crossbar simulator ==")
    inputs = synthetic_images(2, model.input_shape, rng)
    accelerator = RaellaAccelerator()
    report = accelerator.run(program, inputs)
    print(report.summary())

    print("\n== 4. Fidelity against exact 8-bit execution ==")
    exact = model.forward_quantized(inputs)
    error = np.abs(report.outputs - exact)
    print(f"  mean |output error|: {error.mean():.4f} "
          f"(output scale ~{np.abs(exact).max():.2f})")
    print(f"  ADC converts/MAC:    {report.converts_per_mac:.4f}")
    print(f"  speculation failures:{report.speculation_failure_rate:8.2%}")
    print(f"  fidelity loss rate:  {report.fidelity_loss_rate:.2e}")


if __name__ == "__main__":
    main()
