"""Batched inference with the vectorized runtime engine.

The :mod:`repro.runtime` subsystem rebuilds the simulator's hot path as a
batched execution engine: all 11 Dynamic Input Slicing phases of a crossbar
chunk are extracted in one tensor and pushed through a single fused GEMM, and
weight encodings are cached so repeated experiments never re-run center
optimisation.  This example shows the three pieces working together:

1. compile a model once into a :class:`~repro.runtime.NetworkEngine`,
2. stream a large batch through it with micro-batching,
3. rebuild the engine (as a repeated experiment would) and watch the
   encoded-weight cache make construction essentially free,

and verifies the batched results are bit-identical to the per-phase
reference executor.

Run with:  python examples/batched_inference.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.nn.synthetic import synthetic_images
from repro.nn.zoo import resnet18_like
from repro.runtime import GLOBAL_WEIGHT_CACHE, NetworkEngine


def main() -> None:
    rng = np.random.default_rng(0)
    model = resnet18_like(seed=0)
    config = RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(max_test_patches=256), n_test_inputs=2
    )

    print("== 1. Compile once into a vectorized NetworkEngine ==")
    start = time.perf_counter()
    engine = NetworkEngine.compile(model, config=config, seed=0, micro_batch=8)
    first_build = time.perf_counter() - start
    print(f"  first compile: {first_build:.2f}s "
          f"(center optimisation + weight encoding, now cached)")

    print("\n== 2. Stream a batch through the engine ==")
    inputs = synthetic_images(16, model.input_shape, rng)
    start = time.perf_counter()
    outputs = engine.run(inputs)  # micro-batched: 8 samples per pass
    run_time = time.perf_counter() - start
    stats = engine.network_statistics()
    print(f"  {inputs.shape[0]} samples in {run_time:.2f}s "
          f"({inputs.shape[0] / run_time:.1f} samples/s)")
    print(f"  ADC converts/MAC:     {stats.converts_per_mac:.4f}")
    print(f"  speculation failures: {stats.speculation_failure_rate:.2%}")

    print("\n== 3. Rebuild the engine: encoded weights come from the cache ==")
    start = time.perf_counter()
    NetworkEngine.compile(model, config=config, seed=0)
    rebuild = time.perf_counter() - start
    print(f"  rebuild: {rebuild:.2f}s (was {first_build:.2f}s); "
          f"cache: {GLOBAL_WEIGHT_CACHE.hits} hits / "
          f"{GLOBAL_WEIGHT_CACHE.misses} misses")

    print("\n== 4. Verify against the per-phase reference executor ==")
    program = RaellaCompiler(config).compile(model, seed=0)
    reference = program.run(inputs)
    identical = np.array_equal(outputs, reference)
    print(f"  batched outputs bit-identical to per-phase path: {identical}")
    if not identical:
        raise SystemExit("vectorized engine diverged from the reference")


if __name__ == "__main__":
    main()
