"""Multi-tenant batched serving with :mod:`repro.serve`.

The serving layer turns the vectorized :class:`~repro.runtime.NetworkEngine`
into an inference server: a :class:`~repro.serve.ModelRegistry` hosts several
calibrated models behind one shared executor pool, and an
:class:`~repro.serve.InferenceServer` coalesces concurrent requests per model
into batched engine calls (dynamic micro-batching), splitting the outputs
back per request.  This example shows:

1. hosting two tenants side by side (twin tenants share encoded crossbars),
2. concurrent clients hammering the server while the scheduler coalesces,
3. the throughput win over naive one-request-at-a-time serving,
4. pipelined layer-sharded execution (:class:`~repro.serve.ShardedEngine`),
5. hardware-grounded telemetry (:mod:`repro.telemetry`): per-request
   energy/latency accounting from the paper's cost models, SLO-tagged
   requests, and the per-tenant aggregate / Prometheus exports,
6. process-based engine workers (``backend="process"``): each model in its
   own process behind a zero-copy shared-memory request path, sidestepping
   the GIL so CPU-bound tenants execute truly in parallel,
7. replicated self-healing pools (``replicas=2``): one hot model on two
   worker processes with least-loaded dispatch, surviving a SIGKILL of a
   replica without losing a single request,
8. end-to-end request tracing (:mod:`repro.telemetry.tracing`): per-request
   span trees in a flight recorder (dump in Perfetto), plus the collector's
   latency histograms answering p50/p99 queries,
9. energy-aware heterogeneous fleets (:mod:`repro.serve.fleet`): one logical
   model hosted as a fast (ISAAC) and a low-power (RAELLA) variant, with the
   router placing slack-rich batches on the cheap variant -- per-request
   modeled energy drops ~55% whenever the deadline allows,

and verifies every served result is bit-identical to a direct engine call.

Run with:  python examples/serving.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.hw import RAELLA_ARCH
from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry, ShardedEngine
from repro.telemetry import TelemetryCollector, Tracer


def make_model(name: str, seed: int) -> QuantizedModel:
    rng = np.random.default_rng(seed)
    fc1 = Linear("fc1", synthetic_linear_weights(48, 96, rng, std=0.15), fuse_relu=True)
    fc2 = Linear("fc2", synthetic_linear_weights(10, 48, rng, std=0.15))
    model = QuantizedModel(name, [fc1, fc2], input_shape=(96,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 96))))
    return model


def main() -> None:
    rng = np.random.default_rng(0)

    print("== 1. Host two tenants in one registry ==")
    registry = ModelRegistry()  # shared pool + weight cache, float32 fast path
    # arch= builds each tenant's CostModel (per-layer energy/latency tables
    # on the paper's RAELLA architecture) for the telemetry in section 5.
    registry.register("tenant_a", make_model("model_a", seed=1), arch=RAELLA_ARCH)
    registry.register("tenant_b", make_model("model_b", seed=2), arch=RAELLA_ARCH)
    print(f"  models: {registry.names()}, pooled executors: {len(registry.pool)}")

    print("\n== 2. Concurrent clients, dynamic micro-batching ==")
    n_clients, requests_each = 8, 12
    policy = BatchingPolicy(max_batch_size=32, max_delay_s=0.005)
    received: dict[tuple[int, int], tuple[str, np.ndarray, np.ndarray]] = {}
    lock = threading.Lock()

    def client(client_id: int, server: InferenceServer) -> None:
        local_rng = np.random.default_rng(100 + client_id)
        tenant = "tenant_a" if client_id % 2 == 0 else "tenant_b"
        for i in range(requests_each):
            sample = np.abs(local_rng.normal(0, 1, size=(1, 96)))
            result = server.infer(tenant, sample, timeout=30)
            with lock:
                received[(client_id, i)] = (tenant, sample, result)

    start = time.perf_counter()
    with InferenceServer(registry, policy) as server:
        threads = [
            threading.Thread(target=client, args=(c, server))
            for c in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.statistics()
    elapsed = time.perf_counter() - start
    total = n_clients * requests_each
    print(f"  {total} requests from {n_clients} clients in {elapsed:.2f}s "
          f"({total / elapsed:.0f} req/s)")
    print(f"  coalesced into {stats.batches_executed} batches "
          f"(mean {stats.mean_batch_size:.1f} samples, "
          f"max {stats.max_batch_size}); "
          f"mean queue wait {1e3 * stats.mean_queue_wait_s:.1f}ms")

    print("\n== 3. Verify: every served result matches a direct engine call ==")
    for tenant, sample, result in received.values():
        direct = registry.engine(tenant).run(sample)
        if not np.array_equal(direct, result):
            raise SystemExit("served result diverged from direct engine call")
    print(f"  all {total} results bit-identical to NetworkEngine.run")

    print("\n== 4. Layer-pipeline sharding (bit-identical) ==")
    model = registry.model("tenant_a")
    sharded = ShardedEngine.build(
        model, micro_batch=8, pool=registry.pool, float32=True
    )
    inputs = np.abs(rng.normal(0, 1, size=(64, 96)))
    sequential = registry.engine("tenant_a").run(inputs)
    pipelined = sharded.run(inputs)
    print(f"  {len(sharded.stage_groups())} pipeline stages, outputs identical: "
          f"{np.array_equal(sequential, pipelined)}")
    if not np.array_equal(sequential, pipelined):
        raise SystemExit("sharded engine diverged from the sequential engine")

    print("\n== 5. Hardware-grounded telemetry and SLO-tagged requests ==")
    cost = registry.cost_model("tenant_a")
    print(f"  tenant_a cost tables: {cost.energy_per_sample_uj:.4f} uJ/sample, "
          f"{cost.single_sample_latency_us:.2f} us/sample modeled")
    telemetry = TelemetryCollector()
    with InferenceServer(registry, policy, telemetry=telemetry) as server:
        futures = []
        for i in range(6):
            tenant = "tenant_a" if i % 2 == 0 else "tenant_b"
            # Even requests are interactive (high priority, tight deadline),
            # odd ones are bulk (default priority, loose deadline).
            futures.append(
                server.submit(
                    tenant,
                    np.abs(rng.normal(0, 1, size=(1 + i % 3, 96))),
                    priority=1 if i % 2 == 0 else 0,
                    deadline_s=0.05 if i % 2 == 0 else 5.0,
                )
            )
        for future in futures:
            future.result(timeout=30)

    print("  per-request accounting (from the telemetry collector):")
    print(f"    {'id':>3} {'tenant':>9} {'n':>2} {'prio':>4} {'wait ms':>8} "
          f"{'engine ms':>9} {'energy uJ':>9} {'model us':>9} {'deadline':>8}")
    for trace in telemetry.traces():
        print(f"    {trace.request_id:>3} {trace.model_name:>9} "
              f"{trace.n_samples:>2} {trace.priority:>4} "
              f"{1e3 * trace.queue_wait_s:>8.2f} "
              f"{1e3 * trace.engine_share_s:>9.3f} "
              f"{trace.modeled_energy_pj / 1e6:>9.4f} "
              f"{trace.modeled_latency_us:>9.2f} "
              f"{'MISS' if trace.deadline_missed else 'met':>8}")
    for name, aggregate in sorted(telemetry.aggregates().items()):
        print(f"  {name}: {aggregate.requests} requests, "
              f"{aggregate.samples} samples, "
              f"{aggregate.modeled_energy_uj:.4f} uJ modeled, "
              f"{aggregate.deadline_misses}/{aggregate.deadline_requests} "
              f"deadline misses")
    prometheus = telemetry.to_prometheus().splitlines()
    print("  Prometheus export (first 6 lines):")
    for line in prometheus[:6]:
        print(f"    {line}")

    print("\n== 6. Process-based engine workers (zero-copy transport) ==")
    # backend="process" hosts each tenant in its own worker process: the
    # worker rebuilds the engine from a pickled spec and serves run() calls
    # over shared-memory blocks, so two CPU-bound tenants no longer share
    # the GIL.  Outputs stay bit-identical to the in-process engines.
    proc_registry = ModelRegistry()
    model_a, model_b = make_model("model_a", seed=1), make_model("model_b", seed=2)
    proc_registry.register("tenant_a", model_a, backend="process")
    proc_registry.register("tenant_b", model_b, backend="process")
    inputs = np.abs(rng.normal(0, 1, size=(8, 96)))
    with InferenceServer(proc_registry, policy, max_workers=2) as server:
        outputs = {
            name: server.infer(name, inputs, timeout=30)
            for name in ("tenant_a", "tenant_b")
        }
    for name, served in outputs.items():
        direct = registry.engine(name).run(inputs)
        pool = proc_registry.engine(name)
        print(f"  {name}: worker pids {pool.replica_pids()}, "
              f"bit-identical={np.array_equal(served, direct)}")
    proc_registry.close()  # clean worker shutdown (also wired to unregister)

    print("\n== 7. Replicated self-healing worker pools ==")
    # replicas=2 hosts one model on two worker processes behind a single
    # engine facade: concurrent batches dispatch to the least-loaded healthy
    # replica, and a crashed replica's in-flight batch requeues onto its
    # sibling while the pool restarts the dead worker in the background.
    import os
    import signal

    pool_registry = ModelRegistry()
    pool_registry.register("tenant_a", model_a, backend="process", replicas=2)
    pool = pool_registry.engine("tenant_a")
    print(f"  pool: {pool.replicas} replicas, dispatch width "
          f"{pool.dispatch_width}, pids {pool.replica_pids()}")
    direct = registry.engine("tenant_a").run(inputs)
    with InferenceServer(pool_registry, policy, max_workers=2) as server:
        futures = [server.submit("tenant_a", inputs) for _ in range(8)]
        os.kill(pool.replica_pids()[0], signal.SIGKILL)  # murder a replica
        results = [future.result(timeout=60) for future in futures]
    survived = all(np.array_equal(result, direct) for result in results)
    deadline = time.perf_counter() + 30
    while pool.pool_health()["restarts"] < 1 or pool.healthy_replicas < 2:
        time.sleep(0.05)
        if time.perf_counter() > deadline:
            raise SystemExit("replica pool failed to self-heal")
    print(f"  killed one replica mid-stream: {len(results)}/8 requests "
          f"completed, bit-identical={survived}")
    print(f"  pool healed: {pool.pool_health()}")
    if not survived:
        raise SystemExit("replicated pool outputs diverged after the kill")
    pool_registry.close()  # drains and shuts down every replica

    print("\n== 8. Request tracing, latency quantiles, flight recorder ==")
    # A Tracer hands every sampled request a span tree -- admission, queue
    # wait, dispatch, engine execution, completion -- and finished traces
    # land in a bounded flight recorder ring dumpable as Chrome trace JSON.
    # The telemetry collector's log-bucketed histograms answer quantile
    # queries over the same run.
    tracer = Tracer(sample_rate=1.0)
    traced = TelemetryCollector()
    server = InferenceServer(registry, policy, telemetry=traced, tracer=tracer)
    with server:
        decisions = [
            server.submit("tenant_a", np.abs(rng.normal(0, 1, size=(2, 96))))
            for _ in range(24)
        ]
        for decision in decisions:
            decision.result(timeout=30)
    last = decisions[-1]
    names = [e["name"] for e in tracer.recorder.trace_events(last.trace_id)]
    print(f"  trace {last.trace_id}: spans {names}")
    for metric in ("latency", "queue_wait", "engine"):
        p50 = traced.quantile("tenant_a", 0.5, metric)
        p99 = traced.quantile("tenant_a", 0.99, metric)
        print(f"  tenant_a {metric:>10}: p50 {1e3 * p50:7.3f}ms, "
              f"p99 {1e3 * p99:7.3f}ms")
    dump = tracer.recorder.to_chrome_trace()
    print(f"  flight recorder: {len(tracer.recorder)} events, "
          f"{len(dump)} bytes of Chrome trace JSON (load in Perfetto)")

    print("\n== 9. Energy-aware heterogeneous fleet routing ==")
    # One logical model, two architecture variants: ISAAC is ~1.4x faster
    # per sample (modeled), RAELLA ~55% cheaper.  register_fleet groups
    # them under one servable name and the router places each batch on the
    # cheapest variant whose predicted latency fits the deadline slack --
    # so the same request costs less energy whenever its deadline allows.
    from repro.hw import ISAAC_ARCH
    from repro.serve import MinimizeEnergy

    fleet_registry = ModelRegistry()
    fleet_registry.register("tenant_a-fast", model_a, arch=ISAAC_ARCH)
    fleet_registry.register("tenant_a-lowpower", model_a, arch=RAELLA_ARCH)
    fleet_registry.register_fleet("tenant_a", ["tenant_a-fast", "tenant_a-lowpower"])
    fleet_telemetry = TelemetryCollector()
    # One request per batch (each carries 2 samples) so every deadline gets
    # its own routing decision instead of coalescing with its neighbours.
    fleet_policy = BatchingPolicy(max_batch_size=2, max_delay_s=0.0)
    with InferenceServer(
        fleet_registry,
        fleet_policy,
        telemetry=fleet_telemetry,
        routing=MinimizeEnergy(),
    ) as server:
        futures = []
        for i in range(8):
            # Even requests are urgent (deadline already blown at formation
            # time), odd ones have generous slack.  Before calibration the
            # router trusts the modeled tables, so the first urgent batch
            # rides the fast variant; once the collector has observed both
            # variants it learns they execute at the same wall speed in
            # this CPU reproduction and routes even urgent work to the
            # low-power variant -- energy savings at zero latency cost.
            futures.append(
                server.submit(
                    "tenant_a",
                    np.abs(rng.normal(0, 1, size=(2, 96))),
                    deadline_s=1e-6 if i % 2 == 0 else 30.0,
                )
            )
        for future in futures:
            future.result(timeout=30)
    print("  per-request energy under the router (slack -> cheap variant):")
    print(f"    {'id':>3} {'variant':>18} {'deadline':>9} {'energy uJ':>9}")
    for trace in fleet_telemetry.traces():
        slack = "1us" if trace.deadline_missed else "30s"
        print(f"    {trace.request_id:>3} {trace.model_name:>18} {slack:>9} "
              f"{trace.modeled_energy_pj / 1e6:>9.4f}")
    aggregate = fleet_telemetry.fleet_aggregate("tenant_a")
    print(f"  fleet placement: {aggregate.executed_batches_by_variant} "
          f"({aggregate.reroutes} reroutes)")
    print(f"  realised modeled-energy savings vs always-fastest: "
          f"{aggregate.realised_saved_fraction:.0%}")
    served = server.statistics().batches_per_model
    if "tenant_a-lowpower" not in served:
        raise SystemExit("no batch ever reached the low-power variant")
    fleet_registry.close()


if __name__ == "__main__":
    main()
