"""Design-space exploration: evaluating a custom PIM architecture.

RAELLA's components are parameterised, so the same machinery can evaluate
"what if" designs.  This example defines a hypothetical mid-size accelerator
(256x256 crossbars, 6-bit ADC, 2-slice weights, no speculation), checks its
functional fidelity with the layer executor, and compares its energy and
throughput against RAELLA and ISAAC with the cost model.

Run with:  python examples/custom_architecture.py
"""

from __future__ import annotations

import numpy as np

from repro.arithmetic.slicing import Slicing
from repro.core.adaptive_slicing import layer_output_error
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig
from repro.hw.architecture import (
    ISAAC_ARCH,
    RAELLA_ARCH,
    ArchitectureSpec,
    OperandStatistics,
)
from repro.hw.energy import EnergyModel
from repro.hw.throughput import ThroughputModel
from repro.nn.synthetic import synthetic_images
from repro.nn.zoo import model_shapes, resnet18_like

CUSTOM_ARCH = ArchitectureSpec(
    name="custom_256x256_6b",
    crossbar_rows=256,
    crossbar_cols=256,
    adc_bits=6,
    adcs_per_crossbar=2,
    typical_weight_slices=4,
    last_layer_weight_slices=8,
    converting_cycles_per_presentation=8.0,
    cycles_per_presentation=8,
    input_streams=1,
    speculative=False,
    n_tiles=900,
    operand_stats=OperandStatistics.for_bit_serial_offsets(),
)

CUSTOM_PIM = PimLayerConfig(
    crossbar_rows=256,
    crossbar_cols=256,
    adc_bits=6,
    weight_slicing=Slicing((2, 2, 2, 2)),
    speculation=SpeculationMode.BIT_SERIAL,
)


def main() -> None:
    print("== Functional fidelity of the custom design ==")
    model = resnet18_like(seed=0)
    inputs = synthetic_images(1, model.input_shape, np.random.default_rng(0))
    captured = model.capture_layer_inputs(inputs)
    for layer in model.matmul_layers()[:4]:
        patches = captured[layer.name].patch_codes[:256]
        error = layer_output_error(layer, patches, CUSTOM_PIM)
        budget = "within" if error < 0.09 else "OVER"
        print(f"  {layer.name:28s} mean 8b output error {error:.4f} ({budget} budget)")

    print("\n== Cost-model comparison on full-scale ResNet18 ==")
    shapes = model_shapes("resnet18")
    print(f"{'architecture':>20s} {'energy (uJ)':>12s} {'samples/s':>12s}")
    for arch in (ISAAC_ARCH, CUSTOM_ARCH, RAELLA_ARCH):
        energy = EnergyModel(arch).model_energy(shapes).total_uj
        throughput = ThroughputModel(arch).evaluate(shapes).throughput_samples_per_s
        print(f"{arch.name:>20s} {energy:12.1f} {throughput:12,.0f}")

    print("\nThe custom design saves ADC energy via its 6-bit converter but "
          "pays in fidelity:\nwithout Center+Offset-style distribution shaping "
          "its error budget is blown on wide layers,\nwhich is exactly the "
          "gap RAELLA's encoding and slicing strategies close.")


if __name__ == "__main__":
    main()
