"""Transformer feed-forward example: RAELLA with signed activations.

BERT-Large's feed-forward layers have signed inputs (post-GELU activations),
which RAELLA handles by processing positive and negative input magnitudes in
separate crossbar cycles (Section 5.1).  This example runs a scaled-down
Transformer FFN stack through the functional simulator and evaluates the
full-scale BERT-Large FFN shapes through the cost model.

Run with:  python examples/bert_feedforward.py
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import RaellaAccelerator
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.hw.architecture import ISAAC_ARCH, RAELLA_ARCH
from repro.nn.synthetic import synthetic_signed_activations
from repro.nn.zoo import bert_large_ffn_like, model_shapes
from repro.runtime import VectorizedLayerExecutor


def main() -> None:
    print("== Functional simulation of a scaled-down Transformer FFN ==")
    model = bert_large_ffn_like(seed=0)
    config = RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(max_test_patches=128), n_test_inputs=8
    )
    program = RaellaCompiler(
        config, executor_factory=VectorizedLayerExecutor
    ).compile(model, seed=0)

    rng = np.random.default_rng(1)
    tokens = synthetic_signed_activations((16, *model.input_shape), rng)
    accelerator = RaellaAccelerator()
    report = accelerator.run(program, tokens)
    exact = model.forward_quantized(tokens)
    error = np.abs(report.outputs - exact).mean()
    print(report.summary())
    print(f"  mean |output error| vs exact 8-bit: {error:.4f}")
    print("  (signed inputs are processed as two positive/negative passes,")
    print("   doubling cycles but preserving exactness of the digital path)")

    print("\n== Full-scale BERT-Large FFN through the cost model ==")
    shapes = model_shapes("bert_large_ffn")
    raella = RaellaAccelerator(arch=RAELLA_ARCH)
    isaac = RaellaAccelerator(arch=ISAAC_ARCH)
    raella_energy, raella_tp = raella.evaluate_shapes(shapes)
    isaac_energy, isaac_tp = isaac.evaluate_shapes(shapes)
    print(f"  MACs per sequence:        {shapes.total_macs / 1e9:.1f} G")
    print(f"  ISAAC  energy/sequence:   {isaac_energy.total_uj / 1e3:.2f} mJ")
    print(f"  RAELLA energy/sequence:   {raella_energy.total_uj / 1e3:.2f} mJ "
          f"({isaac_energy.total_uj / raella_energy.total_uj:.1f}x better)")
    print(f"  throughput gain:          "
          f"{raella_tp.throughput_samples_per_s / isaac_tp.throughput_samples_per_s:.1f}x")


if __name__ == "__main__":
    main()
