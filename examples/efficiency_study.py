"""Efficiency study: RAELLA vs ISAAC on the paper's seven DNNs (Fig. 12).

Uses the full-scale layer-shape tables and the analytical hardware cost model
to compare energy per inference and throughput, normalised to the ISAAC
baseline -- the headline result of the paper.

Run with:  python examples/efficiency_study.py
"""

from __future__ import annotations

from repro.experiments.fig01_breakdown import format_fig01, run_fig01
from repro.experiments.fig12_efficiency import format_fig12, run_fig12
from repro.experiments.fig13_retraining import format_fig13, run_fig13
from repro.experiments.table2_titanium import format_table2, run_table2


def main() -> None:
    print("Why PIM accelerators are ADC-limited (Fig. 1):\n")
    print(format_fig01(run_fig01("resnet18")))

    print("\n\nThe Titanium Law decomposition (Table 2):\n")
    print(format_table2(run_table2("resnet18")))

    print("\n\nRAELLA vs ISAAC across the seven DNNs (Fig. 12):\n")
    result = run_fig12()
    print(format_fig12(result))
    print(
        f"\npaper reference: efficiency geomean 3.9x (range 2.9-4.9), "
        f"throughput geomean 2.0x (range 0.7-3.3)"
    )

    print("\n\nComparison with retraining architectures (Fig. 13):\n")
    print(format_fig13(run_fig13()))


if __name__ == "__main__":
    main()
