"""An HTTP/JSON inference gateway over the asyncio front door.

This is the deployment shape the ROADMAP's "heavy traffic" target implies:
a load balancer speaks HTTP to this process, this process speaks coroutines
to the serving stack.  The demo wires the full production path together --
all standard library plus numpy, no web framework:

1. two tenants in a :class:`~repro.serve.ModelRegistry` (one on a
   process-backed replica pool), with telemetry and admission control,
2. an :class:`~repro.serve.AsyncInferenceServer` with ``max_inflight``
   end-to-end backpressure (in-flight requests cost coroutines, not
   threads),
3. an :class:`~repro.serve.AsyncGateway` exposing ``POST /v1/infer``,
   Prometheus ``GET /metrics`` and ``GET /healthz``,
4. a burst of HTTP clients (plain :mod:`http.client` in threads, as a load
   balancer would look to the gateway), including one request sized to be
   shed -- the client sees HTTP 429 with the typed admission decision,
5. a ``/metrics`` scrape showing the admission and per-tenant counters.

Run with:  python examples/gateway.py
"""

from __future__ import annotations

import asyncio
import http.client
import json

import numpy as np

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AsyncGateway,
    AsyncInferenceServer,
    BatchingPolicy,
    ModelRegistry,
)
from repro.telemetry import TelemetryCollector


def make_model(name: str, seed: int) -> QuantizedModel:
    rng = np.random.default_rng(seed)
    fc1 = Linear("fc1", synthetic_linear_weights(48, 96, rng, std=0.15), fuse_relu=True)
    fc2 = Linear("fc2", synthetic_linear_weights(10, 48, rng, std=0.15))
    model = QuantizedModel(name, [fc1, fc2], input_shape=(96,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 96))))
    return model


def http_json(
    host: str, port: int, method: str, path: str, payload: dict | None = None
) -> tuple[int, dict | str]:
    """One blocking HTTP exchange (runs in a thread from the async demo)."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body, headers)
    response = conn.getresponse()
    raw = response.read().decode()
    content_type = response.getheader("Content-Type", "")
    if content_type.startswith("application/json"):
        return response.status, json.loads(raw)
    return response.status, raw


async def main() -> None:
    rng = np.random.default_rng(0)

    print("== 1. Registry: two tenants, one on a 2-replica process pool ==")
    registry = ModelRegistry()
    registry.register("tenant_a", make_model("model_a", seed=1))
    registry.register(
        "tenant_b", make_model("model_b", seed=2), backend="process", replicas=2
    )
    telemetry = TelemetryCollector()
    admission = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=64))
    policy = BatchingPolicy(max_batch_size=32, max_delay_s=0.002)

    async with AsyncInferenceServer(
        registry, policy, telemetry=telemetry, admission=admission, max_inflight=4096
    ) as server:
        async with AsyncGateway(server) as gateway:
            host, port = gateway.address
            print(f"  gateway listening on http://{host}:{port}")

            print("\n== 2. A burst of HTTP clients ==")
            samples = [
                np.abs(rng.normal(0, 1, size=(1, 96))).tolist() for _ in range(24)
            ]
            calls = [
                asyncio.to_thread(
                    http_json,
                    host,
                    port,
                    "POST",
                    "/v1/infer",
                    {
                        "model": "tenant_a" if i % 2 == 0 else "tenant_b",
                        "inputs": samples[i],
                        "priority": 1 if i % 4 == 0 else 0,
                        "deadline_s": 0.5,
                    },
                )
                for i in range(24)
            ]
            replies = await asyncio.gather(*calls)
            ok = sum(1 for status, _ in replies if status == 200)
            print(f"  {ok}/24 requests served over HTTP")
            status, body = replies[1]
            outputs = np.asarray(body["outputs"])
            direct = registry.engine("tenant_b").run(np.asarray(samples[1]))
            print(f"  bit-identical to a direct engine call: "
                  f"{np.array_equal(outputs, direct)}")

            print("\n== 3. An oversized request is shed with HTTP 429 ==")
            status, body = await asyncio.to_thread(
                http_json,
                host,
                port,
                "POST",
                "/v1/infer",
                {
                    "model": "tenant_a",
                    "inputs": np.zeros((500, 96)).tolist(),  # > per-model cap
                },
            )
            decision = body["decision"]
            print(f"  HTTP {status}: status={decision['status']!r}, "
                  f"reason={decision['reason']!r}")
            if status != 429:
                raise SystemExit("expected the oversized request to be shed")

            print("\n== 4. Health and Prometheus scrape ==")
            status, health = await asyncio.to_thread(
                http_json, host, port, "GET", "/healthz"
            )
            print(f"  /healthz -> {status}: {health}")
            status, metrics = await asyncio.to_thread(
                http_json, host, port, "GET", "/metrics"
            )
            shown = [
                line
                for line in metrics.splitlines()
                if line.startswith(("repro_requests_total", "repro_admission"))
            ]
            print(f"  /metrics -> {status}, {len(metrics.splitlines())} lines, e.g.:")
            for line in shown[:6]:
                print(f"    {line}")

    registry.close()  # drains the replica pool workers
    print("\ngateway demo complete")


if __name__ == "__main__":
    asyncio.run(main())
