"""Noise-tolerance study: accuracy under analog variation (Fig. 15).

Trains an MLP on a synthetic classification task, then evaluates it on the
functional crossbar simulator under increasing Gaussian column-sum noise for
two setups: the ISAAC baseline (dense unsigned arithmetic) and full RAELLA
(Center+Offset + noise-aware Adaptive Weight Slicing + speculation/recovery).

Run with:  python examples/noise_tolerance.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.analog.noise import GaussianColumnNoise
from repro.baselines.isaac import IsaacBaseline
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.nn.datasets import gaussian_clusters
from repro.nn.training import evaluate_accuracy, train_mlp
from repro.runtime import VectorizedLayerExecutor

NOISE_LEVELS = (0.0, 0.04, 0.08, 0.12)


def main() -> None:
    print("Training an MLP on the synthetic Gaussian-cluster task ...")
    dataset = gaussian_clusters(seed=0)
    training = train_mlp(dataset, epochs=25, seed=0)
    flat = replace(
        dataset,
        x_train=dataset.x_train.reshape(len(dataset.x_train), -1),
        x_test=dataset.x_test.reshape(len(dataset.x_test), -1),
    )
    print(f"float accuracy: {training.float_accuracy:.3f}, "
          f"exact 8-bit accuracy: {training.quantized_accuracy:.3f}\n")

    configs = {
        "isaac": RaellaCompilerConfig(
            pim=IsaacBaseline().pim_config(),
            adaptive_slicing_enabled=False,
            n_test_inputs=4,
        ),
        "raella": RaellaCompilerConfig(
            adaptive=AdaptiveSlicingConfig(max_test_patches=192), n_test_inputs=4
        ),
    }

    print(f"{'noise':>8s}  " + "  ".join(f"{name:>10s}" for name in configs))
    for level in NOISE_LEVELS:
        row = []
        for name, config in configs.items():
            noise = GaussianColumnNoise(level=level, seed=0) if level else None
            program = RaellaCompiler(
                config, noise=noise, executor_factory=VectorizedLayerExecutor
            ).compile(training.model, test_inputs=flat.x_train[:4])
            accuracy = evaluate_accuracy(
                training.model,
                flat,
                pim_matmul=program.pim_matmul,
                max_samples=200,
                micro_batch=64,
            )
            row.append(accuracy)
        print(f"{level:8.2f}  " + "  ".join(f"{acc:10.3f}" for acc in row))

    print("\nRAELLA's noise-aware slicing search picks more, narrower weight "
          "slices as noise grows, preserving accuracy without retraining.")


if __name__ == "__main__":
    main()
