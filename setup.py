"""Packaging metadata for the RAELLA reproduction.

There is no ``pyproject.toml`` on purpose: fully-offline environments without
the ``wheel``/``build`` packages must still be able to ``pip install -e .``
or ``python setup.py develop``, so everything is declared here with plain
setuptools.
"""

from pathlib import Path

from setuptools import find_packages, setup

ROOT = Path(__file__).resolve().parent


def read_version() -> str:
    namespace: dict = {}
    exec(
        (ROOT / "src" / "repro" / "_version.py").read_text(encoding="utf-8"), namespace
    )
    return namespace["__version__"]


def read_long_description() -> str:
    readme = ROOT / "README.md"
    return readme.read_text(encoding="utf-8") if readme.is_file() else ""


setup(
    name="raella-repro",
    version=read_version(),
    description=(
        "Reproduction of RAELLA (ISCA 2023): efficient, low-resolution, "
        "low-loss analog PIM -- functional simulator, cost models, "
        "vectorized runtime and multi-tenant batched inference serving"
    ),
    long_description=read_long_description(),
    long_description_content_type="text/markdown",
    author="RAELLA reproduction contributors",
    license="MIT",
    license_files=["LICENSE"],
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    include_package_data=True,
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    keywords=[
        "processing-in-memory",
        "analog computing",
        "ReRAM",
        "crossbar",
        "quantization",
        "DNN accelerator",
        "simulation",
        "RAELLA",
    ],
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Hardware",
    ],
    zip_safe=False,
)
