"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so that
fully-offline environments without the ``wheel`` package can still install the
library with ``python setup.py develop`` or ``python setup.py install``.
"""

from setuptools import setup

setup()
