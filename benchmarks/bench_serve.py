"""Throughput/latency benchmark of the multi-tenant batched serving layer.

Not a paper artifact: this tracks the serving hot path the ROADMAP targets.
The headline regression test compares the dynamic micro-batching
:class:`~repro.serve.InferenceServer` against the naive serving baseline --
one :meth:`NetworkEngine.run` call per request -- on the same single-sample
request stream and the same pooled executors, and asserts the coalesced path
sustains at least ``MIN_SERVE_SPEEDUP``x the request throughput (2x locally;
CI relaxes the bar for noisy shared runners).  Results stay bit-identical, so
the speedup is pure batching: one fused GEMM per coalesced batch instead of
one tiny GEMM (plus per-call phase extraction and scheduling overhead) per
request.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry

N_REQUESTS = 96
BATCH_POLICY = BatchingPolicy(max_batch_size=32, max_delay_s=0.005)


@pytest.fixture(scope="module")
def serving_setup():
    """A registered two-layer model plus a single-sample request stream."""
    rng = np.random.default_rng(7)
    fc1 = Linear(
        "fc1", synthetic_linear_weights(64, 128, rng, std=0.15), fuse_relu=True
    )
    fc2 = Linear("fc2", synthetic_linear_weights(10, 64, rng, std=0.15))
    model = QuantizedModel("serve_mlp", [fc1, fc2], input_shape=(128,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 128))))
    registry = ModelRegistry()
    registry.register("mlp", model)
    requests = [np.abs(rng.normal(0, 1, size=(1, 128))) for _ in range(N_REQUESTS)]
    engine = registry.engine("mlp")
    engine.run(requests[0])  # warm caches/executors out of the timed region
    return registry, requests


def run_naive(registry: ModelRegistry, requests: list[np.ndarray]) -> np.ndarray:
    """The baseline: one engine call per request, in arrival order."""
    engine = registry.engine("mlp")
    return np.concatenate([engine.run(r) for r in requests], axis=0)


def run_server(registry: ModelRegistry, requests: list[np.ndarray]) -> np.ndarray:
    """The batched path: enqueue every request, then let the scheduler drain."""
    server = InferenceServer(registry, BATCH_POLICY)
    futures = [server.submit("mlp", r) for r in requests]
    with server:  # starting after submit makes batch formation deterministic
        results = [f.result(timeout=30) for f in futures]
    return np.concatenate(results, axis=0)


def test_bench_naive_requests(benchmark, serving_setup):
    registry, requests = serving_setup
    outputs = benchmark.pedantic(
        run_naive, args=(registry, requests), rounds=1, iterations=1
    )
    assert outputs.shape == (N_REQUESTS, 10)


def test_bench_batched_server(benchmark, serving_setup):
    registry, requests = serving_setup
    outputs = benchmark.pedantic(
        run_server, args=(registry, requests), rounds=1, iterations=1
    )
    assert outputs.shape == (N_REQUESTS, 10)


def test_server_throughput_speedup(serving_setup):
    """Dynamic batching must sustain >= 2x naive request throughput.

    MIN_SERVE_SPEEDUP relaxes the threshold on noisy shared runners (CI sets
    1.3) without weakening the local 2x bar.
    """
    minimum = float(os.environ.get("MIN_SERVE_SPEEDUP", "2.0"))
    registry, requests = serving_setup

    def best_of(func, rounds=3):
        func()  # warm-up
        timings, result = [], None
        for _ in range(rounds):
            start = time.perf_counter()
            result = func()
            timings.append(time.perf_counter() - start)
        return min(timings), result

    naive_time, naive_outputs = best_of(lambda: run_naive(registry, requests))
    server_time, server_outputs = best_of(lambda: run_server(registry, requests))

    # Coalescing whole requests into one batch is bit-exact per request.
    assert np.array_equal(naive_outputs, server_outputs)
    speedup = naive_time / server_time
    assert speedup >= minimum, (
        f"batched serving only {speedup:.2f}x naive throughput "
        f"({N_REQUESTS / server_time:.0f} vs {N_REQUESTS / naive_time:.0f} req/s)"
    )
