"""Microbenchmarks of the core simulation kernels.

Not a paper artifact: these track the performance of the building blocks that
every experiment relies on (center optimisation, weight encoding, and the
crossbar executor in speculative and bit-serial modes), plus the vectorized
:mod:`repro.runtime` executor against the per-phase reference.
"""

import os
import time

import numpy as np
import pytest

from repro.arithmetic.slicing import RAELLA_DEFAULT_WEIGHT_SLICING
from repro.core.center_offset import CenterOffsetEncoder, optimal_centers
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import Linear
from repro.nn.synthetic import synthetic_linear_weights
from repro.runtime import VectorizedLayerExecutor


@pytest.fixture(scope="module")
def medium_layer():
    rng = np.random.default_rng(0)
    layer = Linear(
        "bench_fc", synthetic_linear_weights(64, 384, rng, std=0.1), fuse_relu=True
    )
    inputs = np.abs(rng.normal(0, 1, size=(64, 384)))
    layer.calibrate(inputs, layer.forward_float(inputs))
    patches = layer.input_quant.quantize(inputs)
    return layer, patches


def test_kernel_center_optimisation(benchmark, medium_layer):
    layer, _ = medium_layer
    centers = benchmark(
        optimal_centers, layer.weight_codes, RAELLA_DEFAULT_WEIGHT_SLICING
    )
    assert centers.shape == (64,)


def test_kernel_weight_encoding(benchmark, medium_layer):
    layer, _ = medium_layer
    encoder = CenterOffsetEncoder(RAELLA_DEFAULT_WEIGHT_SLICING)
    encoded = benchmark(encoder.encode, layer.weight_codes, layer.weight_zero_point)
    assert np.array_equal(encoded.reconstruct_codes(), layer.weight_codes)


def test_kernel_speculative_executor(benchmark, medium_layer):
    layer, patches = medium_layer
    executor = PimLayerExecutor(layer, PimLayerConfig())
    result = benchmark(executor.matmul, patches)
    assert result.shape == (64, 64)


def test_kernel_bit_serial_executor(benchmark, medium_layer):
    layer, patches = medium_layer
    executor = PimLayerExecutor(
        layer, PimLayerConfig(speculation=SpeculationMode.BIT_SERIAL)
    )
    result = benchmark(executor.matmul, patches)
    assert result.shape == (64, 64)


def test_kernel_speculative_executor_vectorized(benchmark, medium_layer):
    layer, patches = medium_layer
    executor = VectorizedLayerExecutor(layer, PimLayerConfig())
    result = benchmark(executor.matmul, patches)
    assert result.shape == (64, 64)


def test_kernel_bit_serial_executor_vectorized(benchmark, medium_layer):
    layer, patches = medium_layer
    executor = VectorizedLayerExecutor(
        layer, PimLayerConfig(speculation=SpeculationMode.BIT_SERIAL)
    )
    result = benchmark(executor.matmul, patches)
    assert result.shape == (64, 64)


def test_vectorized_speculative_speedup(medium_layer):
    """The batched engine must beat the per-phase RAELLA hot path >= 3x.

    Typical local measurements are 5-10x.  MIN_VECTORIZED_SPEEDUP relaxes the
    threshold on noisy shared runners (CI sets 1.5) without weakening the
    local bar.
    """
    minimum = float(os.environ.get("MIN_VECTORIZED_SPEEDUP", "3.0"))
    layer, patches = medium_layer
    config = PimLayerConfig()
    reference = PimLayerExecutor(layer, config)
    vectorized = VectorizedLayerExecutor(layer, config)

    def best_of(executor, rounds=7):
        executor.matmul(patches)  # warm-up
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            result = executor.matmul(patches)
            timings.append(time.perf_counter() - start)
        return min(timings), result

    reference_time, reference_result = best_of(reference)
    vectorized_time, vectorized_result = best_of(vectorized)
    assert np.array_equal(reference_result, vectorized_result)
    speedup = reference_time / vectorized_time
    assert speedup >= minimum, f"vectorized speedup only {speedup:.2f}x"
