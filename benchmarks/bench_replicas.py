"""Throughput benchmark of N-way replica pools vs. a single process worker.

Not a paper artifact: this tracks the ROADMAP follow-up that turned
:class:`~repro.runtime.procpool.ProcessEngine` into
:class:`~repro.runtime.ReplicaPool`.  A single worker process serialises one
model's batches end to end; hosting the same model on two replicas
(``ModelRegistry.register(..., backend="process", replicas=2)``) lets the
server dispatch two batches concurrently, one per worker core.

The headline regression test drives the same single-model request stream
through a one-replica and a two-replica pool and asserts the pool sustains
at least ``MIN_REPLICA_SPEEDUP``x the aggregate throughput (1.7x by default
-- the CI ``kernels`` job enforces the same bar) while staying bit-identical
to the in-process engine.  The comparison needs real parallelism, so it is
skipped on single-CPU hosts.

The self-healing test needs no parallel hardware and always runs: it
SIGKILLs a replica while the server is mid-stream and asserts that *every*
request still completes with bit-identical outputs (the killed batch is
requeued onto the sibling) and that the pool restarts the dead worker.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry

MODEL_NAME = "mlp_pool"
N_REQUESTS = 48
SAMPLES_PER_REQUEST = 8
BATCH_POLICY = BatchingPolicy(max_batch_size=16, max_delay_s=0.005)


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_model(name: str, seed: int) -> QuantizedModel:
    """A CPU-bound three-layer MLP (same shape as the procpool benchmark)."""
    rng = np.random.default_rng(seed)
    layers = [
        Linear(
            f"{name}_fc1",
            synthetic_linear_weights(96, 128, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(
            f"{name}_fc2",
            synthetic_linear_weights(48, 96, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(f"{name}_fc3", synthetic_linear_weights(10, 48, rng, std=0.15)),
    ]
    model = QuantizedModel(name, layers, input_shape=(128,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 128))))
    return model


def make_requests(n_requests: int = N_REQUESTS) -> list[np.ndarray]:
    rng = np.random.default_rng(7)
    return [
        np.abs(rng.normal(0, 1, size=(SAMPLES_PER_REQUEST, 128)))
        for _ in range(n_requests)
    ]


@pytest.fixture(scope="module")
def replica_setup():
    """One model hosted on 1-replica and 2-replica pools + the stream."""
    model = build_model(MODEL_NAME, seed=11)
    requests = make_requests()
    single_registry = ModelRegistry()
    dual_registry = ModelRegistry()
    single_registry.register(MODEL_NAME, model, backend="process", replicas=1)
    dual_registry.register(MODEL_NAME, model, backend="process", replicas=2)
    reference_registry = ModelRegistry()
    reference_registry.register(MODEL_NAME, model)
    # Warm workers and executors outside every timed region.
    for registry in (single_registry, dual_registry, reference_registry):
        registry.engine(MODEL_NAME).run(requests[0])
    yield single_registry, dual_registry, reference_registry, requests
    single_registry.close()
    dual_registry.close()


def run_stream(registry: ModelRegistry, requests: list[np.ndarray]) -> np.ndarray:
    """Drain the request stream -> stacked outputs in request order."""
    server = InferenceServer(registry, BATCH_POLICY, max_workers=2)
    futures = [server.submit(MODEL_NAME, request) for request in requests]
    with server:  # starting after submit makes batch formation deterministic
        return np.concatenate(
            [future.result(timeout=120) for future in futures], axis=0
        )


def best_of(func, rounds: int = 3):
    """Best wall time over a few rounds (plus the last result)."""
    func()  # warm-up
    timings, result = [], None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def test_bench_single_replica(benchmark, replica_setup):
    single_registry, _dual, _reference, requests = replica_setup
    outputs = benchmark.pedantic(
        run_stream, args=(single_registry, requests), rounds=1, iterations=1
    )
    assert outputs.shape == (N_REQUESTS * SAMPLES_PER_REQUEST, 10)


def test_bench_dual_replica(benchmark, replica_setup):
    _single, dual_registry, _reference, requests = replica_setup
    outputs = benchmark.pedantic(
        run_stream, args=(dual_registry, requests), rounds=1, iterations=1
    )
    assert outputs.shape == (N_REQUESTS * SAMPLES_PER_REQUEST, 10)


def test_replica_outputs_bit_identical(replica_setup):
    """Replication is a pure scheduling change: outputs match bit for bit."""
    single_registry, dual_registry, reference_registry, requests = replica_setup
    direct = reference_registry.engine(MODEL_NAME).run(np.concatenate(requests, axis=0))
    assert np.array_equal(run_stream(single_registry, requests), direct)
    assert np.array_equal(run_stream(dual_registry, requests), direct)


def test_replica_throughput_speedup(replica_setup):
    """Two replicas must beat one >= 1.7x on >= 2 cores.

    MIN_REPLICA_SPEEDUP keeps the bar configurable per environment; the CI
    ``kernels`` job enforces the default 1.7x on its multi-core runners.
    """
    if available_cpus() < 2:
        pytest.skip("replica parallelism needs at least 2 CPUs")
    minimum = float(os.environ.get("MIN_REPLICA_SPEEDUP", "1.7"))
    single_registry, dual_registry, _reference, requests = replica_setup

    single_time, single_outputs = best_of(lambda: run_stream(single_registry, requests))
    dual_time, dual_outputs = best_of(lambda: run_stream(dual_registry, requests))
    assert np.array_equal(single_outputs, dual_outputs)

    speedup = single_time / dual_time
    assert speedup >= minimum, (
        f"2 replicas only {speedup:.2f}x single-replica throughput "
        f"({N_REQUESTS / dual_time:.0f} vs {N_REQUESTS / single_time:.0f} req/s)"
    )


def test_forced_kill_loses_no_requests():
    """SIGKILL a replica mid-stream: zero failures, bit-identical outputs.

    This is the self-healing acceptance test and it runs on any host: the
    killed replica's in-flight batch must be requeued onto its sibling, the
    dead worker restarted, and every submitted future must resolve with the
    same bits the in-process engine produces.
    """
    model = build_model("mlp_kill", seed=23)
    requests = make_requests(40)
    reference_registry = ModelRegistry()
    reference_registry.register("mlp_kill", model)
    direct = reference_registry.engine("mlp_kill").run(np.concatenate(requests, axis=0))
    registry = ModelRegistry()
    registry.register("mlp_kill", model, backend="process", replicas=2, replace=False)
    pool = registry.engine("mlp_kill")
    try:
        server = InferenceServer(registry, BATCH_POLICY, max_workers=2)
        futures = [server.submit("mlp_kill", request) for request in requests]
        victim = None
        with server:
            deadline = time.monotonic() + 30.0
            while victim is None and time.monotonic() < deadline:
                for handle in pool._handles:
                    if handle.inflight > 0 and handle.pid is not None:
                        victim = handle.pid
                        break
                else:
                    time.sleep(0.001)
            assert victim is not None, "stream drained before a kill landed"
            os.kill(victim, signal.SIGKILL)
            outputs = np.concatenate(
                [future.result(timeout=120) for future in futures], axis=0
            )
        assert np.array_equal(outputs, direct)
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if pool.restart_count >= 1 and pool.healthy_replicas == 2:
                break
            time.sleep(0.02)
        assert pool.restart_count >= 1
        assert pool.healthy_replicas == 2
        assert victim not in pool.replica_pids()
    finally:
        registry.close()
