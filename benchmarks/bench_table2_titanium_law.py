"""Benchmark E3 -- Table 2: the Titanium Law of ADC energy."""

from repro.experiments.table2_titanium import run_table2, run_titanium_tradeoff_sweep


def test_table2_titanium_law_terms(benchmark):
    result = benchmark(run_table2, "resnet18")
    by_name = {t.arch_name: t for t in result.terms}
    benchmark.extra_info["isaac_converts_per_mac"] = round(
        by_name["isaac"].converts_per_mac, 3
    )
    benchmark.extra_info["raella_converts_per_mac"] = round(
        by_name["raella"].converts_per_mac, 4
    )
    # Paper: ISAAC ~0.25 converts/MAC, RAELLA ~0.018.
    assert 0.2 < by_name["isaac"].converts_per_mac < 0.32
    assert by_name["raella"].converts_per_mac < 0.04
    assert by_name["raella"].adc_energy_uj < by_name["isaac"].adc_energy_uj


def test_table2_resolution_tradeoff_sweep(benchmark):
    sweep = benchmark(run_titanium_tradeoff_sweep, "resnet18", (5, 6, 7, 8, 9))
    # Lower ADC resolution is cheaper per convert but needs more converts/MAC
    # at iso-fidelity -- the coupling Table 2 describes.
    energies = [t.energy_per_convert_pj for t in sweep]
    converts = [t.converts_per_mac for t in sweep]
    assert energies == sorted(energies)
    assert converts == sorted(converts, reverse=True)
