"""Benchmark E5 -- Fig. 5: differential vs Center+Offset encoding."""

from repro.experiments.fig05_encoding import run_fig05


def test_fig05_differential_vs_center_offset(benchmark):
    comparisons = benchmark(run_fig05, 512, 64, 0)
    by_name = {c.encoding: c for c in comparisons}
    benchmark.extra_info["zero_offset_saturation"] = round(
        by_name["zero_offset"].saturation_rate, 3
    )
    benchmark.extra_info["center_offset_saturation"] = round(
        by_name["center_offset"].saturation_rate, 4
    )
    # Paper: mostly-negative filters saturate badly under differential
    # encoding; Center+Offset keeps column sums near zero.
    assert by_name["zero_offset"].saturation_rate > 0.2
    assert by_name["center_offset"].saturation_rate < 0.05
    assert abs(by_name["center_offset"].mean_column_sum) < abs(
        by_name["zero_offset"].mean_column_sum
    )
