"""Ablation benches for design choices called out in DESIGN.md.

Two knobs the paper fixes empirically are swept here:

* the Eq. 2 cost exponent (the paper uses 4), and
* the Adaptive Weight Slicing error budget (the paper uses 0.09).
"""

import numpy as np
import pytest

from repro.arithmetic.slicing import RAELLA_DEFAULT_WEIGHT_SLICING
from repro.core.adaptive_slicing import AdaptiveSlicingConfig, choose_weight_slicing
from repro.core.center_offset import CenterOffsetEncoder, WeightEncoding
from repro.nn.layers import Linear
from repro.nn.synthetic import synthetic_linear_weights


@pytest.fixture(scope="module")
def skewed_layer():
    rng = np.random.default_rng(3)
    weights = synthetic_linear_weights(8, 448, rng, std=0.06, mean_spread=0.03)
    layer = Linear("ablation_fc", weights, fuse_relu=True)
    inputs = np.abs(rng.normal(0, 1, size=(48, 448)))
    layer.calibrate(inputs, layer.forward_float(inputs))
    patches = layer.input_quant.quantize(inputs)
    return layer, patches


def _worst_column_bias(layer, power):
    encoder = CenterOffsetEncoder(
        RAELLA_DEFAULT_WEIGHT_SLICING, WeightEncoding.CENTER_OFFSET, power=power
    )
    encoded = encoder.encode(layer.weight_codes, layer.weight_zero_point)
    diff = encoded.positive_slices - encoded.negative_slices
    return float(np.abs(diff.sum(axis=1)).max())


def test_ablation_center_cost_power(benchmark, skewed_layer):
    """Eq. 2 exponent sweep: the paper's power of 4 balances columns well."""
    layer, _ = skewed_layer

    def sweep():
        return {
            power: _worst_column_bias(layer, power) for power in (1.0, 2.0, 4.0, 8.0)
        }

    biases = benchmark(sweep)
    benchmark.extra_info["worst_column_bias_by_power"] = {
        str(k): round(v, 1) for k, v in biases.items()
    }
    # The power-of-4 objective should not be worse than the linear objective
    # at balancing the worst column.
    assert biases[4.0] <= biases[1.0] * 1.5


def test_ablation_error_budget(benchmark, skewed_layer):
    """Error-budget sweep: tighter budgets force more weight slices."""
    layer, patches = skewed_layer

    def sweep():
        slices = {}
        for budget in (0.01, 0.09, 1.0):
            choice = choose_weight_slicing(
                layer,
                patches,
                AdaptiveSlicingConfig(error_budget=budget, max_test_patches=48),
            )
            slices[budget] = choice.slicing.n_slices
        return slices

    slices = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["slices_by_budget"] = {str(k): v for k, v in slices.items()}
    assert slices[0.01] >= slices[0.09] >= slices[1.0]
