"""Benchmark E11 -- Table 4: accuracy of Center+Offset vs Zero+Offset RAELLA."""

from repro.experiments.table4_accuracy import run_table4


def test_table4_accuracy_comparison(run_once, benchmark):
    result = run_once(run_table4, max_samples=200, include_cnn=True, epochs=20)
    benchmark.extra_info["entries"] = {
        entry.model_name: {
            "quantized": round(entry.quantized_accuracy, 3),
            "center_offset_drop_pp": round(entry.center_offset_drop_pct, 2),
            "zero_offset_drop_pp": round(entry.zero_offset_drop_pct, 2),
        }
        for entry in result.entries
    }
    # Paper: RAELLA Center+Offset loses little to no accuracy without
    # retraining (drops within a fraction of a point up to ~0.2pp); Zero+Offset
    # is never better and collapses on skew-sensitive models.
    for entry in result.entries:
        assert entry.center_offset_drop_pct < 3.0
        assert entry.zero_offset_drop_pct >= entry.center_offset_drop_pct - 1.0
