"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures through the
experiment harnesses in :mod:`repro.experiments`.  Long-running experiments
use ``benchmark.pedantic(..., rounds=1)`` so the suite stays tractable; the
headline measured values are attached to ``benchmark.extra_info`` so they
appear in the pytest-benchmark report and can be compared against
EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under the benchmark timer."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return runner
