"""Compiled execution plans vs. the re-deriving engine, plus output pooling.

Not a paper artifact: this tracks the ROADMAP "hot-path raw speed" follow-up
that motivated :mod:`repro.runtime.plan`.  Two claims are enforced:

* **Planned dispatch.**  A small-batch dispatch storm (every request M <= 4,
  the serving layer's worst case: per-batch layout work is amortised over
  almost nothing) through a :class:`NetworkEngine` running a precompiled
  :class:`~repro.runtime.ModelPlan` must sustain at least
  ``MIN_PLANNED_SPEEDUP``x the unplanned engine's throughput (1.3x by
  default, typically ~2x locally) while staying bit-identical, and compiling
  the plan must amortise within a single storm batch.
* **Output pooling.**  A process-backed engine hands results out as
  zero-copy views of pooled worker-owned shared-memory slots; the same
  round trip with ``copy_outputs`` (the old materialise-per-reply
  behaviour) must not be faster -- the measured per-round-trip delta is the
  memcpy the pool deletes.

Plans change scheduling and layout only, never arithmetic, so every
comparison here doubles as a bit-identity regression test across the
thread and process backends.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.runtime import (
    ExecutorPool,
    NetworkEngine,
    ProcessEngine,
    compile_model_plan,
)

N_REQUESTS = 100
MAX_STORM_SAMPLES = 4  # the storm is all small batches: M in 1..4


def build_model(name: str, seed: int) -> QuantizedModel:
    """The same CPU-bound three-layer MLP the procpool benchmark uses."""
    rng = np.random.default_rng(seed)
    layers = [
        Linear(
            f"{name}_fc1",
            synthetic_linear_weights(96, 128, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(
            f"{name}_fc2",
            synthetic_linear_weights(48, 96, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(f"{name}_fc3", synthetic_linear_weights(10, 48, rng, std=0.15)),
    ]
    model = QuantizedModel(name, layers, input_shape=(128,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 128))))
    return model


def build_wide_model(seed: int = 5) -> QuantizedModel:
    """One wide layer: big result arrays make the reply memcpy visible."""
    rng = np.random.default_rng(seed)
    model = QuantizedModel(
        "wide",
        [Linear("wide_fc", synthetic_linear_weights(512, 32, rng, std=0.15))],
        input_shape=(32,),
    )
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 32))))
    return model


def make_storm(n_requests: int = N_REQUESTS, seed: int = 9) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        np.abs(rng.normal(0, 1, size=(1 + i % MAX_STORM_SAMPLES, 128)))
        for i in range(n_requests)
    ]


def best_of(func, rounds: int = 3):
    """Best wall time over a few rounds (plus the last result)."""
    func()  # warm-up
    timings, result = [], None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        timings.append(time.perf_counter() - start)
    return min(timings), result


@pytest.fixture(scope="module")
def plan_setup():
    """One model hosted three ways: unplanned, planned, planned-in-process."""
    model = build_model("plan_mlp", seed=3)
    requests = make_storm()
    unplanned = NetworkEngine.build(model, pool=ExecutorPool())
    planned_pool = ExecutorPool()
    plan = compile_model_plan(model, pool=planned_pool)
    planned = NetworkEngine.build(model, pool=planned_pool, plan=plan)
    process = ProcessEngine.launch(model, plan=plan)
    for engine in (unplanned, planned, process):
        engine.run(requests[0])  # warm every path outside the timed regions
    yield model, plan, unplanned, planned, process, requests
    process.close()


def run_storm(engine, requests: list[np.ndarray]) -> list[np.ndarray]:
    return [engine.run(batch) for batch in requests]


def test_bench_unplanned_dispatch_storm(benchmark, plan_setup):
    _model, _plan, unplanned, _planned, _process, requests = plan_setup
    outputs = benchmark.pedantic(
        run_storm, args=(unplanned, requests), rounds=1, iterations=1
    )
    assert outputs[0].shape == (1, 10)


def test_bench_planned_dispatch_storm(benchmark, plan_setup):
    _model, _plan, _unplanned, planned, _process, requests = plan_setup
    outputs = benchmark.pedantic(
        run_storm, args=(planned, requests), rounds=1, iterations=1
    )
    assert outputs[-1].shape == (1 + (len(requests) - 1) % MAX_STORM_SAMPLES, 10)


def test_planned_storm_speedup_and_bit_identity(benchmark, plan_setup):
    """Planned dispatch >= MIN_PLANNED_SPEEDUP x unplanned, bit for bit."""
    minimum = float(os.environ.get("MIN_PLANNED_SPEEDUP", "1.3"))
    _model, _plan, unplanned, planned, _process, requests = plan_setup

    unplanned_time, unplanned_outputs = best_of(lambda: run_storm(unplanned, requests))
    planned_time, planned_outputs = best_of(lambda: run_storm(planned, requests))
    for expected, actual in zip(unplanned_outputs, planned_outputs):
        assert np.array_equal(expected, actual)

    speedup = unplanned_time / planned_time
    benchmark.extra_info["planned_speedup"] = round(speedup, 2)
    benchmark.extra_info["requests_per_s_planned"] = round(len(requests) / planned_time)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert speedup >= minimum, (
        f"planned engine only {speedup:.2f}x unplanned dispatch "
        f"({len(requests) / planned_time:.0f} vs "
        f"{len(requests) / unplanned_time:.0f} req/s)"
    )


def test_plan_compile_amortises_within_one_batch(plan_setup):
    """Compiling the plan costs less than a single storm batch.

    The compile runs against a *fresh* pool, so the measured time includes
    weight encoding -- the worst case a cold registry pays.  Even so it must
    pay for itself within one batch of the storm it accelerates.
    """
    budget = float(os.environ.get("MAX_PLAN_COMPILE_BATCHES", "1.0"))
    model, _plan, unplanned, _planned, _process, requests = plan_setup

    batch_time, _ = best_of(lambda: run_storm(unplanned, requests))
    per_batch = batch_time / len(requests)
    start = time.perf_counter()
    compile_model_plan(model, pool=ExecutorPool())
    compile_time = time.perf_counter() - start
    assert compile_time <= budget * per_batch, (
        f"plan compile took {compile_time * 1e3:.2f} ms, "
        f"budget {budget:.1f} batch(es) = {budget * per_batch * 1e3:.2f} ms"
    )


def test_planned_outputs_bit_identical_across_backends(plan_setup):
    """Thread engine, planned engine and plan-shipped worker all agree."""
    _model, _plan, unplanned, planned, process, requests = plan_setup
    stacked = np.concatenate(requests[:8], axis=0)
    expected = unplanned.run(stacked)
    assert np.array_equal(planned.run(stacked), expected)
    assert np.array_equal(process.run(stacked), expected)


def test_output_pooling_roundtrip_delta(benchmark):
    """Zero-copy pooled replies are never slower than materialised copies.

    ``EngineWorker.copy_outputs`` restores the old copy-per-reply behaviour,
    so the same worker measures both modes on identical requests; the delta
    is the reply memcpy the output pool deletes.  The bound is directional
    (``MAX_POOLED_RTT_RATIO``, default 1.05 to absorb timer noise) because
    the simulated compute
    dominates the round trip; the absolute delta lands in the timing JSON.
    """
    ratio_bar = float(os.environ.get("MAX_POOLED_RTT_RATIO", "1.05"))
    model = build_wide_model()
    plan = compile_model_plan(model)
    engine = ProcessEngine.launch(model, plan=plan)
    inputs = np.abs(np.random.default_rng(1).normal(0, 1, size=(256, 32)))
    try:
        engine.run(inputs)  # warm the worker and both transport directions

        def round_trips(n: int = 6) -> float:
            start = time.perf_counter()
            for _ in range(n):
                engine.run(inputs)
            return (time.perf_counter() - start) / n

        engine.worker.copy_outputs = False
        pooled, _ = best_of(round_trips)
        engine.worker.copy_outputs = True
        copied, _ = best_of(round_trips)
        engine.worker.copy_outputs = False
        pooled_view = engine.run(inputs)
        assert not pooled_view.flags.writeable  # zero-copy pool view
        benchmark.extra_info["pooled_rtt_ms"] = round(pooled * 1e3, 3)
        benchmark.extra_info["copy_rtt_ms"] = round(copied * 1e3, 3)
        benchmark.extra_info["delta_us_per_roundtrip"] = round((copied - pooled) * 1e6)
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        assert pooled <= copied * ratio_bar, (
            f"pooled round trip {pooled * 1e3:.3f} ms slower than "
            f"copying replies ({copied * 1e3:.3f} ms)"
        )
    finally:
        engine.close()
