"""Regression benchmarks for energy-aware heterogeneous fleet routing.

The fleet ISSUE's acceptance bars, asserted here and in CI:

1. **Energy-aware placement pays.**  On a mixed deadline workload (a bulk
   majority with generous slack plus an interactive minority with deadlines
   already blown at formation time), routing with :class:`MinimizeEnergy`
   across an ISAAC-fast / RAELLA-low-power fleet must realise at least
   ``MIN_FLEET_ENERGY_SAVINGS`` (default 15%) lower total modeled energy
   than pinning every batch to the fastest variant, at an equal-or-lower
   SLO miss rate -- the paper's fig. 12/13 energy/throughput trade-off
   turned into a live scheduling win.

2. **Placement never changes bits.**  Both variants encode the same
   calibrated model, so every output -- however routed -- must be
   bit-identical to a direct single-engine run.

3. **Decisions are O(us).**  ``FleetRouter.route`` is table lookups and
   float compares; its mean decision time must stay under
   ``MAX_ROUTE_DECISION_US`` (default 500us for noisy shared runners;
   locally ~10-50us) and must never touch an engine.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.hw import ISAAC_ARCH, RAELLA_ARCH
from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import (
    BatchingPolicy,
    FleetRouter,
    InferenceServer,
    MinimizeEnergy,
    ModelRegistry,
    PinVariant,
    RoutingObjective,
)
from repro.telemetry import TelemetryCollector

FAST, CHEAP = "mlp-fast", "mlp-lowpower"
N_BULK = 48  # generous-slack requests: routable to the low-power variant
N_INTERACTIVE = 16  # blown-deadline requests: least-late = fast variant
BATCH_POLICY = BatchingPolicy(max_batch_size=8, max_delay_s=0.001)


def make_model(in_features: int, hidden: int, seed: int) -> QuantizedModel:
    rng = np.random.default_rng(seed)
    fc1 = Linear(
        "fc1",
        synthetic_linear_weights(hidden, in_features, rng, std=0.15),
        fuse_relu=True,
    )
    fc2 = Linear("fc2", synthetic_linear_weights(10, hidden, rng, std=0.15))
    model = QuantizedModel("mlp", [fc1, fc2], input_shape=(in_features,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, in_features))))
    return model


@pytest.fixture(scope="module")
def fleet_setup():
    """One model hosted as two architecture variants plus a request stream.

    ISAAC is the fast/expensive variant, RAELLA the slow/cheap one (about
    55% less modeled energy per sample at ~1.4x the modeled latency), so an
    energy-aware router has real headroom over always-fastest placement.
    """
    model = make_model(64, 48, seed=23)
    registry = ModelRegistry()
    registry.register(FAST, model, arch=ISAAC_ARCH)
    registry.register(CHEAP, model, arch=RAELLA_ARCH)
    registry.register_fleet("mlp", [FAST, CHEAP])
    rng = np.random.default_rng(29)
    bulk = [np.abs(rng.normal(0, 1, size=(4, 64))) for _ in range(N_BULK)]
    interactive = [np.abs(rng.normal(0, 1, size=(2, 64))) for _ in range(N_INTERACTIVE)]
    registry.engine(FAST).run(bulk[0])  # warm caches out of timed regions
    yield registry, bulk, interactive
    registry.close()


def run_fleet(registry, bulk, interactive, routing: RoutingObjective):
    """Serve the mixed stream through the fleet under one routing objective.

    Bulk requests carry 30s of slack (any variant meets); interactive ones
    carry 1us, long blown by batch-formation time, so the router's
    least-late rule must place them on the fast variant.  Returns the
    telemetry plus concatenated outputs in submit order.
    """
    telemetry = TelemetryCollector()
    server = InferenceServer(
        registry, BATCH_POLICY, telemetry=telemetry, routing=routing
    )
    futures = [server.submit("mlp", r, deadline_s=30.0) for r in bulk]
    futures += [server.submit("mlp", r, deadline_s=1e-6) for r in interactive]
    with server:  # starting after submit makes batch formation deterministic
        results = [f.result(timeout=60) for f in futures]
    assert server.statistics().requests_failed == 0
    return telemetry, results


def fleet_totals(telemetry: TelemetryCollector) -> tuple[float, float]:
    """(total modeled energy pJ, SLO miss rate) summed across variants."""
    energy = misses = with_deadline = 0.0
    for name in (FAST, CHEAP):
        aggregate = telemetry.aggregate(name)
        energy += aggregate.modeled_energy_pj
        misses += aggregate.deadline_misses
        with_deadline += aggregate.deadline_requests
    return energy, misses / with_deadline if with_deadline else 0.0


def test_energy_aware_routing_beats_always_fastest(fleet_setup):
    minimum_savings = float(os.environ.get("MIN_FLEET_ENERGY_SAVINGS", "0.15"))
    registry, bulk, interactive = fleet_setup
    reference = [registry.engine(FAST).run(r) for r in bulk + interactive]

    run_fleet(registry, bulk, interactive, MinimizeEnergy())  # warm-up
    pinned, pinned_results = run_fleet(registry, bulk, interactive, PinVariant(FAST))
    routed, routed_results = run_fleet(registry, bulk, interactive, MinimizeEnergy())

    # Placement must never change a single bit of any result.
    for expected, pinned_out, routed_out in zip(
        reference, pinned_results, routed_results
    ):
        assert np.array_equal(expected, pinned_out)
        assert np.array_equal(expected, routed_out)

    # The baseline really did pin everything to the fast variant, and the
    # router really did spread the stream across both.
    assert pinned.aggregate(CHEAP).requests == 0
    assert routed.aggregate(CHEAP).requests > 0
    assert routed.aggregate(FAST).requests > 0

    pinned_energy, pinned_miss_rate = fleet_totals(pinned)
    routed_energy, routed_miss_rate = fleet_totals(routed)
    assert routed_miss_rate <= pinned_miss_rate, (
        f"energy-aware routing missed {routed_miss_rate:.0%} of deadlines, "
        f"always-fastest {pinned_miss_rate:.0%} -- expected no worse"
    )
    savings = 1.0 - routed_energy / pinned_energy
    assert savings >= minimum_savings, (
        f"energy-aware routing saved {savings:.1%} modeled energy vs "
        f"always-fastest ({routed_energy / 1e6:.2f}uJ vs "
        f"{pinned_energy / 1e6:.2f}uJ), below the {minimum_savings:.0%} bar"
    )
    # The collector's own realised-savings gauge must tell the same story.
    aggregate = routed.fleet_aggregate("mlp")
    assert aggregate.realised_saved_fraction >= minimum_savings


def test_route_decision_is_microseconds(fleet_setup):
    """Routing must cost O(us) and never touch an engine."""
    maximum_us = float(os.environ.get("MAX_ROUTE_DECISION_US", "500"))
    registry, _bulk, _interactive = fleet_setup
    router = FleetRouter(registry)
    deadline = time.monotonic() + 0.010
    router.route("mlp", 8, deadline_s=deadline)  # warm-up

    rounds = 2000
    start = time.perf_counter()
    for _ in range(rounds):
        router.route("mlp", 8, deadline_s=deadline)
    mean_us = (time.perf_counter() - start) / rounds * 1e6
    assert mean_us <= maximum_us, (
        f"route() took {mean_us:.1f}us/decision, above the {maximum_us:.0f}us bar"
    )

    # No engine on the decision path: lookups would blow up loudly.
    original = registry.engine
    registry.engine = lambda name: (_ for _ in ()).throw(
        AssertionError("engine touched on the routing decision path")
    )
    try:
        decision = router.route("mlp", 8, deadline_s=deadline)
    finally:
        registry.engine = original
    assert decision.variant in (FAST, CHEAP)
