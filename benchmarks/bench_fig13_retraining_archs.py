"""Benchmark E9 -- Fig. 13: comparison with FORMS and TIMELY."""

from repro.experiments.fig13_retraining import run_fig13


def test_fig13_comparison_with_retraining_architectures(benchmark):
    result = benchmark(run_fig13, ("resnet18", "resnet50"))
    entries = {e.arch_name: e for e in result.entries}
    efficiency = {
        name: round(result.relative_efficiency(e), 2) for name, e in entries.items()
    }
    throughput = {
        name: round(result.relative_throughput(e), 2) for name, e in entries.items()
    }
    benchmark.extra_info["efficiency_vs_isaac"] = efficiency
    benchmark.extra_info["throughput_vs_isaac"] = throughput
    # Paper: RAELLA matches FORMS's throughput and exceeds the efficiency of
    # both FORMS and TIMELY without retraining; at 65 nm the no-speculation
    # configuration is the more efficient RAELLA variant.
    assert efficiency["raella"] > efficiency["forms8"]
    assert 0.5 < throughput["raella"] / throughput["forms8"] < 2.0
    assert efficiency["raella_65nm_no_spec"] >= efficiency["raella_65nm"]
    best_raella_65nm = max(efficiency["raella_65nm"], efficiency["raella_65nm_no_spec"])
    assert best_raella_65nm >= efficiency["timely"] * 0.95
