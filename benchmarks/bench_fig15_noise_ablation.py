"""Benchmark E13 -- Fig. 15: accuracy under increasing analog noise."""

from repro.experiments.fig15_noise import run_fig15


def test_fig15_accuracy_under_noise(run_once, benchmark):
    result = run_once(run_fig15, noise_levels=(0.0, 0.12), max_samples=150, epochs=20)
    drops = {
        setup: {
            str(point.noise_level): round(point.accuracy_drop_pct, 2)
            for point in result.series(setup)
        }
        for setup in result.setup_names
    }
    benchmark.extra_info["accuracy_drop_pp"] = drops
    benchmark.extra_info["quantized_accuracy"] = round(result.quantized_accuracy, 3)
    # Paper: at zero noise every setup preserves accuracy; as noise grows,
    # ISAAC's dense unsigned arithmetic degrades at least as much as RAELLA's
    # Center+Offset-based setups, and speculation does not hurt accuracy
    # because recovery re-converts failed columns.
    for setup in result.setup_names:
        assert result.drop_at(setup, 0.0) < 3.0
    worst_noise = 0.12
    assert result.drop_at("isaac", worst_noise) >= result.drop_at(
        "raella", worst_noise
    ) - 1.0
    assert abs(
        result.drop_at("raella", worst_noise)
        - result.drop_at("center_offset+adaptive", worst_noise)
    ) < 6.0
