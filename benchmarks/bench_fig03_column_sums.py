"""Benchmark E4 -- Fig. 3: column-sum distributions under RAELLA's strategies."""

from repro.experiments.fig03_column_sums import run_fig03


def test_fig03_column_sum_distributions(run_once, benchmark):
    result = run_once(run_fig03, n_inputs=1, max_samples=100_000)
    fractions = {
        setup.setup: round(setup.within_adc_fraction(setup.primary_kind), 3)
        for setup in result.setups
    }
    final = result.setups[-1]
    benchmark.extra_info["within_7b_fraction"] = fractions
    benchmark.extra_info["recovery_within_7b"] = round(
        final.within_adc_fraction("recovery"), 4
    )
    benchmark.extra_info["final_fidelity_loss"] = f"{final.fidelity_loss_rate:.2e}"
    values = list(fractions.values())
    # Paper progression (Fig. 3): each strategy tightens the distribution --
    # 2% -> 59.2% -> 82.1% within the 7b range for the first three setups,
    # then speculation converts what it can and bit-serial recovery captures
    # nearly everything (99.9%), leaving ~0.1% accepted fidelity loss.
    assert values[0] < values[1] <= values[2] + 1e-9
    assert values[3] >= values[1]
    assert final.within_adc_fraction("recovery") > 0.95
    assert final.fidelity_loss_rate < 0.02
