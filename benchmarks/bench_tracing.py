"""Regression benchmarks for request tracing and the flight recorder.

The tracing ISSUE's cost contract, asserted here and in CI:

1. **Tracing at full sampling is cheap.**  Serving an identical request
   stream with a :class:`~repro.telemetry.Tracer` at ``sample_rate=1.0``
   (every request gets a full span tree and a flight-recorder entry) must
   keep throughput within ``MAX_TRACING_OVERHEAD`` of the untraced server
   (1.05 = 5% locally; CI relaxes the bar for noisy shared runners) -- and
   stay bit-identical, because instrumentation only reads clocks and appends
   to lists.

2. **A disabled tracer is free.**  With ``enabled=False`` the whole path
   collapses to one ``None``/flag check per request, so the disabled
   configuration must sit within the same bound trivially.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry
from repro.telemetry import Tracer

N_REQUESTS = 96
BATCH_POLICY = BatchingPolicy(max_batch_size=32, max_delay_s=0.005)


def make_model(name: str, in_features: int, hidden: int, seed: int) -> QuantizedModel:
    rng = np.random.default_rng(seed)
    fc1 = Linear(
        "fc1",
        synthetic_linear_weights(hidden, in_features, rng, std=0.15),
        fuse_relu=True,
    )
    fc2 = Linear("fc2", synthetic_linear_weights(10, hidden, rng, std=0.15))
    model = QuantizedModel(name, [fc1, fc2], input_shape=(in_features,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, in_features))))
    return model


@pytest.fixture(scope="module")
def overhead_setup():
    """One registered model and a request stream (mirrors bench_telemetry)."""
    rng = np.random.default_rng(23)
    registry = ModelRegistry()
    registry.register("mlp", make_model("mlp", 128, 64, seed=23))
    requests = [np.abs(rng.normal(0, 1, size=(8, 128))) for _ in range(N_REQUESTS)]
    registry.engine("mlp").run(requests[0])  # warm caches out of timed region
    return registry, requests


def drain_server(
    registry: ModelRegistry,
    requests: list[np.ndarray],
    tracer: Tracer | None,
) -> np.ndarray:
    """Enqueue every request, let the scheduler drain, return all outputs."""
    server = InferenceServer(registry, BATCH_POLICY, tracer=tracer)
    futures = [server.submit("mlp", r) for r in requests]
    with server:  # starting after submit makes batch formation deterministic
        results = [f.result(timeout=30) for f in futures]
    return np.concatenate(results, axis=0)


N_ROUNDS = 7


def test_tracing_overhead_within_bound(overhead_setup):
    """Fully-sampled tracing must stay within MAX_TRACING_OVERHEAD of plain.

    Each round interleaves the two configurations and yields one *paired*
    traced/plain ratio; the bench asserts on the best (minimum) ratio.  A
    genuine overhead regression inflates every round, so it still fails the
    minimum -- while a shared-machine noise spike only poisons the rounds it
    lands in and cannot flake the bench.
    """
    maximum = float(os.environ.get("MAX_TRACING_OVERHEAD", "1.05"))
    registry, requests = overhead_setup

    drain_server(registry, requests, None)  # warm-up
    drain_server(registry, requests, Tracer(sample_rate=1.0))
    plain_times, traced_times = [], []
    plain_outputs = traced_outputs = None
    for _ in range(N_ROUNDS):
        start = time.perf_counter()
        plain_outputs = drain_server(registry, requests, None)
        plain_times.append(time.perf_counter() - start)
        tracer = Tracer(sample_rate=1.0)
        start = time.perf_counter()
        traced_outputs = drain_server(registry, requests, tracer)
        traced_times.append(time.perf_counter() - start)

    # Tracing must not change a single bit of any result.
    assert np.array_equal(plain_outputs, traced_outputs)
    # And the traces must actually have been captured: every request's span
    # tree landed in the flight recorder (root + >= 5 stage spans each would
    # overflow a default ring, so just check the last run's sampling).
    roots = [
        event
        for event in tracer.recorder.events(category="serve")
        if event["name"] == "request"
    ]
    assert len(roots) > 0
    assert len(tracer.recorder) <= tracer.recorder.capacity

    ratios = [t / p for t, p in zip(traced_times, plain_times)]
    overhead = min(ratios)
    assert overhead <= maximum, (
        f"tracing overhead {overhead:.3f}x exceeds {maximum:.2f}x in every "
        f"round (untraced best {min(plain_times) * 1e3:.1f}ms, traced best "
        f"{min(traced_times) * 1e3:.1f}ms for {N_REQUESTS} requests)"
    )


def test_disabled_tracer_is_free(overhead_setup):
    """A disabled tracer must not cost more than the no-tracer baseline."""
    maximum = float(os.environ.get("MAX_TRACING_OVERHEAD", "1.05"))
    registry, requests = overhead_setup

    drain_server(registry, requests, None)  # warm-up
    plain_times, disabled_times = [], []
    plain_outputs = disabled_outputs = None
    for _ in range(N_ROUNDS):
        start = time.perf_counter()
        plain_outputs = drain_server(registry, requests, None)
        plain_times.append(time.perf_counter() - start)
        tracer = Tracer(sample_rate=1.0, enabled=False)
        start = time.perf_counter()
        disabled_outputs = drain_server(registry, requests, tracer)
        disabled_times.append(time.perf_counter() - start)

    assert np.array_equal(plain_outputs, disabled_outputs)
    assert len(tracer.recorder) == 0  # nothing sampled, nothing recorded
    overhead = min(t / p for t, p in zip(disabled_times, plain_times))
    assert overhead <= maximum, (
        f"disabled tracer overhead {overhead:.3f}x exceeds {maximum:.2f}x"
    )
