"""Scale/latency benchmark of the asyncio front door (`repro.serve.aio`).

Not a paper artifact: this gates the async serving path the ROADMAP targets.
Three acceptance bars, all asserted:

* **Concurrency**: ``N_INFLIGHT`` (5000) requests held in flight *at once*
  through :class:`~repro.serve.aio.AsyncInferenceServer` -- coroutine-priced,
  no thread per request -- with bounded peak memory (``MAX_ASYNC_PEAK_MB``,
  tracemalloc-measured over the whole submit/drain cycle).
* **Bit-identity**: the async facade returns exactly the sync
  :class:`~repro.serve.InferenceServer` outputs on the same request stream
  (the facade only changes who waits, never what executes).
* **Shed latency**: admission rejections through ``await submit(...)`` stay
  within ``MAX_ASYNC_SHED_RATIO`` (2x) of the sync O(us) shed path -- the
  event-loop hop must not turn fast-fail into slow-fail.
"""

from __future__ import annotations

import asyncio
import os
import time
import tracemalloc

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AsyncInferenceServer,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
)

N_INFLIGHT = 5000
N_SHED_OPS = 2000
BATCH_POLICY = BatchingPolicy(max_batch_size=256, max_delay_s=0.002)


@pytest.fixture(scope="module")
def serving_setup():
    """A registered two-layer model plus a 5000-request single-sample stream."""
    rng = np.random.default_rng(11)
    fc1 = Linear("fc1", synthetic_linear_weights(16, 32, rng, std=0.2), fuse_relu=True)
    fc2 = Linear("fc2", synthetic_linear_weights(4, 16, rng, std=0.2))
    model = QuantizedModel("async_mlp", [fc1, fc2], input_shape=(32,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 32))))
    registry = ModelRegistry()
    registry.register("mlp", model)
    requests = [np.abs(rng.normal(0, 1, size=(1, 32))) for _ in range(N_INFLIGHT)]
    registry.engine("mlp").run(requests[0])  # warm caches out of the timed region
    return registry, requests


def run_sync(registry: ModelRegistry, requests: list[np.ndarray]) -> np.ndarray:
    """The reference path: sync server, submit-then-drain, one blocked waiter."""
    server = InferenceServer(registry, BATCH_POLICY)
    futures = [server.submit("mlp", r) for r in requests]
    with server:  # starting after submit makes batch formation deterministic
        results = [f.result(timeout=60) for f in futures]
    return np.concatenate(results, axis=0)


def run_async(registry: ModelRegistry, requests: list[np.ndarray]):
    """The async path: every request in flight at once, then gather.

    Returns ``(peak_inflight, outputs)``: submitting before ``start`` pins
    every request in the facade's in-flight window simultaneously, so the
    peak is exact (== len(requests)), not a race-dependent sample.
    """

    async def main():
        server = AsyncInferenceServer(
            registry, BATCH_POLICY, max_inflight=2 * N_INFLIGHT
        )
        decisions = [await server.submit("mlp", r) for r in requests]
        peak_inflight = server.inflight
        async with server:
            results = await asyncio.gather(*(d.result(60.0) for d in decisions))
        return peak_inflight, np.concatenate(results, axis=0)

    return asyncio.run(main())


def test_bench_sync_server(benchmark, serving_setup):
    registry, requests = serving_setup
    outputs = benchmark.pedantic(
        run_sync, args=(registry, requests), rounds=1, iterations=1
    )
    assert outputs.shape == (N_INFLIGHT, 4)


def test_bench_async_front_door(benchmark, serving_setup):
    registry, requests = serving_setup
    peak, outputs = benchmark.pedantic(
        run_async, args=(registry, requests), rounds=1, iterations=1
    )
    benchmark.extra_info["peak_inflight"] = peak
    assert peak >= N_INFLIGHT
    assert outputs.shape == (N_INFLIGHT, 4)


def test_async_5k_inflight_bounded_memory_bit_identical(serving_setup):
    """5000 concurrent in-flight requests, bounded memory, sync-exact outputs.

    MAX_ASYNC_PEAK_MB bounds tracemalloc's peak over the full cycle (every
    decision, bridge future, queue entry and output live at once); the
    default leaves ~4x headroom over the observed peak so a per-request
    memory regression fails loudly while allocator noise does not.
    """
    limit_mb = float(os.environ.get("MAX_ASYNC_PEAK_MB", "128"))
    registry, requests = serving_setup
    sync_outputs = run_sync(registry, requests)

    tracemalloc.start()
    try:
        peak_inflight, async_outputs = run_async(registry, requests)
        _current, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert peak_inflight >= N_INFLIGHT, (
        f"only {peak_inflight} requests in flight concurrently"
    )
    assert np.array_equal(sync_outputs, async_outputs)
    peak_mb = peak_bytes / 2**20
    assert peak_mb <= limit_mb, (
        f"async path peaked at {peak_mb:.1f} MiB for {N_INFLIGHT} in-flight "
        f"requests (limit {limit_mb:.0f} MiB)"
    )


def test_async_shed_latency_within_ratio_of_sync(serving_setup):
    """Shedding through the async facade stays within 2x of the sync path.

    Both paths hit the same deterministic rejection: a never-started server
    whose per-model backlog already sits at the admission limit, so every
    probe submit sheds in O(us) without touching the scheduler.
    MAX_ASYNC_SHED_RATIO relaxes the bar for noisy shared runners without
    weakening the local 2x default.
    """
    ratio_limit = float(os.environ.get("MAX_ASYNC_SHED_RATIO", "2.0"))
    registry, _requests = serving_setup
    probe = np.abs(np.random.default_rng(3).normal(0, 1, size=(1, 32)))
    policy = AdmissionPolicy(max_queue_samples_per_model=4)

    def make_saturated_sync() -> InferenceServer:
        server = InferenceServer(
            registry, BATCH_POLICY, admission=AdmissionController(policy)
        )
        filler = server.submit("mlp", np.repeat(probe, 4, axis=0))
        assert filler.accepted  # backlog now == the limit; all else sheds
        return server

    def sync_sheds() -> float:
        server = make_saturated_sync()
        start = time.perf_counter()
        for _ in range(N_SHED_OPS):
            decision = server.submit("mlp", probe)
            assert decision.status == "shed"
        return time.perf_counter() - start

    def async_sheds() -> float:
        async def main():
            server = AsyncInferenceServer(
                server=make_saturated_sync(), max_inflight=2 * N_INFLIGHT
            )
            start = time.perf_counter()
            for _ in range(N_SHED_OPS):
                decision = await server.submit("mlp", probe)
                assert decision.status == "shed"
            return time.perf_counter() - start

        return asyncio.run(main())

    def best_of(func, rounds=3):
        func()  # warm-up
        return min(func() for _ in range(rounds))

    sync_us = best_of(sync_sheds) / N_SHED_OPS * 1e6
    async_us = best_of(async_sheds) / N_SHED_OPS * 1e6
    ratio = async_us / sync_us
    assert ratio <= ratio_limit, (
        f"async shed {async_us:.1f}us vs sync {sync_us:.1f}us per request "
        f"({ratio:.2f}x > {ratio_limit:.1f}x limit)"
    )
