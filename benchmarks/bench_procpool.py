"""Throughput benchmark of process-based engine workers vs. the thread backend.

Not a paper artifact: this tracks the ROADMAP follow-up that motivated
:mod:`repro.runtime.procpool`.  The simulator's digital stages (quantize,
phase extraction, statistics) are GIL-bound Python/NumPy code, so the
thread-based server overlaps two models' batches without ever running them in
parallel.  Hosting each model in its own worker process
(``ModelRegistry.register(..., backend="process")``) runs them on separate
cores, with request/response arrays crossing over shared-memory blocks
instead of the pickler.

The headline regression test drives the same CPU-bound two-model request
stream through both backends and asserts the process backend sustains at
least ``MIN_PROCPOOL_SPEEDUP``x the aggregate throughput (1.5x by default --
the CI ``kernels`` job enforces the same bar) while staying bit-identical.
The comparison needs real parallelism, so it is skipped on single-CPU hosts.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry

MODEL_NAMES = ("mlp_a", "mlp_b")
REQUESTS_PER_MODEL = 24
SAMPLES_PER_REQUEST = 4
BATCH_POLICY = BatchingPolicy(max_batch_size=16, max_delay_s=0.005)


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_model(name: str, seed: int) -> QuantizedModel:
    """A CPU-bound three-layer MLP with model-specific weights."""
    rng = np.random.default_rng(seed)
    layers = [
        Linear(
            f"{name}_fc1",
            synthetic_linear_weights(96, 128, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(
            f"{name}_fc2",
            synthetic_linear_weights(48, 96, rng, std=0.15),
            fuse_relu=True,
        ),
        Linear(f"{name}_fc3", synthetic_linear_weights(10, 48, rng, std=0.15)),
    ]
    model = QuantizedModel(name, layers, input_shape=(128,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 128))))
    return model


@pytest.fixture(scope="module")
def procpool_setup():
    """Two models hosted twice (thread and process backends) + requests."""
    models = {
        name: build_model(name, seed=11 + i) for i, name in enumerate(MODEL_NAMES)
    }
    rng = np.random.default_rng(7)
    requests = {
        name: [
            np.abs(rng.normal(0, 1, size=(SAMPLES_PER_REQUEST, 128)))
            for _ in range(REQUESTS_PER_MODEL)
        ]
        for name in MODEL_NAMES
    }
    thread_registry = ModelRegistry()
    process_registry = ModelRegistry()
    for name, model in models.items():
        thread_registry.register(name, model)
        process_registry.register(name, model, backend="process")
        # Warm executors/workers outside every timed region.
        thread_registry.engine(name).run(requests[name][0])
        process_registry.engine(name).run(requests[name][0])
    yield thread_registry, process_registry, requests
    process_registry.close()


def run_backend(
    registry: ModelRegistry, requests: dict[str, list[np.ndarray]]
) -> dict[str, np.ndarray]:
    """Drain the interleaved two-model stream -> per-model stacked outputs."""
    server = InferenceServer(registry, BATCH_POLICY, max_workers=len(MODEL_NAMES))
    futures = {name: [] for name in MODEL_NAMES}
    for i in range(REQUESTS_PER_MODEL):
        for name in MODEL_NAMES:
            futures[name].append(server.submit(name, requests[name][i]))
    with server:  # starting after submit makes batch formation deterministic
        results = {
            name: np.concatenate([f.result(timeout=60) for f in futures[name]], axis=0)
            for name in MODEL_NAMES
        }
    return results


def best_of(func, rounds: int = 3):
    """Best wall time over a few rounds (plus the last result)."""
    func()  # warm-up
    timings, result = [], None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        timings.append(time.perf_counter() - start)
    return min(timings), result


def test_bench_thread_backend(benchmark, procpool_setup):
    thread_registry, _process_registry, requests = procpool_setup
    outputs = benchmark.pedantic(
        run_backend, args=(thread_registry, requests), rounds=1, iterations=1
    )
    assert outputs["mlp_a"].shape == (REQUESTS_PER_MODEL * SAMPLES_PER_REQUEST, 10)


def test_bench_process_backend(benchmark, procpool_setup):
    _thread_registry, process_registry, requests = procpool_setup
    outputs = benchmark.pedantic(
        run_backend, args=(process_registry, requests), rounds=1, iterations=1
    )
    assert outputs["mlp_b"].shape == (REQUESTS_PER_MODEL * SAMPLES_PER_REQUEST, 10)


def test_process_backend_bit_identical(procpool_setup):
    """Backends are pure scheduling changes: outputs match bit for bit."""
    thread_registry, process_registry, requests = procpool_setup
    thread_outputs = run_backend(thread_registry, requests)
    process_outputs = run_backend(process_registry, requests)
    for name in MODEL_NAMES:
        direct = thread_registry.engine(name).run(
            np.concatenate(requests[name], axis=0)
        )
        assert np.array_equal(thread_outputs[name], direct)
        assert np.array_equal(process_outputs[name], direct)


def test_procpool_throughput_speedup(procpool_setup):
    """Process workers must beat the thread backend >= 1.5x on >= 2 cores.

    MIN_PROCPOOL_SPEEDUP keeps the bar configurable per environment; the CI
    ``kernels`` job enforces the default 1.5x on its multi-core runners.
    """
    if available_cpus() < 2:
        pytest.skip("process parallelism needs at least 2 CPUs")
    minimum = float(os.environ.get("MIN_PROCPOOL_SPEEDUP", "1.5"))
    thread_registry, process_registry, requests = procpool_setup

    thread_time, thread_outputs = best_of(
        lambda: run_backend(thread_registry, requests)
    )
    process_time, process_outputs = best_of(
        lambda: run_backend(process_registry, requests)
    )
    for name in MODEL_NAMES:
        assert np.array_equal(thread_outputs[name], process_outputs[name])

    total_requests = len(MODEL_NAMES) * REQUESTS_PER_MODEL
    speedup = thread_time / process_time
    assert speedup >= minimum, (
        f"process backend only {speedup:.2f}x thread throughput "
        f"({total_requests / process_time:.0f} vs "
        f"{total_requests / thread_time:.0f} req/s)"
    )
