"""Regression benchmarks for admission control under synthetic overload.

Three contracts from the admission ISSUE, all asserted here and in CI:

1. **Shedding doomed work lowers the SLO miss rate.**  A burst of
   tight-deadline requests (only the queue head can meet them) is followed
   by a wave of feasible requests.  Without admission control the doomed
   burst still executes and the feasible wave queues behind it past its
   deadlines; with admission control the doomed requests are shed at submit
   and the feasible wave meets its SLO.  Counting a shed request as a miss
   (it was never served), the deadline-miss rate with admission must be
   *strictly below* the no-admission baseline.

2. **A shed decision costs microseconds and never touches an engine.**  The
   mean submit latency of a stream of shed requests must stay below
   ``MAX_ADMISSION_DECISION_US`` (1 ms by default -- locally the decision is
   tens of microseconds of queue arithmetic), with zero engine runs observed.

3. **Admission never changes the arithmetic.**  Every admitted request's
   output is bit-identical to a direct ``engine.run`` on its inputs.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.hw import RAELLA_ARCH
from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
)
from repro.telemetry import TelemetryCollector

SAMPLES_PER_REQUEST = 8
N_DOOMED = 20
N_FEASIBLE = 8
BATCH_POLICY = BatchingPolicy(max_batch_size=SAMPLES_PER_REQUEST, max_delay_s=0.0005)


@pytest.fixture(scope="module")
def overload_setup():
    """A cost-modeled tenant, request streams, and a measured batch time."""
    rng = np.random.default_rng(17)
    fc1 = Linear(
        "fc1", synthetic_linear_weights(96, 128, rng, std=0.15), fuse_relu=True
    )
    fc2 = Linear("fc2", synthetic_linear_weights(10, 96, rng, std=0.15))
    model = QuantizedModel("admit_mlp", [fc1, fc2], input_shape=(128,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, 128))))
    registry = ModelRegistry()
    registry.register("m", model, arch=RAELLA_ARCH)
    requests = [
        np.abs(rng.normal(0, 1, size=(SAMPLES_PER_REQUEST, 128)))
        for _ in range(N_DOOMED + N_FEASIBLE)
    ]
    engine = registry.engine("m")
    engine.run(requests[0])  # warm caches out of the timed region
    batch_time = min(timed_run(engine, requests[0]) for _ in range(3))
    return registry, requests, batch_time


def timed_run(engine, inputs) -> float:
    start = time.perf_counter()
    engine.run(inputs)
    return time.perf_counter() - start


def calibrated_telemetry(registry: ModelRegistry, batch_time: float):
    """A collector whose latency prediction is calibrated to this machine.

    The wall-per-modeled EMA is seeded from the measured one-batch wall
    time, exactly what a warmed-up serving process would have learned.
    """
    telemetry = TelemetryCollector()
    telemetry.attach_cost_model("m", registry.cost_model("m"))
    for _ in range(5):
        telemetry.record_engine_run("m", SAMPLES_PER_REQUEST, batch_time)
    return telemetry


def run_overload(
    registry: ModelRegistry,
    requests: list[np.ndarray],
    batch_time: float,
    admission: bool,
):
    """Submit a doomed burst then a feasible wave; drain; account outcomes."""
    telemetry = calibrated_telemetry(registry, batch_time)
    controller = AdmissionController(AdmissionPolicy()) if admission else None
    server = InferenceServer(
        registry,
        BATCH_POLICY,
        max_workers=1,
        telemetry=telemetry,
        admission=controller,
    )
    doomed_deadline = 2.5 * batch_time
    feasible_deadline = (N_FEASIBLE + 8) * batch_time
    decisions = []
    for request in requests[:N_DOOMED]:
        decisions.append(server.submit("m", request, deadline_s=doomed_deadline))
    for request in requests[N_DOOMED:]:
        decisions.append(server.submit("m", request, deadline_s=feasible_deadline))
    with server:  # starting after submit makes admission evidence deterministic
        outputs = [
            decision.result(timeout=60) if decision.accepted else None
            for decision in decisions
        ]
    missed_by_id = {
        trace.request_id: trace.deadline_missed for trace in telemetry.traces("m")
    }
    # A shed request was never served: it counts as an SLO miss.
    misses = sum(
        1 if not decision.accepted else int(missed_by_id[decision.request_id])
        for decision in decisions
    )
    shed = sum(1 for decision in decisions if not decision.accepted)
    return misses / len(decisions), shed, decisions, outputs


def test_admission_lowers_slo_miss_rate_under_overload(overload_setup):
    registry, requests, batch_time = overload_setup
    baseline_rate, baseline_shed, _, baseline_outputs = run_overload(
        registry, requests, batch_time, admission=False
    )
    admission_rate, admission_shed, decisions, admission_outputs = run_overload(
        registry, requests, batch_time, admission=True
    )

    # The baseline accepts everything; admission must actually shed the
    # doomed burst but keep the feasible wave.
    assert baseline_shed == 0
    assert admission_shed > 0, "overload too light: nothing was shed"
    assert admission_shed < len(decisions), "everything was shed"
    assert any(d.accepted for d in decisions[N_DOOMED:]), (
        "the feasible wave should have been admitted"
    )

    # The headline contract: strictly lower miss rate, sheds counted as
    # misses (early rejection must win by protecting feasible work, not by
    # hiding refused work from the denominator).
    assert admission_rate < baseline_rate, (
        f"admission control missed {admission_rate:.0%} of SLOs "
        f"(shed {admission_shed}), no-admission baseline "
        f"{baseline_rate:.0%} -- expected strictly fewer"
    )

    # Admission never changes the arithmetic: every admitted output is
    # bit-identical to a direct engine run on the same inputs.
    engine = registry.engine("m")
    for request, decision, output in zip(requests, decisions, admission_outputs):
        if decision.accepted:
            assert np.array_equal(output, engine.run(request))
    for request, output in zip(requests, baseline_outputs):
        assert np.array_equal(output, engine.run(request))


def shed_submitter(registry: ModelRegistry):
    """A never-started server whose next submit always sheds by depth cap."""
    telemetry = TelemetryCollector()
    controller = AdmissionController(
        AdmissionPolicy(max_queue_samples_per_model=4 * SAMPLES_PER_REQUEST)
    )
    server = InferenceServer(
        registry, BATCH_POLICY, telemetry=telemetry, admission=controller
    )
    rng = np.random.default_rng(23)
    filler = np.abs(rng.normal(0, 1, size=(SAMPLES_PER_REQUEST, 128)))
    for _ in range(4):  # fill the cap with a realistic pending backlog
        assert server.submit("m", filler).accepted
    return server, telemetry, filler


def test_shed_decision_is_microseconds_without_an_engine(overload_setup):
    maximum_us = float(os.environ.get("MAX_ADMISSION_DECISION_US", "1000"))
    registry, _, _ = overload_setup
    server, telemetry, filler = shed_submitter(registry)

    n_sheds = 200
    server.submit("m", filler)  # warm the decision path
    start = time.perf_counter()
    decisions = [server.submit("m", filler) for _ in range(n_sheds)]
    elapsed = time.perf_counter() - start

    assert all(d.status == "shed" for d in decisions)
    mean_us = elapsed / n_sheds * 1e6
    assert mean_us <= maximum_us, (
        f"shed decision took {mean_us:.0f}us on average "
        f"(bound {maximum_us:.0f}us)"
    )
    # No engine was ever touched: the server never even started, and the
    # collector observed zero engine runs and zero completed requests.
    assert server.statistics().batches_executed == 0
    assert telemetry.aggregate("m").engine_runs == 0
    assert telemetry.aggregate("m").requests == 0
    assert telemetry.aggregate("m").shed_requests == n_sheds + 1


def test_bench_shed_decision(benchmark, overload_setup):
    """pytest-benchmark timing artifact for the shed decision hot path."""
    registry, _, _ = overload_setup
    server, _, filler = shed_submitter(registry)
    decision = benchmark(lambda: server.submit("m", filler))
    assert decision.status == "shed"
