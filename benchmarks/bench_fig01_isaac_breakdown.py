"""Benchmark E1 -- Fig. 1: energy breakdown of the ISAAC-based design."""

from repro.experiments.fig01_breakdown import run_fig01


def test_fig01_isaac_energy_breakdown(benchmark):
    result = benchmark(run_fig01, "resnet18")
    benchmark.extra_info["adc_fraction"] = round(result.adc_fraction, 3)
    benchmark.extra_info["crossbar_fj_per_mac"] = round(
        result.crossbar_energy_per_mac_fj, 1
    )
    benchmark.extra_info["total_uj"] = round(result.total_uj, 1)
    # Paper: ADCs dominate overall energy; crossbars compute 8b MACs < 100 fJ.
    assert result.adc_fraction > 0.5
    assert result.crossbar_energy_per_mac_fj < 150
