"""Benchmark E12 -- Fig. 14: energy ablation of RAELLA's strategies."""

from repro.experiments.fig14_ablation import run_fig14
from repro.nn.zoo import CNN_MODEL_NAMES


def test_fig14_energy_ablation(benchmark):
    result = benchmark(run_fig14, CNN_MODEL_NAMES)
    benchmark.extra_info["converts_per_mac_by_setup"] = {
        setup: round(result.mean_converts_per_mac(setup), 4)
        for setup in result.setup_names
    }
    benchmark.extra_info["resnet18_reduction_vs_isaac"] = {
        setup: round(result.energy_reduction_vs_isaac(setup, "resnet18"), 2)
        for setup in result.setup_names
    }
    # Paper (Section 7.1): Converts/MAC falls 0.25 -> 0.063 -> 0.047 -> 0.018
    # as the strategies are applied, and every strategy reduces total energy
    # relative to ISAAC.  The per-MAC values are checked on ResNet18 (the
    # paper's reference DNN); the depthwise-separable compact models have much
    # shorter filters and correspondingly higher Converts/MAC on every setup.
    converts = [result.mean_converts_per_mac(s) for s in result.setup_names]
    assert converts == sorted(converts, reverse=True)
    resnet_converts = [
        result.converts_per_mac[(setup, "resnet18")] for setup in result.setup_names
    ]
    assert resnet_converts == sorted(resnet_converts, reverse=True)
    assert resnet_converts[0] > 0.2 and resnet_converts[-1] < 0.05
    for model in result.model_names:
        for setup in result.setup_names[1:]:
            # Every strategy reduces energy on every DNN; compact DNNs
            # (ShuffleNet/MobileNet) benefit less, as in the paper.
            assert result.energy_reduction_vs_isaac(setup, model) > 1.3
        assert result.energy_reduction_vs_isaac("raella", model) > 2.0
