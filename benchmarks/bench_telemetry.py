"""Regression benchmarks for the serving telemetry subsystem.

Two contracts from the telemetry ISSUE, both asserted here and in CI:

1. **Metering is (nearly) free.**  Serving an identical request stream with a
   :class:`~repro.telemetry.TelemetryCollector` attached (cost attribution,
   per-request traces, SLO bookkeeping) must keep throughput within
   ``MAX_TELEMETRY_OVERHEAD`` of the untraced server (1.05 = 5% locally; CI
   relaxes the bar for noisy shared runners) -- and stay bit-identical.

2. **SLO-aware dispatch beats FIFO where it matters.**  Under a mixed
   priority/deadline load (a backlog of loose-deadline bulk requests ahead of
   tight-deadline interactive ones), the deadline-miss rate with SLO
   scheduling must be *strictly below* the FIFO scheduler's on the same
   stream, with outputs again bit-identical.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.hw import RAELLA_ARCH
from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry
from repro.telemetry import TelemetryCollector

N_REQUESTS = 96
BATCH_POLICY = BatchingPolicy(max_batch_size=32, max_delay_s=0.005)


def make_model(name: str, in_features: int, hidden: int, seed: int) -> QuantizedModel:
    rng = np.random.default_rng(seed)
    fc1 = Linear(
        "fc1",
        synthetic_linear_weights(hidden, in_features, rng, std=0.15),
        fuse_relu=True,
    )
    fc2 = Linear("fc2", synthetic_linear_weights(10, hidden, rng, std=0.15))
    model = QuantizedModel(name, [fc1, fc2], input_shape=(in_features,))
    model.calibrate(np.abs(rng.normal(0, 1, size=(64, in_features))))
    return model


@pytest.fixture(scope="module")
def overhead_setup():
    """One registered model (with cost tables) and a request stream.

    Requests carry a few samples each so the comparison reflects a realistic
    engine-time-per-request; the per-request metering cost (a trace record
    plus an aggregate update) is constant either way.
    """
    rng = np.random.default_rng(11)
    registry = ModelRegistry()
    registry.register("mlp", make_model("mlp", 128, 64, seed=11), arch=RAELLA_ARCH)
    requests = [np.abs(rng.normal(0, 1, size=(8, 128))) for _ in range(N_REQUESTS)]
    registry.engine("mlp").run(requests[0])  # warm caches out of timed region
    return registry, requests


def drain_server(
    registry: ModelRegistry,
    requests: list[np.ndarray],
    telemetry: TelemetryCollector | None,
) -> np.ndarray:
    """Enqueue every request, let the scheduler drain, return all outputs."""
    server = InferenceServer(registry, BATCH_POLICY, telemetry=telemetry)
    futures = [server.submit("mlp", r) for r in requests]
    with server:  # starting after submit makes batch formation deterministic
        results = [f.result(timeout=30) for f in futures]
    return np.concatenate(results, axis=0)


def test_telemetry_overhead_within_bound(overhead_setup):
    """Metered serving must stay within MAX_TELEMETRY_OVERHEAD of untraced.

    Rounds interleave the two configurations and both take their best time,
    so shared-machine noise hits each side equally.
    """
    maximum = float(os.environ.get("MAX_TELEMETRY_OVERHEAD", "1.05"))
    registry, requests = overhead_setup

    drain_server(registry, requests, None)  # warm-up
    drain_server(registry, requests, TelemetryCollector())
    plain_times, traced_times = [], []
    plain_outputs = traced_outputs = None
    for _ in range(5):
        start = time.perf_counter()
        plain_outputs = drain_server(registry, requests, None)
        plain_times.append(time.perf_counter() - start)
        telemetry = TelemetryCollector()
        start = time.perf_counter()
        traced_outputs = drain_server(registry, requests, telemetry)
        traced_times.append(time.perf_counter() - start)

    # Metering must not change a single bit of any result.
    assert np.array_equal(plain_outputs, traced_outputs)
    # And the accounting must actually have happened.
    aggregate = telemetry.aggregate("mlp")
    assert aggregate.requests == N_REQUESTS
    assert aggregate.modeled_energy_pj > 0

    overhead = min(traced_times) / min(plain_times)
    assert overhead <= maximum, (
        f"telemetry overhead {overhead:.3f}x exceeds {maximum:.2f}x "
        f"(untraced {min(plain_times) * 1e3:.1f}ms, "
        f"traced {min(traced_times) * 1e3:.1f}ms for {N_REQUESTS} requests)"
    )


@pytest.fixture(scope="module")
def slo_setup():
    """A bulk tenant and an interactive tenant sharing one registry."""
    registry = ModelRegistry()
    registry.register("bulk", make_model("bulk", 128, 96, seed=3), arch=RAELLA_ARCH)
    registry.register(
        "interactive",
        make_model("interactive", 64, 48, seed=4),
        arch=RAELLA_ARCH,
    )
    rng = np.random.default_rng(5)
    bulk = [np.abs(rng.normal(0, 1, size=(8, 128))) for _ in range(48)]
    interactive = [np.abs(rng.normal(0, 1, size=(2, 64))) for _ in range(6)]
    registry.engine("bulk").run(bulk[0])
    registry.engine("interactive").run(interactive[0])
    return registry, bulk, interactive


def run_mixed_load(
    registry: ModelRegistry,
    bulk: list[np.ndarray],
    interactive: list[np.ndarray],
    slo_scheduling: bool,
    interactive_deadline_s: float | None,
) -> tuple[TelemetryCollector, list[np.ndarray], list[np.ndarray], float]:
    """Pre-submit a bulk backlog ahead of interactive requests, then drain.

    One worker serialises execution, so dispatch *order* decides whether the
    late-arriving interactive requests wait behind the entire bulk backlog
    (FIFO) or jump it (SLO-aware).
    """
    telemetry = TelemetryCollector()
    server = InferenceServer(
        registry,
        BatchingPolicy(max_batch_size=32, max_delay_s=0.001),
        max_workers=1,
        telemetry=telemetry,
        slo_scheduling=slo_scheduling,
    )
    bulk_futures = [server.submit("bulk", r, priority=0, deadline_s=60.0) for r in bulk]
    interactive_futures = [
        server.submit("interactive", r, priority=1, deadline_s=interactive_deadline_s)
        for r in interactive
    ]
    start = time.perf_counter()
    with server:
        bulk_results = [f.result(timeout=60) for f in bulk_futures]
        interactive_results = [f.result(timeout=60) for f in interactive_futures]
    elapsed = time.perf_counter() - start
    return telemetry, bulk_results, interactive_results, elapsed


def test_slo_scheduling_beats_fifo_miss_rate(slo_setup):
    registry, bulk, interactive = slo_setup
    direct_bulk = [registry.engine("bulk").run(r) for r in bulk]
    direct_interactive = [registry.engine("interactive").run(r) for r in interactive]

    # Calibrate the interactive deadline to this machine: a third of the
    # time a full FIFO drain takes, so interactive requests stuck behind the
    # bulk backlog must miss while a jumped-queue service comfortably meets.
    _, _, _, drain_time = run_mixed_load(
        registry,
        bulk,
        interactive,
        slo_scheduling=False,
        interactive_deadline_s=60.0,
    )
    deadline = max(drain_time / 3.0, 0.010)

    fifo, fifo_bulk, fifo_interactive, _ = run_mixed_load(
        registry,
        bulk,
        interactive,
        slo_scheduling=False,
        interactive_deadline_s=deadline,
    )
    slo, slo_bulk, slo_interactive, _ = run_mixed_load(
        registry,
        bulk,
        interactive,
        slo_scheduling=True,
        interactive_deadline_s=deadline,
    )

    # Reordering dispatch never changes any request's bits.
    for expected, fifo_out, slo_out in zip(direct_bulk, fifo_bulk, slo_bulk):
        assert np.array_equal(expected, fifo_out)
        assert np.array_equal(expected, slo_out)
    for expected, fifo_out, slo_out in zip(
        direct_interactive, fifo_interactive, slo_interactive
    ):
        assert np.array_equal(expected, fifo_out)
        assert np.array_equal(expected, slo_out)

    fifo_rate = fifo.aggregate("interactive").deadline_miss_rate
    slo_rate = slo.aggregate("interactive").deadline_miss_rate
    assert fifo_rate > 0.0, (
        f"FIFO baseline missed no deadlines (deadline {deadline * 1e3:.1f}ms, "
        "load too light to discriminate)"
    )
    assert slo_rate < fifo_rate, (
        f"SLO scheduling missed {slo_rate:.0%} of interactive deadlines, "
        f"FIFO {fifo_rate:.0%} -- expected strictly fewer "
        f"(deadline {deadline * 1e3:.1f}ms)"
    )
