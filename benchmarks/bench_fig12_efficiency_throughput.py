"""Benchmark E8 -- Fig. 12: efficiency and throughput normalised to ISAAC."""

from repro.experiments.fig12_efficiency import run_fig12
from repro.nn.zoo import MODEL_NAMES


def test_fig12_efficiency_and_throughput(benchmark):
    result = benchmark(run_fig12, MODEL_NAMES)
    benchmark.extra_info["geomean_efficiency_gain"] = round(
        result.geomean_efficiency_gain, 2
    )
    benchmark.extra_info["geomean_efficiency_gain_no_spec"] = round(
        result.geomean_efficiency_gain_no_spec, 2
    )
    benchmark.extra_info["geomean_throughput_gain"] = round(
        result.geomean_throughput_gain, 2
    )
    benchmark.extra_info["geomean_throughput_gain_no_spec"] = round(
        result.geomean_throughput_gain_no_spec, 2
    )
    benchmark.extra_info["per_model_efficiency"] = {
        row.model_name: round(row.efficiency_gain, 2) for row in result.rows
    }
    # Paper: efficiency 2.9-4.9x (geomean 3.9x), throughput 0.7-3.3x
    # (geomean 2.0x); without speculation 2.8x / 2.7x.  The shape to preserve:
    # RAELLA wins on every DNN's energy, compact DNNs lose throughput, the
    # Transformer gains the most throughput, and speculation helps efficiency
    # while costing throughput.
    assert 3.0 < result.geomean_efficiency_gain < 5.5
    assert result.geomean_efficiency_gain > result.geomean_efficiency_gain_no_spec
    assert result.geomean_throughput_gain_no_spec > result.geomean_throughput_gain
    by_name = {row.model_name: row for row in result.rows}
    assert by_name["shufflenetv2"].throughput_gain < 1.0
    assert by_name["bert_large_ffn"].throughput_gain > 2.5
    assert all(row.efficiency_gain > 2.5 for row in result.rows)
