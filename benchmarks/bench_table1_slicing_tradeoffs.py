"""Benchmark E2 -- Table 1: slicing tradeoffs of a 2b x 2b MAC."""

from repro.experiments.table1_slicing import run_table1


def test_table1_slicing_tradeoffs(benchmark):
    rows = benchmark(run_table1)
    by_config = {(r.sliced_input, r.sliced_weight): r for r in rows}
    benchmark.extra_info["converts_per_mac"] = {
        str(k): v.converts_per_mac for k, v in by_config.items()
    }
    # Paper Table 1: converts/MAC goes 1 -> 2 -> 2 -> 4 while bits/MAC
    # goes 4 -> 2 -> 2 -> 1.
    assert by_config[(False, False)].converts_per_mac == 1
    assert by_config[(True, True)].converts_per_mac == 4
    assert by_config[(True, True)].bits_per_mac == 1
