"""Benchmark E7 -- Fig. 8: operand distributions and per-bit densities."""

from repro.experiments.fig08_densities import run_fig08


def test_fig08_bit_densities(benchmark):
    result = benchmark(run_fig08, None, -2, 2, 0)
    benchmark.extra_info["high_order_input_density"] = round(
        result.high_order_input_density, 3
    )
    benchmark.extra_info["high_order_offset_density"] = round(
        result.high_order_offset_density, 3
    )
    benchmark.extra_info["high_order_raw_code_density"] = round(
        result.high_order_weight_code_density, 3
    )
    # Paper: inputs have sparse high-order bits; Center+Offset offsets have
    # sparser high-order bits than raw unsigned weight codes.
    assert result.high_order_input_density < 0.35
    assert result.high_order_offset_density < result.high_order_weight_code_density
