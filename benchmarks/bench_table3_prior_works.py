"""Benchmark E10 -- Table 3: qualitative comparison with prior works."""

from repro.experiments.table3_prior import run_table3


def test_table3_prior_work_classification(benchmark):
    rows = benchmark(run_table3)
    by_name = {r.name: r for r in rows}
    benchmark.extra_info["architectures"] = list(by_name)
    # Paper Table 3: RAELLA is the only design with low ADC cost, no weight
    # limits, low fidelity loss and no retraining requirement.
    raella = by_name["raella"]
    assert not raella.high_cost_adc
    assert not raella.limits_weight_count
    assert raella.fidelity_loss == "low"
    assert not raella.needs_retraining
    assert by_name["isaac"].high_cost_adc
    assert by_name["forms8"].limits_weight_count and by_name["forms8"].needs_retraining
    assert by_name["timely"].fidelity_loss == "high" and by_name[
        "timely"
    ].needs_retraining
