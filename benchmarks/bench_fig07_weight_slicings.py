"""Benchmark E6 -- Fig. 7: per-layer weight slicings chosen by Adaptive Weight Slicing."""

from repro.experiments.fig07_slicings import run_fig07


def test_fig07_adaptive_weight_slicings(run_once, benchmark):
    result = run_once(
        run_fig07,
        model_names=("resnet18", "mobilenetv2"),
        max_test_patches=128,
        n_test_inputs=1,
    )
    summary = {model.model_name: model.slice_count_histogram for model in result.models}
    benchmark.extra_info["slice_count_histograms"] = {
        k: {str(n): c for n, c in v.items()} for k, v in summary.items()
    }
    for model in result.models:
        # Paper: most layers use few (2-4) slices; the last layer always uses
        # the conservative eight 1-bit slices.
        assert model.modal_slice_count <= 4
        assert list(model.per_layer.values())[-1] == (1,) * 8
        assert all(sum(widths) == 8 for widths in model.per_layer.values())
