"""Tests for N-way replica pools and their self-healing behaviour.

The pool contract extends the process-engine contract: hosting a model on N
replicas is a pure scheduling change, so outputs (including seeded noise
draws, which pin dispatch to one replica) stay *bit-identical* to the
in-process :class:`~repro.runtime.NetworkEngine` -- and a replica crash is
invisible to callers: the in-flight batch is requeued onto a sibling and the
dead worker restarted in the background.
"""

import os
import signal
import sys
import time

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.runtime import (
    NetworkEngine,
    ReplicaPool,
    WorkerStartupError,
)
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
)
from repro.telemetry import TelemetryCollector
from tests.test_procpool import reference_engine
from tests.test_runtime_engine import assert_stats_equal


def wait_until(predicate, timeout_s=30.0, interval_s=0.02):
    """Poll ``predicate`` until true or the deadline passes."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class ExplodingOnUnpickle:
    """A noise model that pickles fine here but detonates worker-side.

    ``__setstate__`` runs while the worker rebuilds the spec, before the
    boot handshake -- exactly the window :class:`WorkerStartupError` and its
    stderr tail exist to diagnose.
    """

    def __init__(self):
        self.armed = True

    def apply(self, positive_sums, negative_sums):  # pragma: no cover
        return positive_sums - negative_sums

    def __setstate__(self, state):
        print("synthetic worker boot failure", file=sys.stderr, flush=True)
        os._exit(7)


class HangingOnUnpickle:
    """A noise model whose worker-side rebuild never finishes."""

    def __init__(self):
        self.armed = True

    def apply(self, positive_sums, negative_sums):  # pragma: no cover
        return positive_sums - negative_sums

    def __setstate__(self, state):  # pragma: no cover - runs in the worker
        time.sleep(60)


class TestReplicaPoolParity:
    def test_noiseless_outputs_bit_identical(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(7, 16)))
        reference = reference_engine(tiny_mlp_model)
        with ReplicaPool.launch(tiny_mlp_model, replicas=2) as pool:
            assert pool.replicas == 2
            assert pool.healthy_replicas == 2
            assert pool.dispatch_width == 2
            for _ in range(3):
                assert np.array_equal(reference.run(inputs), pool.run(inputs))
            assert np.array_equal(reference.predict(inputs), pool.predict(inputs))

    def test_seeded_noise_pins_dispatch_and_draws_identically(
        self, tiny_mlp_model, rng
    ):
        # A stateful noise RNG cannot be split across replicas without
        # changing the draw order, so dispatch degrades to one replica and
        # the draw sequence must match the in-process engine exactly.
        inputs = np.abs(rng.normal(0, 1, size=(9, 16)))
        reference = reference_engine(
            tiny_mlp_model, noise=GaussianColumnNoise(level=0.08, seed=5)
        )
        with ReplicaPool.launch(
            tiny_mlp_model,
            noise=GaussianColumnNoise(level=0.08, seed=5),
            replicas=2,
        ) as pool:
            assert pool.dispatch_width == 1
            for _ in range(2):
                assert np.array_equal(reference.run(inputs), pool.run(inputs))

    def test_run_timed_records_carry_replica_index(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(5, 16)))
        with ReplicaPool.launch(tiny_mlp_model, replicas=2) as pool:
            _outputs, elapsed, records = pool.run_timed(inputs)
            assert elapsed > 0
            assert len(records) == 1
            n_samples, seconds, replica = records[0]
            assert n_samples == 5
            assert seconds > 0
            assert replica in ("0", "1")

    def test_layer_statistics_merge_across_replicas(self, tiny_mlp_model, rng):
        first = np.abs(rng.normal(0, 1, size=(4, 16)))
        second = np.abs(rng.normal(0, 1, size=(6, 16)))
        reference = reference_engine(tiny_mlp_model)
        reference.run(first)
        reference.run(second)
        with ReplicaPool.launch(tiny_mlp_model, replicas=2) as pool:
            h0, _h1 = pool._handles
            pool.run(first)  # idle pool: least-loaded picks replica 0
            h0.inflight += 1  # force the next batch onto replica 1
            try:
                pool.run(second)
            finally:
                h0.inflight -= 1
            remote = pool.layer_statistics()
            for name, stats in reference.layer_statistics().items():
                assert_stats_equal(stats, remote[name])
            assert_stats_equal(
                reference.network_statistics(), pool.network_statistics()
            )
            pool.reset_statistics()
            assert pool.network_statistics().n_inputs == 0

    def test_least_loaded_dispatch(self, tiny_mlp_model):
        with ReplicaPool.launch(tiny_mlp_model, replicas=2) as pool:
            h0, h1 = pool._handles
            handle, _worker = pool._acquire()
            assert handle is h0  # idle pool: ties break by index
            inner, _worker = pool._acquire()
            assert inner is h1  # replica 0 busy: load steers to replica 1
            pool._release(inner)
            pool._release(handle)


class TestSelfHealing:
    def test_sigkill_mid_batch_requeues_onto_sibling(self, tiny_mlp_model, rng):
        # The batch riding the killed replica must complete bit-identically
        # on a sibling with zero caller-visible failures, and the dead slot
        # must come back healthy with a fresh process.
        inputs = np.abs(rng.normal(0, 1, size=(4096, 16)))
        expected = reference_engine(tiny_mlp_model).run(inputs)
        with ReplicaPool.launch(
            tiny_mlp_model, replicas=2, probe_interval_s=0.05
        ) as pool:
            results = {}
            import threading

            def run():
                results["outputs"] = pool.run(inputs)

            runner = threading.Thread(target=run)
            runner.start()
            busy = None

            def find_busy():
                nonlocal busy
                for handle in pool._handles:
                    if handle.inflight > 0:
                        busy = handle.pid
                        return True
                return False

            assert wait_until(find_busy)
            os.kill(busy, signal.SIGKILL)
            runner.join(timeout=60)
            assert not runner.is_alive()
            assert np.array_equal(results["outputs"], expected)
            assert wait_until(
                lambda: pool.restart_count >= 1 and pool.healthy_replicas == 2
            )
            assert busy not in pool.replica_pids()

    def test_idle_crash_detected_by_prober_and_restarted(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        expected = reference_engine(tiny_mlp_model).run(inputs)
        with ReplicaPool.launch(
            tiny_mlp_model, replicas=2, probe_interval_s=0.05
        ) as pool:
            victim = pool.replica_pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert wait_until(
                lambda: pool.restart_count >= 1 and pool.healthy_replicas == 2
            )
            health = pool.pool_health()
            assert health["healthy"] == 2
            assert health["replicas"] == 2
            assert health["restarts"] >= 1
            assert victim not in pool.replica_pids()
            assert np.array_equal(pool.run(inputs), expected)

    def test_startup_crash_raises_typed_error_with_stderr_tail(self, tiny_mlp_model):
        with pytest.raises(WorkerStartupError, match="failed to start") as info:
            ReplicaPool.launch(tiny_mlp_model, noise=ExplodingOnUnpickle(), replicas=1)
        assert "synthetic worker boot failure" in info.value.stderr_tail
        assert "synthetic worker boot failure" in str(info.value)

    def test_startup_timeout_raises_typed_error(self, tiny_mlp_model):
        with pytest.raises(WorkerStartupError, match="failed to start"):
            ReplicaPool.launch(
                tiny_mlp_model,
                noise=HangingOnUnpickle(),
                replicas=1,
                start_timeout_s=0.2,
                shutdown_timeout_s=0.5,
            )

    def test_timeouts_and_replica_counts_validated(self, tiny_mlp_model):
        with pytest.raises(ValueError, match="timeout"):
            ReplicaPool.launch(tiny_mlp_model, start_timeout_s=0.0)
        with pytest.raises(ValueError, match="replicas"):
            ReplicaPool.launch(tiny_mlp_model, replicas=0)
        with pytest.raises(ValueError, match="blas_threads"):
            ReplicaPool.launch(tiny_mlp_model, blas_threads=0)


class TestBlasPinning:
    def test_workers_report_pinned_thread_counts(self, tiny_mlp_model):
        with ReplicaPool.launch(tiny_mlp_model, replicas=2, blas_threads=2) as pool:
            metas = [handle.worker.ping() for handle in pool._handles]
            assert {meta["blas_threads"] for meta in metas} == {"2"}
            assert len({meta["pid"] for meta in metas}) == 2

    def test_default_is_one_thread_per_worker(self, tiny_mlp_model):
        with ReplicaPool.launch(tiny_mlp_model, replicas=1) as pool:
            meta = pool._handles[0].worker.ping()
            assert meta["blas_threads"] == "1"


class TestRegistryReplicas:
    def test_register_with_replicas(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        with ModelRegistry() as registry:
            engine = registry.register(
                "mlp", tiny_mlp_model, backend="process", replicas=2
            )
            assert isinstance(engine, ReplicaPool)
            assert engine.replicas == 2
            assert np.array_equal(
                reference_engine(tiny_mlp_model, float32=True).run(inputs),
                engine.run(inputs),
            )

    def test_replicas_require_process_backend(self, tiny_mlp_model):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="replicas"):
            registry.register("a", tiny_mlp_model, replicas=2)
        with pytest.raises(ValueError, match="replicas"):
            registry.register("b", tiny_mlp_model, backend="process", replicas=0)

    def test_rolling_replace_keeps_pool_and_resizes(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        expected = reference_engine(tiny_mlp_model, float32=True).run(inputs)
        with ModelRegistry() as registry:
            engine = registry.register(
                "mlp", tiny_mlp_model, backend="process", replicas=2
            )
            old_pids = set(engine.replica_pids())
            rolled = registry.register(
                "mlp",
                tiny_mlp_model,
                backend="process",
                replicas=3,
                replace=True,
            )
            # The pool object survives the roll: in-flight dispatches keep a
            # valid engine reference while every worker is replaced.
            assert rolled is engine
            assert engine.replicas == 3
            assert engine.healthy_replicas == 3
            assert not old_pids & set(engine.replica_pids())
            assert np.array_equal(engine.run(inputs), expected)
            # replicas=None keeps the rolled width.
            registry.register("mlp", tiny_mlp_model, backend="process", replace=True)
            assert engine.replicas == 3
            # Without replace the duplicate is still rejected.
            with pytest.raises(ValueError, match="already registered"):
                registry.register("mlp", tiny_mlp_model, backend="process")

    def test_replace_swaps_backend_kinds(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        with ModelRegistry() as registry:
            pool = registry.register(
                "mlp", tiny_mlp_model, backend="process", replicas=2
            )
            threaded = registry.register(
                "mlp", tiny_mlp_model, backend="thread", replace=True
            )
            assert isinstance(threaded, NetworkEngine)
            assert pool.closed  # the displaced pool is drained and closed
            assert np.array_equal(
                reference_engine(tiny_mlp_model, float32=True).run(inputs),
                threaded.run(inputs),
            )

    def test_unregister_and_close_idempotent(self, tiny_mlp_model):
        registry = ModelRegistry()
        engine = registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
        assert registry.unregister("mlp") is True
        assert engine.closed
        assert registry.unregister("mlp") is False
        registry.register("again", tiny_mlp_model, backend="process")
        registry.close()
        registry.close()
        assert len(registry) == 0


class TestServingIntegration:
    def test_server_records_per_replica_telemetry(self, tiny_mlp_model, rng):
        telemetry = TelemetryCollector()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=0.001)
        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
            with InferenceServer(registry, policy, telemetry=telemetry) as server:
                futures = [
                    server.submit("mlp", np.abs(rng.normal(0, 1, size=(4, 16))))
                    for _ in range(10)
                ]
                outputs = [future.result() for future in futures]
        assert all(out.shape == (4, 4) for out in outputs)
        aggregate = telemetry.aggregates()["mlp"]
        assert aggregate.replicas_total == 2
        assert aggregate.replicas_healthy == 2
        assert aggregate.worker_restarts == 0
        per_replica = aggregate.replica_engine_runs
        assert sum(r["runs"] for r in per_replica.values()) == aggregate.engine_runs
        assert (
            sum(r["samples"] for r in per_replica.values())
            == aggregate.engine_run_samples
        )
        payload = aggregate.as_dict()
        assert payload["replicas_total"] == 2
        assert payload["replica_engine_runs"] == per_replica
        prometheus = telemetry.to_prometheus()
        assert 'repro_replicas_total{model="mlp"} 2' in prometheus
        assert 'repro_replicas_healthy{model="mlp"} 2' in prometheus
        assert 'repro_worker_restarts_total{model="mlp"} 0' in prometheus
        assert "repro_replica_engine_runs_total" in prometheus

    def test_admission_predictions_scale_with_replicas(self):
        controller = AdmissionController(AdmissionPolicy())

        def predictor(model_name, n_samples):
            return n_samples * 0.1

        kwargs = dict(
            request_id=0,
            model_name="m",
            tenant="m",
            n_samples=10,
            priority=0,
            deadline_s=0.7,
            backlog_samples={},
            tenants={},
            predictor=predictor,
        )
        # One engine predicts 1.0s for 10 samples: the 0.7s deadline is
        # provably unmeetable.  Two healthy replicas halve the drain time
        # and the same request is admitted.
        assert controller.decide(**kwargs).status == "shed"
        decision = controller.decide(**kwargs, replica_counts={"m": 2})
        assert decision.status == "accepted"
