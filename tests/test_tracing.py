"""Tests for :mod:`repro.telemetry.tracing` and the instrumented server.

The contract under test:

* :class:`Tracer` samples deterministically, hands out unique trace ids, and
  costs nothing when disabled; :class:`TraceHandle` freezes on finish;
  :class:`FlightRecorder` is a bounded ring whose dump is valid Chrome
  trace-event JSON (Perfetto-loadable).
* A request served with a tracer attached produces one trace whose child
  spans (admission, queue wait, dispatch, execute, completion) cover the
  root ``request`` span's wall time within 1% -- through the thread backend
  *and* a process-backed replica pool, where the worker-side ``engine`` span
  must carry the worker's pid.
* A replica SIGKILLed mid-batch leaves both attempts in the trace: a
  ``crashed`` engine span attributed to the dead replica and an ``ok``
  engine span attributed to the sibling that absorbed the requeue.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
)
from repro.telemetry import (
    FlightRecorder,
    SpanRecord,
    TelemetryCollector,
    Tracer,
)
from repro.telemetry.tracing import REQUEST_SPAN, SERVE_SPANS

POLICY = BatchingPolicy(max_batch_size=16, max_delay_s=0.001)

#: Keys every Chrome trace event must carry; complete (ph="X") events
#: additionally need a duration.
_CHROME_REQUIRED = ("name", "cat", "ph", "ts", "pid", "tid")


def wait_until(predicate, timeout_s=30.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def make_inputs(n_requests, seed=7):
    rng = np.random.default_rng(seed)
    return [np.abs(rng.normal(0, 1, size=(1 + i % 3, 16))) for i in range(n_requests)]


def span_map(spans):
    """Group a finished trace's spans by name."""
    grouped = {}
    for span in spans:
        grouped.setdefault(span.name, []).append(span)
    return grouped


def union_coverage(root, children):
    """Fraction of the root span's wall time covered by the children's union."""
    intervals = sorted(
        (max(span.start_s, root.start_s), min(span.end_s, root.end_s))
        for span in children
    )
    covered, cursor = 0.0, root.start_s
    for start, end in intervals:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered / root.duration_s


class TestTracerSampling:
    def test_rate_one_traces_every_request(self):
        tracer = Tracer(sample_rate=1.0)
        handles = [tracer.begin("m", i) for i in range(8)]
        assert all(handle is not None for handle in handles)
        assert len({handle.trace_id for handle in handles}) == 8

    def test_deterministic_one_in_n(self):
        tracer = Tracer(sample_rate=0.25)
        sampled = [tracer.begin("m", i) is not None for i in range(12)]
        assert sampled == [True, False, False, False] * 3

    def test_rate_zero_and_disabled_never_sample(self):
        assert Tracer(sample_rate=0.0).begin("m", 0) is None
        tracer = Tracer(enabled=False)
        assert tracer.begin("m", 0) is None
        tracer.record_event("ignored")  # no-op, not an error
        assert len(tracer.recorder) == 0

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            Tracer(sample_rate=-0.1)

    def test_enable_toggle_at_runtime(self):
        tracer = Tracer(sample_rate=1.0, enabled=False)
        assert tracer.begin("m", 0) is None
        tracer.enabled = True
        assert tracer.begin("m", 1) is not None


class TestTraceHandle:
    def test_finish_freezes_root_last_and_records(self):
        tracer = Tracer()
        handle = tracer.begin("m", 3)
        handle.add_span("admission", 1.0, 1.5, status="accepted")
        assert not handle.finished
        assert handle.spans() == ()
        handle.finish(status="ok")
        assert handle.finished
        spans = handle.spans()
        assert spans[-1].name == REQUEST_SPAN
        assert spans[-1].span_id == handle.root_span_id
        assert spans[-1].attrs["model"] == "m"
        assert spans[-1].attrs["request_id"] == 3
        assert spans[0].parent_id == handle.root_span_id
        assert spans[0].attrs == {"status": "accepted"}
        # Every span reached the recorder; finish is idempotent, and the
        # materialised span tuple is cached (repeated reads are identical).
        assert len(tracer.recorder) == len(spans)
        handle.finish()
        assert len(tracer.recorder) == len(spans)
        # Late spans are dropped, not recorded.
        handle.add_span("late", 2.0, 2.1)
        assert handle.spans() is spans

    def test_add_span_dicts_clamps_into_window(self):
        handle = Tracer().begin("m", 0)
        handle.add_span_dicts(
            [
                {
                    "name": "engine",
                    "start_s": 0.5,
                    "end_s": 99.0,
                    "pid": 4242,
                    "tid": 7,
                    "replica": "1",
                }
            ],
            clamp=(1.0, 2.0),
        )
        handle.finish()
        (span,) = handle.spans()[:-1]
        assert (span.start_s, span.end_s) == (1.0, 2.0)
        assert (span.pid, span.tid) == (4242, 7)
        assert span.attrs["replica"] == "1"

    def test_span_record_duration_never_negative(self):
        span = SpanRecord("x", "t", "s", None, 2.0, 1.0, pid=1, tid=1)
        assert span.duration_s == 0.0
        assert span.as_dict()["duration_s"] == 0.0


class TestFlightRecorder:
    def test_capacity_bounds_the_ring(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record_instant(f"event-{index}")
        assert len(recorder) == 4
        names = [event["name"] for event in recorder.events()]
        assert names == ["event-6", "event-7", "event-8", "event-9"]
        recorder.clear()
        assert len(recorder) == 0
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_instant_event_shape(self):
        recorder = FlightRecorder()
        recorder.record_instant("replica_crash", args={"replica": 1})
        (event,) = recorder.events(category="lifecycle")
        assert event["ph"] == "i"
        assert event["s"] == "g"
        assert event["args"] == {"replica": 1}
        for key in _CHROME_REQUIRED:
            assert key in event

    def test_chrome_dump_parses_sorted_and_complete(self):
        tracer = Tracer()
        handle = tracer.begin("m", 0)
        handle.add_span("queue_wait", 5.0, 6.0)
        handle.add_span("execute", 6.0, 7.0)
        handle.finish(8.0)
        tracer.record_event("overload_transition", state="shed_best_effort")
        document = json.loads(tracer.recorder.to_chrome_trace())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert len(events) == 4
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)
        for event in events:
            for key in _CHROME_REQUIRED:
                assert key in event, f"{event['name']} missing {key}"
            assert event["ph"] in ("X", "i")
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert "trace_id" in event["args"]

    def test_trace_events_filters_by_trace_id(self):
        tracer = Tracer()
        first = tracer.begin("m", 0)
        second = tracer.begin("m", 1)
        first.add_span("execute", 1.0, 2.0)
        first.finish(2.0)
        second.finish(3.0)
        events = tracer.recorder.trace_events(first.trace_id)
        assert {event["args"]["trace_id"] for event in events} == {first.trace_id}
        assert len(events) == 2


class TestServedTraces:
    @pytest.fixture
    def registry(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        return registry

    def serve(self, registry, tracer, n_requests=6, telemetry=None, admission=None):
        server = InferenceServer(
            registry,
            POLICY,
            telemetry=telemetry,
            admission=admission,
            tracer=tracer,
        )
        with server:
            decisions = [
                server.submit("mlp", inputs) for inputs in make_inputs(n_requests)
            ]
            outputs = [
                decision.result(timeout=30)
                for decision in decisions
                if decision.accepted
            ]
        return decisions, outputs

    def test_untraced_server_reports_no_trace_ids(self, registry):
        decisions, outputs = self.serve(registry, tracer=None)
        assert len(outputs) == 6
        assert all(decision.trace_id is None for decision in decisions)

    def test_every_request_gets_one_covering_trace(self, registry):
        tracer = Tracer(sample_rate=1.0)
        decisions, outputs = self.serve(registry, tracer)
        assert len(outputs) == 6
        trace_ids = [decision.trace_id for decision in decisions]
        assert all(trace_ids) and len(set(trace_ids)) == 6
        for trace_id in trace_ids:
            events = tracer.recorder.trace_events(trace_id)
            names = {event["name"] for event in events}
            assert REQUEST_SPAN in names
            assert {
                "admission",
                "queue_wait",
                "dispatch_wait",
                "execute",
                "engine",
                "complete",
            } <= names
            assert names - {REQUEST_SPAN} <= set(SERVE_SPANS)
            # Chrome ts/dur are microseconds of the same monotonic clock, so
            # children stay inside the root window.
            (root,) = [e for e in events if e["name"] == REQUEST_SPAN]
            for event in events:
                assert event["ts"] >= root["ts"] - 1e-3
                assert event["ts"] + event["dur"] <= root["ts"] + root["dur"] + 1e-3

    def test_spans_cover_full_wall_time_within_one_percent(self, registry):
        tracer = Tracer(sample_rate=1.0)
        server = InferenceServer(registry, POLICY, tracer=tracer)
        with server:
            decision = server.submit("mlp", make_inputs(1)[0])
            decision.result(timeout=30)
        events = tracer.recorder.trace_events(decision.trace_id)
        spans = [
            SpanRecord(
                name=event["name"],
                trace_id=event["args"]["trace_id"],
                span_id=event["args"]["span_id"],
                parent_id=event["args"]["parent_id"],
                start_s=event["ts"] / 1e6,
                end_s=(event["ts"] + event["dur"]) / 1e6,
                pid=event["pid"],
                tid=event["tid"],
            )
            for event in events
        ]
        by_name = span_map(spans)
        (root,) = by_name[REQUEST_SPAN]
        children = [span for span in spans if span.name != REQUEST_SPAN]
        assert root.duration_s > 0
        assert union_coverage(root, children) >= 0.99

    def test_request_trace_records_carry_trace_id_and_spans(self, registry):
        tracer = Tracer(sample_rate=1.0)
        telemetry = TelemetryCollector()
        decisions, _ = self.serve(registry, tracer, telemetry=telemetry)
        traces = {trace.request_id: trace for trace in telemetry.traces()}
        for decision in decisions:
            record = traces[decision.request_id]
            assert record.trace_id == decision.trace_id
            names = [span["name"] for span in record.spans]
            assert names[-1] == REQUEST_SPAN
            assert "execute" in names
            exported = record.as_dict()
            assert exported["trace_id"] == decision.trace_id
            assert exported["spans"] == list(record.spans)
        # The JSON export round-trips the same spans.
        document = json.loads(telemetry.export_json())
        spans = [trace["spans"] for trace in document["traces"]]
        assert all(span_list for span_list in spans)

    def test_sampled_out_requests_have_no_trace(self, registry):
        tracer = Tracer(sample_rate=0.5)
        decisions, outputs = self.serve(registry, tracer, n_requests=8)
        assert len(outputs) == 8
        traced = [d for d in decisions if d.trace_id is not None]
        assert len(traced) == 4  # deterministic every-other sampling

    def test_shed_requests_finish_trace_and_emit_event(self, registry):
        tracer = Tracer(sample_rate=1.0)
        admission = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=1))
        server = InferenceServer(registry, POLICY, admission=admission, tracer=tracer)
        # Not started: the queue backs up instantly, so the second submit
        # trips the depth cap and sheds.
        accepted = server.submit("mlp", make_inputs(1)[0])
        shed = server.submit("mlp", np.abs(np.ones((4, 16))))
        assert accepted.accepted and not shed.accepted
        assert shed.trace_id is not None
        assert shed.as_dict()["trace_id"] == shed.trace_id
        events = tracer.recorder.trace_events(shed.trace_id)
        (root,) = [e for e in events if e["name"] == REQUEST_SPAN]
        assert root["args"]["status"] == "shed"
        lifecycle = tracer.recorder.events(category="lifecycle")
        assert any(event["name"] == "request_shed" for event in lifecycle)
        with server:
            accepted.result(timeout=30)

    def test_failed_batch_closes_trace_with_error(self, registry):
        tracer = Tracer(sample_rate=1.0)
        server = InferenceServer(registry, POLICY, tracer=tracer)
        decision = server.submit("mlp", make_inputs(1)[0])
        registry.unregister("mlp")  # the dispatch worker's engine() raises
        with server:
            with pytest.raises(KeyError, match="no model registered"):
                decision.result(timeout=30)
        events = tracer.recorder.trace_events(decision.trace_id)
        (root,) = [e for e in events if e["name"] == REQUEST_SPAN]
        assert root["args"]["status"] == "error"
        (execute,) = [e for e in events if e["name"] == "execute"]
        assert execute["args"]["status"] == "error"
        assert execute["args"]["error"]


class TestProcessBackedTraces:
    def test_worker_engine_span_carries_worker_pid(self, tiny_mlp_model):
        tracer = Tracer(sample_rate=1.0)
        with ModelRegistry() as registry:
            pool = registry.register(
                "mlp", tiny_mlp_model, backend="process", replicas=2
            )
            worker_pids = set(pool.replica_pids())
            with InferenceServer(registry, POLICY, tracer=tracer) as server:
                decision = server.submit("mlp", make_inputs(1)[0])
                decision.result(timeout=30)
        events = tracer.recorder.trace_events(decision.trace_id)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        (engine,) = by_name["engine"]
        (ipc,) = by_name["worker_ipc"]
        (root,) = by_name[REQUEST_SPAN]
        # The engine span executed in the worker process, the IPC span (and
        # everything else) in the server process: the pid hop is what makes
        # Perfetto draw them on separate process tracks.
        assert engine["pid"] in worker_pids
        assert engine["pid"] != os.getpid()
        assert ipc["pid"] == os.getpid() == root["pid"]
        assert engine["args"]["status"] == "ok"
        assert engine["args"]["replica"] in ("0", "1")
        assert decision.trace_id in engine["args"]["trace_ids"]
        # IPC brackets the worker-side run.
        assert ipc["ts"] <= engine["ts"] + 1e-3
        assert ipc["ts"] + ipc["dur"] >= engine["ts"] + engine["dur"] - 1e-3

    def test_process_trace_covers_wall_time_within_one_percent(self, tiny_mlp_model):
        tracer = Tracer(sample_rate=1.0)
        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
            with InferenceServer(registry, POLICY, tracer=tracer) as server:
                decision = server.submit("mlp", make_inputs(1)[0])
                decision.result(timeout=30)
        events = tracer.recorder.trace_events(decision.trace_id)
        (root,) = [e for e in events if e["name"] == REQUEST_SPAN]
        children = [
            SpanRecord(
                name=event["name"],
                trace_id=decision.trace_id,
                span_id=event["args"]["span_id"],
                parent_id=event["args"]["parent_id"],
                start_s=event["ts"] / 1e6,
                end_s=(event["ts"] + event["dur"]) / 1e6,
                pid=event["pid"],
                tid=event["tid"],
            )
            for event in events
            if event["name"] != REQUEST_SPAN
        ]
        root_span = SpanRecord(
            name=REQUEST_SPAN,
            trace_id=decision.trace_id,
            span_id=root["args"]["span_id"],
            parent_id=None,
            start_s=root["ts"] / 1e6,
            end_s=(root["ts"] + root["dur"]) / 1e6,
            pid=root["pid"],
            tid=root["tid"],
        )
        assert union_coverage(root_span, children) >= 0.99


class TestCrashedReplicaTraces:
    def test_sigkill_mid_batch_leaves_both_attempts_in_the_trace(
        self, tiny_mlp_model, rng
    ):
        tracer = Tracer(sample_rate=1.0)
        inputs = np.abs(rng.normal(0, 1, size=(4096, 16)))
        policy = BatchingPolicy(max_batch_size=4096, max_delay_s=0.001)
        with ModelRegistry() as registry:
            pool = registry.register(
                "mlp", tiny_mlp_model, backend="process", replicas=2
            )
            with InferenceServer(registry, policy, tracer=tracer) as server:
                decision = server.submit("mlp", inputs)
                results = {}

                def run():
                    results["outputs"] = decision.result(timeout=60)

                runner = threading.Thread(target=run)
                runner.start()
                busy = None

                def find_busy():
                    nonlocal busy
                    for handle in pool._handles:
                        if handle.inflight > 0:
                            busy = handle.pid
                            return True
                    return False

                assert wait_until(find_busy)
                os.kill(busy, signal.SIGKILL)
                runner.join(timeout=60)
                assert not runner.is_alive()
                assert results["outputs"].shape == (4096, 4)
        events = tracer.recorder.trace_events(decision.trace_id)
        engines = [e for e in events if e["name"] == "engine"]
        statuses = {e["args"]["status"] for e in engines}
        assert statuses == {"crashed", "ok"}
        crashed = [e for e in engines if e["args"]["status"] == "crashed"]
        succeeded = [e for e in engines if e["args"]["status"] == "ok"]
        assert len(crashed) >= 1 and len(succeeded) == 1
        # The retry is attributed to the *sibling* replica, and the crashed
        # attempt to the replica whose pid was killed.
        crashed_replicas = {e["args"]["replica"] for e in crashed}
        assert succeeded[0]["args"]["replica"] not in crashed_replicas
        assert any(e["pid"] == busy for e in crashed)
        (ipc,) = [e for e in events if e["name"] == "worker_ipc"]
        assert ipc["args"]["requeues"] >= 1
        # Lifecycle instants captured the crash alongside the spans.
        lifecycle = tracer.recorder.events(category="lifecycle")
        assert any(event["name"] == "replica_crash" for event in lifecycle)
